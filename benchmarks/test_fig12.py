"""Bench: regenerate Fig. 12 (sensitivity to stars, RSL size, fusion rate).

Shape claims: #RSL decreases (a) from 4- to 7-qubit resource states, (b) as
the RSL grows, (c) as the fusion success rate rises.
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment


def _panel(records, panel, benchmark):
    series = [
        (record.fields["x"], record.fields["rsl_count"])
        for record in records
        if record.fields["panel"] == panel and record.fields["benchmark"] == benchmark
    ]
    return [count for _x, count in sorted(series)]


def test_fig12_regeneration(once):
    result = once(run_experiment, "fig12", "bench")
    print("\n" + result.text)
    assert_matches_golden("fig12", result.records)

    benchmarks = {record.fields["benchmark"] for record in result.records}
    for benchmark in benchmarks:
        a = _panel(result.records, "a", benchmark)
        assert a[-1] < a[0], f"(a) {benchmark}: 7-qubit stars should beat 4-qubit"
        b = _panel(result.records, "b", benchmark)
        assert b[-1] <= b[0], f"(b) {benchmark}: larger RSLs should not cost more"
        c = _panel(result.records, "c", benchmark)
        assert c[-1] <= c[0], f"(c) {benchmark}: higher rates should not cost more"
