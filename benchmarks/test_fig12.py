"""Bench: regenerate Fig. 12 (sensitivity to stars, RSL size, fusion rate).

Shape claims: #RSL decreases (a) from 4- to 7-qubit resource states, (b) as
the RSL grows, (c) as the fusion success rate rises.
"""

from repro.experiments import fig12


def _panel(points, panel, benchmark):
    series = [(p.x, p.rsl_count) for p in points if p.panel == panel and p.benchmark == benchmark]
    return [count for _x, count in sorted(series)]


def test_fig12_regeneration(once):
    points, text = once(fig12.run, "bench")
    print("\n" + text)

    benchmarks = {p.benchmark for p in points}
    for benchmark in benchmarks:
        a = _panel(points, "a", benchmark)
        assert a[-1] < a[0], f"(a) {benchmark}: 7-qubit stars should beat 4-qubit"
        b = _panel(points, "b", benchmark)
        assert b[-1] <= b[0], f"(b) {benchmark}: larger RSLs should not cost more"
        c = _panel(points, "c", benchmark)
        assert c[-1] <= c[0], f"(c) {benchmark}: higher rates should not cost more"
