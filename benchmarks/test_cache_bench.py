"""Perf snapshot for the artifact cache and the vectorized strip pre-check.

Two measurements land in ``benchmarks/BENCH_cache.json``:

* **Seed sweep, cached vs uncached** — a Table-2-style sweep (every
  benchmark family at 4 qubits, p = 0.9, three pipeline seeds per circuit)
  run three ways: no cache, cold cache (first sight of every artifact), and
  warm cache (the sweep re-run against the filled store).  The cold run
  already shares the deterministic translate/offline-map prefix across the
  seed axis; the warm run hits every stage, which is the artifact cache's
  headline: re-running a sweep — the golden-determinism suite, a crashed
  sweep resumed, a what-if on the analysis side — costs deserialization,
  not recompilation.  The floor asserts warm >= 3x uncached.

* **Strip pre-check, vector vs DSU** — the renormalization connectivity
  pre-check measured standalone over percolated lattices near threshold
  (negative checks dominate there, which is why this is the hot path), the
  numpy label propagation against the scalar union-find oracle, with a
  no-regression floor on the speedup.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.circuits.benchmarks import make_benchmark
from repro.online.percolation import sample_lattice
from repro.online.renormalize import strip_spans, strip_spans_dsu
from repro.pipeline import MemoryCache, Pipeline, PipelineSettings

SNAPSHOT = Path(__file__).parent / "BENCH_cache.json"

FAMILIES = ("qaoa", "qft", "rca", "vqe")
SEEDS = (0, 1, 2)  # pipeline seeds; the circuits themselves stay fixed

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

#: The acceptance floor: a warm-cache sweep must compile >= 3x faster.
WARM_FLOOR = 3.0
#: No-regression floor for the vectorized pre-check micro-benchmark.
PRECHECK_FLOOR = 1.3

#: Pre-check micro-benchmark shape: strips of a near-threshold lattice.
PRECHECK_SIZE = 96
PRECHECK_RATE = 0.55
PRECHECK_STRIPS = 8
PRECHECK_ROUNDS = 5


def _sweep_jobs():
    circuits = [make_benchmark(family, 4, seed=0) for family in FAMILIES]
    sweep = [circuit for circuit in circuits for _ in SEEDS]
    seeds = [seed for _ in circuits for seed in SEEDS]
    return sweep, seeds


def _seconds(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_cached_sweep_throughput_snapshot():
    sweep, seeds = _sweep_jobs()
    uncached = Pipeline(SETTINGS)
    uncached.compile(sweep[0], seed=seeds[0])  # warm-up: lazy imports, dispatch

    uncached_s = _seconds(lambda: uncached.compile_many(sweep, seeds=seeds))

    cache = MemoryCache()
    cached = uncached.with_cache(cache)
    cold_s = _seconds(lambda: cached.compile_many(sweep, seeds=seeds))
    cold_hits, cold_misses = cache.hits, cache.misses
    warm_s = _seconds(lambda: cached.compile_many(sweep, seeds=seeds))
    warm_hits = cache.hits - cold_hits

    warm_speedup = uncached_s / warm_s
    cold_speedup = uncached_s / cold_s

    # -- strip pre-check micro-benchmark -----------------------------------
    lattice = sample_lattice(PRECHECK_SIZE, PRECHECK_RATE, np.random.default_rng(1))
    strips = [
        ((index * PRECHECK_SIZE) // PRECHECK_STRIPS,
         ((index + 1) * PRECHECK_SIZE) // PRECHECK_STRIPS)
        for index in range(PRECHECK_STRIPS)
    ]

    def run_precheck(check) -> float:
        best = float("inf")
        for _ in range(PRECHECK_ROUNDS):
            start = time.perf_counter()
            for vertical in (True, False):
                for low, high in strips:
                    check(lattice, vertical, low, high)
            best = min(best, time.perf_counter() - start)
        return best

    dsu_s = run_precheck(strip_spans_dsu)
    vector_s = run_precheck(strip_spans)
    precheck_speedup = dsu_s / vector_s

    snapshot = {
        "sweep": {
            "families": list(FAMILIES),
            "num_qubits": 4,
            "pipeline_seeds": list(SEEDS),
            "fusion_success_rate": SETTINGS.fusion_success_rate,
            "jobs": len(sweep),
        },
        "python": platform.python_version(),
        "uncached": {"total_s": uncached_s, "ops_per_s": len(sweep) / uncached_s},
        "cold_cache": {
            "total_s": cold_s,
            "ops_per_s": len(sweep) / cold_s,
            "hits": cold_hits,
            "misses": cold_misses,
        },
        "warm_cache": {
            "total_s": warm_s,
            "ops_per_s": len(sweep) / warm_s,
            "hits": warm_hits,
        },
        "cold_over_uncached": cold_speedup,
        "warm_over_uncached": warm_speedup,
        "precheck": {
            "lattice_size": PRECHECK_SIZE,
            "bond_probability": PRECHECK_RATE,
            "strips": PRECHECK_STRIPS,
            "dsu_s": dsu_s,
            "vector_s": vector_s,
            "vector_over_dsu": precheck_speedup,
        },
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # The cold run's prefix sharing: every circuit's translate/rewrite/
    # offline-map computed once, then hit for the other seeds of the axis.
    assert cold_hits == 3 * len(FAMILIES) * (len(SEEDS) - 1)
    assert warm_hits == 4 * len(sweep)  # every stage of every job
    assert warm_speedup >= WARM_FLOOR, (
        f"warm-cache sweep only {warm_speedup:.2f}x over uncached "
        f"(floor {WARM_FLOOR}x)"
    )
    assert precheck_speedup >= PRECHECK_FLOOR, (
        f"vectorized pre-check only {precheck_speedup:.2f}x over the DSU "
        f"oracle (floor {PRECHECK_FLOOR}x)"
    )
