"""Perf-trajectory snapshot for the online hot path and the pass pipeline.

Times the two ``components()`` implementations and ``renormalize`` under
both path-search implementations on size-48 RSLs (the 4-qubit @ p = 0.75
configuration of Table 1), asserts the vectorized flood fill and the
wavefront path search each hold their >= 3x advantage over the scalar
references, and records the throughputs (plus the qaoa4 per-pass seconds,
including ``online-reshape``) to ``benchmarks/BENCH_pipeline.json`` so
later PRs can track the trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.pipeline import Pipeline, PipelineSettings

SNAPSHOT = Path(__file__).parent / "BENCH_pipeline.json"

RSL_SIZE = 48
TARGET = 4  # node side 12, the paper's p = 0.90 multiplier
REPEATS = 25


PASSES = 3  # best-of-N passes damps scheduler noise on loaded machines


def _throughput(fn, inputs) -> tuple[float, float]:
    """(ops per second, mean milliseconds) for ``fn``, best of ``PASSES``."""
    best = float("inf")
    for _ in range(PASSES):
        start = time.perf_counter()
        for item in inputs:
            fn(item)
        best = min(best, time.perf_counter() - start)
    return len(inputs) / best, best / len(inputs) * 1e3


def test_components_speedup_and_snapshot():
    rng = np.random.default_rng(0)
    lattices = [sample_lattice(RSL_SIZE, 0.75, rng) for _ in range(REPEATS)]

    # Warm-up excludes one-time numpy dispatch costs from the measurement.
    lattices[0].components()
    lattices[0].components_dsu()

    vec_ops, vec_ms = _throughput(lambda lat: lat.components(), lattices)
    dsu_ops, dsu_ms = _throughput(lambda lat: lat.components_dsu(), lattices)
    renorm_ops, renorm_ms = _throughput(
        lambda lat: renormalize(lat.copy(), TARGET), lattices
    )
    scalar_ops, scalar_ms = _throughput(
        lambda lat: renormalize(lat.copy(), TARGET, pathfind="scalar"), lattices
    )

    # One end-to-end compile for per-pass seconds context.
    from repro.circuits import make_benchmark

    result = Pipeline(
        PipelineSettings(fusion_success_rate=0.75, max_rsl=10**5), seed=0
    ).compile(make_benchmark("qaoa", 4, seed=0))

    speedup = vec_ms and dsu_ms / vec_ms
    pathfind_speedup = renorm_ms and scalar_ms / renorm_ms
    snapshot = {
        "rsl_size": RSL_SIZE,
        "bond_probability": 0.75,
        "repeats": REPEATS,
        "python": platform.python_version(),
        "components_vectorized": {"ops_per_s": vec_ops, "mean_ms": vec_ms},
        "components_dsu": {"ops_per_s": dsu_ops, "mean_ms": dsu_ms},
        "components_speedup": speedup,
        "renormalize": {
            "target_size": TARGET,
            "ops_per_s": renorm_ops,
            "mean_ms": renorm_ms,
        },
        "renormalize_scalar_pathfind": {
            "target_size": TARGET,
            "ops_per_s": scalar_ops,
            "mean_ms": scalar_ms,
        },
        "pathfind_speedup": pathfind_speedup,
        "compile_qaoa4_pass_seconds": result.timings_by_pass,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    assert speedup >= 3.0, (
        f"vectorized components() is only {speedup:.1f}x the DSU version "
        f"({vec_ms:.3f} ms vs {dsu_ms:.3f} ms at size {RSL_SIZE})"
    )
    assert pathfind_speedup >= 3.0, (
        f"the wavefront path search is only {pathfind_speedup:.1f}x the "
        f"scalar BFS ({renorm_ms:.3f} ms vs {scalar_ms:.3f} ms per "
        f"renormalize at size {RSL_SIZE})"
    )
