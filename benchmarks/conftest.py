"""Shared configuration for the benchmark harness.

Each experiment bench runs its table/figure regeneration exactly once under
pytest-benchmark timing (rounds=1): the experiments are Monte-Carlo sweeps,
so statistical repetition happens *inside* them, not by re-running the
sweep.  Micro-benchmarks (benchmarks/test_micro.py) use normal repetition.

Regenerated tables are printed so ``pytest benchmarks/ --benchmark-only -s``
doubles as the paper-reproduction report; EXPERIMENTS.md records a checked-in
copy.
"""

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Auto-mark everything under benchmarks/ as ``bench``.

    The marker (registered in pytest.ini) lets CI split the blocking unit
    job from the non-blocking bench job without duplicating path lists.
    """
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - exotic collectors
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
