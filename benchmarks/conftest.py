"""Shared configuration for the benchmark harness.

Each experiment bench runs its table/figure regeneration exactly once under
pytest-benchmark timing (rounds=1): the experiments are Monte-Carlo sweeps,
so statistical repetition happens *inside* them, not by re-running the
sweep.  Micro-benchmarks (benchmarks/test_micro.py) use normal repetition.

Regenerated tables are printed so ``pytest benchmarks/ --benchmark-only -s``
doubles as the paper-reproduction report; EXPERIMENTS.md records a checked-in
copy.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
