"""Bench: regenerate Table 3 (refresh mechanism under a memory budget).

Shape claims: the largest programs exceed the budget without refresh ('-'),
refresh compiles everything, and the cost is extra #RSL.
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment
from repro.experiments.table3 import paired_rows


def test_table3_regeneration(once):
    result = once(run_experiment, "table3", "bench")
    print("\n" + result.text)
    assert_matches_golden("table3", result.records)

    rows = paired_rows(result.records)
    largest = max(row["num_qubits"] for row in rows)
    for row in rows:
        if row["num_qubits"] == largest:
            assert row["non_refreshed_rsl"] is None, (
                f"{row['benchmark']}-{row['num_qubits']} unexpectedly fit the budget"
            )
        assert row["refreshed_rsl"] > 0
        if row["non_refreshed_rsl"] is not None:
            assert row["refreshed_rsl"] >= row["non_refreshed_rsl"]
            assert row["refreshed_peak_bytes"] <= row["non_refreshed_peak_bytes"]
