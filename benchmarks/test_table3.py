"""Bench: regenerate Table 3 (refresh mechanism under a memory budget).

Shape claims: the largest programs exceed the budget without refresh ('-'),
refresh compiles everything, and the cost is extra #RSL.
"""

from repro.experiments import table3


def test_table3_regeneration(once):
    rows, text = once(table3.run, "bench")
    print("\n" + text)

    largest = max(row.num_qubits for row in rows)
    for row in rows:
        if row.num_qubits == largest:
            assert row.non_refreshed_rsl is None, (
                f"{row.benchmark}-{row.num_qubits} unexpectedly fit the budget"
            )
        assert row.refreshed_rsl > 0
        if row.non_refreshed_rsl is not None:
            assert row.refreshed_rsl >= row.non_refreshed_rsl
            assert row.refreshed_peak_bytes <= row.non_refreshed_peak_bytes
