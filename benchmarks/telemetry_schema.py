"""Line-by-line schema validation for telemetry JSONL files.

The telemetry layer (``repro.obs``) writes two JSONL artifacts: a *trace*
file (a ``meta`` header, one ``span`` line per span, an optional trailing
``metrics`` snapshot) and an *events* file (one flat lifecycle event per
line).  Both formats are versioned (``TRACE_SCHEMA_VERSION`` /
``EVENTS_SCHEMA_VERSION``); this checker pins the line shapes so a schema
drift breaks CI's telemetry smoke step instead of silently producing
artifacts downstream tooling can't parse.

Validation is structural, not semantic: every line must be a JSON object
with the right tag, required keys, and field types.  Cross-line checks are
limited to the cheap invariants (exactly one meta header, it comes first,
at most one metrics trailer, span parent links resolve within the file).

Usage (exit 0 when everything validates, 1 otherwise)::

    python benchmarks/telemetry_schema.py --trace trace.jsonl [--events events.jsonl]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Keep the repo importable when invoked as a script from anywhere: the
# checker validates against the library's declared schema versions, never
# a copy that could drift.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.events import EVENTS_SCHEMA_VERSION  # noqa: E402
from repro.obs.trace import TRACE_SCHEMA_VERSION  # noqa: E402

#: ``field -> allowed types`` for one span line.  ``cpu`` and ``parent``
#: admit None: orchestration-side spans (``add_span``) have no thread CPU
#: reading, and root spans have no parent.
_SPAN_FIELDS = {
    "name": (str,),
    "ts": (int, float),
    "dur": (int, float),
    "cpu": (int, float, type(None)),
    "id": (str,),
    "parent": (str, type(None)),
    "pid": (int,),
    "attrs": (dict,),
}

_HISTOGRAM_FIELDS = {
    "count": (int,),
    "sum": (int, float),
    "min": (int, float, type(None)),
    "max": (int, float, type(None)),
}


def _type_errors(obj: dict, fields: dict, where: str) -> list[str]:
    errors = []
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing key {key!r}")
        elif not isinstance(obj[key], types) or isinstance(obj[key], bool):
            errors.append(
                f"{where}: {key!r} is {type(obj[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    return errors


def _parse_lines(path: str | Path) -> tuple[list[dict], list[str]]:
    """Every line as a parsed object; non-object or unparsable lines as
    errors (subsequent checks skip them rather than crash)."""
    objects, errors = [], []
    text = Path(path).read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            errors.append(f"line {number}: blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: unparsable JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            errors.append(f"line {number}: not a JSON object")
            continue
        objects.append(obj | {"_line": number})
    return objects, errors


def validate_trace(path: str | Path) -> list[str]:
    """All schema violations in a trace JSONL file (empty list == valid)."""
    objects, errors = _parse_lines(path)
    if not objects and not errors:
        return ["trace file is empty"]
    metas, span_ids, parents = 0, set(), []
    for obj in objects:
        where = f"line {obj['_line']}"
        kind = obj.get("type")
        if kind == "meta":
            metas += 1
            if obj["_line"] != 1:
                errors.append(f"{where}: meta header must be the first line")
            if obj.get("schema") != TRACE_SCHEMA_VERSION:
                errors.append(
                    f"{where}: schema {obj.get('schema')!r} != {TRACE_SCHEMA_VERSION}"
                )
        elif kind == "span":
            errors.extend(_type_errors(obj, _SPAN_FIELDS, where))
            if isinstance(obj.get("id"), str):
                if obj["id"] in span_ids:
                    errors.append(f"{where}: duplicate span id {obj['id']!r}")
                span_ids.add(obj["id"])
            if isinstance(obj.get("parent"), str):
                parents.append((where, obj["parent"]))
            if isinstance(obj.get("dur"), (int, float)) and obj["dur"] < 0:
                errors.append(f"{where}: negative dur {obj['dur']}")
        elif kind == "metrics":
            errors.extend(
                _type_errors(
                    obj,
                    {"counters": (dict,), "gauges": (dict,), "histograms": (dict,)},
                    where,
                )
            )
            for name, data in obj.get("histograms", {}).items():
                if isinstance(data, dict):
                    errors.extend(
                        _type_errors(data, _HISTOGRAM_FIELDS, f"{where}: {name}")
                    )
                else:
                    errors.append(f"{where}: histogram {name!r} is not an object")
            if obj is not objects[-1]:
                errors.append(f"{where}: metrics snapshot must be the last line")
        else:
            errors.append(f"{where}: unknown line type {kind!r}")
    if metas != 1:
        errors.append(f"expected exactly one meta header, found {metas}")
    for where, parent in parents:
        if parent not in span_ids:
            errors.append(f"{where}: parent {parent!r} not in this trace")
    return errors


def validate_events(path: str | Path) -> list[str]:
    """All schema violations in an events JSONL file (empty list == valid).

    Every line is one flat event: a ``kind`` string, an epoch ``ts``, and
    JSON-scalar payload fields.  (Version: EVENTS_SCHEMA_VERSION, implicit
    — the event shape itself carries no version tag, so the constant pins
    this validator to the writer.)
    """
    assert EVENTS_SCHEMA_VERSION == 1
    objects, errors = _parse_lines(path)
    previous_ts = None
    for obj in objects:
        where = f"line {obj['_line']}"
        errors.extend(
            _type_errors(obj, {"kind": (str,), "ts": (int, float)}, where)
        )
        for key, value in obj.items():
            if key == "_line":
                continue
            if not isinstance(value, (str, int, float, bool, type(None))):
                errors.append(f"{where}: field {key!r} is not a JSON scalar")
        ts = obj.get("ts")
        if isinstance(ts, (int, float)):
            # Re-emitted shard events keep original timestamps, so the file
            # is only *approximately* ordered; a wildly regressing clock
            # still indicates corruption.
            if previous_ts is not None and ts < previous_ts - 3600:
                errors.append(f"{where}: ts regresses by more than an hour")
            previous_ts = max(previous_ts or ts, ts)
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="trace JSONL file to validate")
    parser.add_argument("--events", help="events JSONL file to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.events:
        parser.error("nothing to validate: pass --trace and/or --events")

    failures = 0
    for label, path, validate in (
        ("trace", args.trace, validate_trace),
        ("events", args.events, validate_events),
    ):
        if not path:
            continue
        try:
            errors = validate(path)
        except OSError as exc:
            errors = [f"unreadable: {exc}"]
        if errors:
            failures += 1
            print(f"{label} {path}: INVALID", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
        else:
            with open(path) as handle:
                lines = sum(1 for _ in handle)
            print(f"{label} {path}: ok ({lines} lines)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
