"""Perf snapshot for the pass ecosystem: what the pattern rewrite buys.

Three measurements land in ``benchmarks/BENCH_passes.json``:

* **Shrink** — every benchmark family at 4 qubits, lowered to {J, CZ}
  *without* peephole simplification (the shape an external front end that
  missed its local optimizations would hand the pipeline), translated, and
  contracted by the rewrite pass.  The floor asserts the contraction
  removes at least ``SHRINK_FLOOR_PCT`` percent of pattern nodes on every
  family — the rewrite's raison d'être, gated.

* **Online reshape, rewrite on vs off** — the same unsimplified circuits
  compiled end-to-end through the pipeline with ``rewrite="on"`` and
  ``rewrite="off"``: fewer nodes means fewer logical layers means fewer
  RSLs consumed online.  The layer reduction is deterministic and gated;
  the wall-clock ratio is informative only (shared runners are noisy).

* **Cache interaction** — the rewrite pass is cacheable: a re-compile of
  the same circuit must hit the rewrite stage (and every other cacheable
  stage) instead of re-contracting.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.circuits.benchmarks import make_benchmark
from repro.circuits.jcz import to_jcz
from repro.mbqc.optimize import optimize_pattern
from repro.mbqc.translate import translate_circuit
from repro.pipeline import MemoryCache, Pipeline, PipelineSettings

SNAPSHOT = Path(__file__).parent / "BENCH_passes.json"

FAMILIES = ("qaoa", "qft", "rca", "vqe")
NUM_QUBITS = 4

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

#: Acceptance floor: the rewrite must remove at least this percentage of
#: pattern nodes on every unsimplified family lowering.
SHRINK_FLOOR_PCT = 10.0


def _unsimplified(family: str):
    return to_jcz(make_benchmark(family, NUM_QUBITS, seed=0), simplify=False)


def test_rewrite_shrink_and_reshape_snapshot():
    shrink = {}
    for family in FAMILIES:
        pattern = translate_circuit(_unsimplified(family))
        before = pattern.node_count
        start = time.perf_counter()
        report = optimize_pattern(pattern)
        rewrite_s = time.perf_counter() - start
        after = pattern.node_count
        shrink[f"{family}{NUM_QUBITS}"] = {
            "nodes_before": before,
            "nodes_after": after,
            "contracted_pairs": report.contracted_pairs,
            "shrink_pct": round(100.0 * (before - after) / before, 2),
            "rewrite_s": rewrite_s,
        }

    # -- end-to-end: rewrite on vs off through the full pipeline -----------
    on = Pipeline(SETTINGS)
    off = Pipeline(dataclasses.replace(SETTINGS, rewrite="off"))
    circuits = [_unsimplified(family) for family in FAMILIES]
    on.compile(circuits[0], seed=0)  # warm-up: lazy imports, dispatch

    def run_all(pipeline):
        start = time.perf_counter()
        results = [pipeline.compile(circuit, seed=0) for circuit in circuits]
        return results, time.perf_counter() - start

    off_results, off_s = run_all(off)
    on_results, on_s = run_all(on)
    layers = {
        f"{family}{NUM_QUBITS}": {
            "off": off_result.logical_layers,
            "on": on_result.logical_layers,
        }
        for family, off_result, on_result in zip(FAMILIES, off_results, on_results)
    }

    # -- cache interaction: the rewrite stage is cacheable -----------------
    cache = MemoryCache()
    cached = on.with_cache(cache)
    cached.compile(circuits[0], seed=0)
    cold_hits, cold_misses = cache.hits, cache.misses
    cached.compile(circuits[0], seed=0)
    warm_hits = cache.hits - cold_hits

    snapshot = {
        "config": {
            "families": list(FAMILIES),
            "num_qubits": NUM_QUBITS,
            "fusion_success_rate": SETTINGS.fusion_success_rate,
            "lowering": "to_jcz(simplify=False)",
        },
        "python": platform.python_version(),
        "shrink": shrink,
        "online_reshape": {
            "off_s": off_s,
            "on_s": on_s,
            "on_over_off": off_s / on_s if on_s else float("inf"),
            "layers": layers,
        },
        "cache": {
            "cold_hits": cold_hits,
            "cold_misses": cold_misses,
            "warm_hits": warm_hits,
        },
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    for name, row in shrink.items():
        assert row["contracted_pairs"] > 0, f"{name}: rewrite contracted nothing"
        assert row["shrink_pct"] >= SHRINK_FLOOR_PCT, (
            f"{name}: rewrite only shrank the pattern {row['shrink_pct']:.1f}% "
            f"(floor {SHRINK_FLOOR_PCT}%)"
        )
    for name, row in layers.items():
        assert row["on"] <= row["off"], (
            f"{name}: rewrite increased logical layers {row['off']} -> {row['on']}"
        )
    # At least one family must actually convert shrink into fewer layers.
    assert any(row["on"] < row["off"] for row in layers.values())
    # Re-compiling the identical job hits every cacheable stage: translate,
    # rewrite, offline-map, online-reshape.
    assert warm_hits == 4, f"warm re-compile hit {warm_hits} stages, expected 4"
