"""Regenerate the golden bench-scale record snapshots.

Run:  PYTHONPATH=src python benchmarks/golden/regenerate.py [name ...]

Each snapshot is the canonical (deterministic) portion of one experiment's
bench-scale records at seed 0, produced by the serial runner.  The
regeneration benches assert the serial runner still reproduces these bytes;
the determinism bench asserts the thread and process runners do too.  Only
regenerate after an *intentional* change to an experiment's parameters or
record schema, and say so in the commit.
"""

import json
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENT_REGISTRY

GOLDEN_DIR = Path(__file__).parent


def main() -> None:
    names = sys.argv[1:] or list(EXPERIMENT_REGISTRY)
    for name in names:
        experiment = EXPERIMENT_REGISTRY[name]
        start = time.perf_counter()
        result = experiment.run("bench", seed=0)
        payload = {
            "experiment": name,
            "scale": "bench",
            "seed": 0,
            "records": [record.canonical() for record in result.records],
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"{name}: {len(result.records)} records, {time.perf_counter() - start:.1f}s")


if __name__ == "__main__":
    main()
