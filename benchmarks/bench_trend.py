"""Print a perf-trend diff: working-tree BENCH_*.json vs the committed ones.

The bench suite rewrites ``benchmarks/BENCH_*.json`` in place, so after a
CI bench run the working tree holds fresh numbers while ``HEAD`` holds the
snapshots the PR was based on.  This script walks every numeric leaf of
each snapshot pair and prints old -> new with a percentage delta, so a
PR's perf trajectory is visible straight from the job log (the JSON files
themselves are uploaded as workflow artifacts).

Informative, never gating: shared runners make timing numbers noisy, so
the script always exits 0 unless ``--strict`` is given (then a missing or
unparsable snapshot fails).  Run it from anywhere inside the repo::

    python benchmarks/bench_trend.py [--against REF] [--strict]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent.resolve()
REPO_ROOT = BENCH_DIR.parent


def numeric_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every int/float leaf into ``dotted.path -> value``."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            leaves.update(numeric_leaves(value, f"{prefix}{key}." if prefix else f"{key}."))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            leaves.update(numeric_leaves(value, f"{prefix}{index}."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        leaves[prefix.rstrip(".")] = float(payload)
    return leaves


def committed_snapshot(ref: str, path: Path) -> dict | None:
    """The snapshot as committed at ``ref``; None if absent or unparsable
    there (a corrupt baseline must degrade to "no baseline", never crash
    the non-gating trend report)."""
    relative = path.relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"{ref}:{relative}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        print(f"== {path.name} == baseline at {ref} unparsable: {exc}", file=sys.stderr)
        return None


def render_trend(name: str, old: dict[str, float], new: dict[str, float]) -> list[str]:
    """One table of old -> new deltas, keys union-ordered, new-only last."""
    lines = [f"== {name} =="]
    width = max((len(key) for key in {**old, **new}), default=0)
    for key in sorted({**old, **new}):
        before, after = old.get(key), new.get(key)
        if before is None:
            lines.append(f"  {key:<{width}}  (new)            {after:.6g}")
        elif after is None:
            lines.append(f"  {key:<{width}}  {before:.6g} -> (gone)")
        elif before == after:
            lines.append(f"  {key:<{width}}  {before:.6g} (unchanged)")
        else:
            delta = (after - before) / abs(before) * 100 if before else float("inf")
            lines.append(
                f"  {key:<{width}}  {before:.6g} -> {after:.6g}  ({delta:+.1f}%)"
            )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--against", default="HEAD", metavar="REF",
        help="git ref holding the baseline snapshots (default HEAD)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when a snapshot is missing or unreadable",
    )
    args = parser.parse_args(argv)

    failures = 0
    snapshots = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if not snapshots:
        print("no BENCH_*.json snapshots found", file=sys.stderr)
        failures += 1
    for path in snapshots:
        try:
            current = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"== {path.name} == unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        baseline = committed_snapshot(args.against, path)
        if baseline is None:
            print(f"== {path.name} == not in {args.against} (new snapshot)")
            continue
        print(
            "\n".join(
                render_trend(
                    path.name, numeric_leaves(baseline), numeric_leaves(current)
                )
            )
        )
    return 1 if args.strict and failures else 0


if __name__ == "__main__":
    sys.exit(main())
