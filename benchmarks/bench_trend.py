"""Print a perf-trend diff: working-tree BENCH_*.json vs the committed ones.

The bench suite rewrites ``benchmarks/BENCH_*.json`` in place, so after a
CI bench run the working tree holds fresh numbers while ``HEAD`` holds the
snapshots the PR was based on.  This script walks every numeric leaf of
each snapshot pair and prints old -> new with a percentage delta, so a
PR's perf trajectory is visible straight from the job log (the JSON files
themselves are uploaded as workflow artifacts).

Informative, never gating: shared runners make timing numbers noisy, so
the script always exits 0 unless ``--strict`` is given (then a missing or
unparsable snapshot fails).  Run it from anywhere inside the repo::

    python benchmarks/bench_trend.py [--against REF] [--strict]

With ``--trace TRACE.jsonl`` the report also prints a per-pass wall/CPU
breakdown from a telemetry trace (written by ``--trace-out``), so CI's
smoke run surfaces where compile time actually went, not just the totals.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent.resolve()
REPO_ROOT = BENCH_DIR.parent


def numeric_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every int/float leaf into ``dotted.path -> value``."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            leaves.update(numeric_leaves(value, f"{prefix}{key}." if prefix else f"{key}."))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            leaves.update(numeric_leaves(value, f"{prefix}{index}."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        leaves[prefix.rstrip(".")] = float(payload)
    return leaves


def committed_snapshot(ref: str, path: Path) -> dict | None:
    """The snapshot as committed at ``ref``; None if absent or unparsable
    there (a corrupt baseline must degrade to "no baseline", never crash
    the non-gating trend report)."""
    relative = path.relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"{ref}:{relative}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        print(f"== {path.name} == baseline at {ref} unparsable: {exc}", file=sys.stderr)
        return None


def render_trend(name: str, old: dict[str, float], new: dict[str, float]) -> list[str]:
    """One table of old -> new deltas, keys union-ordered, new-only last."""
    lines = [f"== {name} =="]
    width = max((len(key) for key in {**old, **new}), default=0)
    for key in sorted({**old, **new}):
        before, after = old.get(key), new.get(key)
        if before is None:
            lines.append(f"  {key:<{width}}  (new)            {after:.6g}")
        elif after is None:
            lines.append(f"  {key:<{width}}  {before:.6g} -> (gone)")
        elif before == after:
            lines.append(f"  {key:<{width}}  {before:.6g} (unchanged)")
        else:
            delta = (after - before) / abs(before) * 100 if before else float("inf")
            lines.append(
                f"  {key:<{width}}  {before:.6g} -> {after:.6g}  ({delta:+.1f}%)"
            )
    return lines


def render_trace_passes(path: Path) -> list[str]:
    """Per-pass breakdown of a telemetry trace, trend-report style.

    Imports the library lazily (with a ``src/`` path fallback) so the
    plain trend diff stays runnable without any import at all; the
    summarizer is the same one ``repro telemetry summarize`` uses, so the
    two reports can never disagree on how spans are aggregated.
    """
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.summarize import load_trace, summarize_trace

    summary = summarize_trace(load_trace(path))
    lines = [f"== {path.name}: per-pass breakdown =="]
    passes = summary["passes"]
    width = max((len(name) for name in passes), default=4)
    for name, row in sorted(
        passes.items(), key=lambda item: -item[1]["wall_seconds"]
    ):
        mean_ms = row["wall_seconds"] / row["calls"] * 1e3 if row["calls"] else 0.0
        lines.append(
            f"  {name:<{width}}  calls {row['calls']:>4d}  "
            f"wall {row['wall_seconds']:>8.4f} s  cpu {row['cpu_seconds']:>8.4f} s  "
            f"mean {mean_ms:>7.2f} ms"
        )
    if summary["compiles"]:
        lines.append(f"  compilations: {summary['compiles']}")
    return lines


def render_passes_summary(path: Path) -> str:
    """One line from a BENCH_passes.json snapshot: what the rewrite bought.

    ``rewrite shrink: X% nodes`` is the mean shrink across families;
    ``online-reshape Yx`` is the end-to-end on-vs-off wall ratio.  Meant
    for the CI job log, next to the numeric trend tables.
    """
    payload = json.loads(path.read_text())
    shrink = payload["shrink"]
    mean_pct = sum(row["shrink_pct"] for row in shrink.values()) / len(shrink)
    span = (
        f"{min(row['shrink_pct'] for row in shrink.values()):.1f}"
        f"-{max(row['shrink_pct'] for row in shrink.values()):.1f}%"
    )
    reshape = payload["online_reshape"]
    return (
        f"rewrite shrink: {mean_pct:.1f}% nodes "
        f"(mean over {len(shrink)} families, {span}), "
        f"online-reshape {reshape['on_over_off']:.2f}x "
        f"(on {reshape['on_s']:.3f}s vs off {reshape['off_s']:.3f}s)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--against", default="HEAD", metavar="REF",
        help="git ref holding the baseline snapshots (default HEAD)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when a snapshot is missing or unreadable",
    )
    parser.add_argument(
        "--trace", metavar="FILE", type=Path,
        help="telemetry trace (JSONL) to break down per pass",
    )
    parser.add_argument(
        "--passes", metavar="FILE", type=Path,
        help="BENCH_passes.json snapshot to summarize in one line",
    )
    args = parser.parse_args(argv)

    failures = 0
    snapshots = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if not snapshots:
        print("no BENCH_*.json snapshots found", file=sys.stderr)
        failures += 1
    for path in snapshots:
        try:
            current = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"== {path.name} == unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        baseline = committed_snapshot(args.against, path)
        if baseline is None:
            print(f"== {path.name} == not in {args.against} (new snapshot)")
            continue
        print(
            "\n".join(
                render_trend(
                    path.name, numeric_leaves(baseline), numeric_leaves(current)
                )
            )
        )
    if args.trace is not None:
        try:
            print("\n".join(render_trace_passes(args.trace)))
        except Exception as exc:  # unreadable/invalid trace
            print(f"== {args.trace} == no per-pass breakdown: {exc}", file=sys.stderr)
            failures += 1
    if args.passes is not None:
        try:
            print(render_passes_summary(args.passes))
        except Exception as exc:  # unreadable/missing snapshot
            print(f"== {args.passes} == no rewrite summary: {exc}", file=sys.stderr)
            failures += 1
    return 1 if args.strict and failures else 0


if __name__ == "__main__":
    sys.exit(main())
