"""Micro-benchmarks of the performance-critical primitives.

These use pytest-benchmark's normal statistical repetition (they are pure
and fast) and track the constants behind Fig. 14/15: bond sampling, the
renormalization path search, the tableau, and the mapper inner loop.
"""

import numpy as np

from repro.circuits import qaoa
from repro.graphstate import GraphState, Tableau
from repro.mbqc import translate_circuit
from repro.offline import OfflineMapper
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.dsu import DisjointSet


def test_bond_sampling_48(benchmark):
    rng = np.random.default_rng(0)
    benchmark(lambda: sample_lattice(48, 0.75, rng))


def test_components_vectorized_48(benchmark):
    """The online hot path: numpy label-propagation flood fill."""
    lattice = sample_lattice(48, 0.75, np.random.default_rng(0))
    benchmark(lattice.components)


def test_components_dsu_48(benchmark):
    """The pre-vectorization union-find reference, kept for comparison."""
    lattice = sample_lattice(48, 0.75, np.random.default_rng(0))
    benchmark(lattice.components_dsu)


def test_renormalize_48(benchmark):
    rng = np.random.default_rng(0)

    def run():
        return renormalize(sample_lattice(48, 0.75, rng), 3)

    benchmark(run)


def test_renormalize_96(benchmark):
    rng = np.random.default_rng(0)

    def run():
        return renormalize(sample_lattice(96, 0.75, rng), 6)

    benchmark(run)


def test_tableau_fusion_chain(benchmark):
    def run():
        graph = GraphState()
        for star in range(6):
            for leaf in range(1, 4):
                graph.add_edge(f"r{star}", (f"r{star}", leaf))
        tableau, index = Tableau.from_graph(graph)
        for star in range(5):
            tableau.fuse(index[(f"r{star}", 1)], index[(f"r{star+1}", 2)])
        return tableau

    benchmark(run)


def test_mapper_qaoa9(benchmark):
    pattern = translate_circuit(qaoa(9, seed=0))
    benchmark(lambda: OfflineMapper(width=3).map_pattern(pattern))


def test_dsu_union_heavy(benchmark):
    def run():
        dsu = DisjointSet()
        for i in range(5000):
            dsu.union(i % 701, (i * 31) % 701)
        return dsu.component_count

    benchmark(run)
