"""Determinism suite: every runner backend reproduces the golden records.

For each registered experiment, the bench-scale run is executed on the
thread and process runners (with per-experiment worker counts, so several
pool widths are exercised across the suite) and the canonical records are
asserted byte-identical to the checked-in golden snapshots — which the
regeneration benches already hold the *serial* runner to.  Together that is
the paper-level guarantee: scale/seed fix the records; the backend and the
worker count are pure wall-clock knobs.
"""

import pytest

from golden_records import assert_matches_golden

from repro import obs
from repro.experiments import experiment_names, get_experiment, make_runner

#: Worker counts per experiment — deliberately varied so the suite covers
#: single-worker pools, odd widths, and more workers than jobs-per-group.
WORKER_COUNTS = {
    "table2": (2, 3),
    "table3": (3, 2),
    "fig12": (4, 2),
    "fig13": (2, 4),
    "fig14": (3, 3),
    "fig15": (1, 4),
    "fig16": (4, 3),
    "loss": (2, 2),
    "passes": (2, 3),
}


@pytest.mark.parametrize("name", experiment_names())
def test_thread_runner_matches_golden(name, once):
    # .get: an experiment registered after this table still gets covered.
    thread_workers, _ = WORKER_COUNTS.get(name, (2, 2))
    runner = make_runner("thread", max_workers=thread_workers)
    result = once(get_experiment(name).run, "bench", 0, runner)
    assert result.runner == "thread"
    assert_matches_golden(name, result.records)


@pytest.mark.parametrize("name", experiment_names())
def test_process_runner_matches_golden(name, once):
    _, process_workers = WORKER_COUNTS.get(name, (2, 2))
    runner = make_runner("process", max_workers=process_workers)
    result = once(get_experiment(name).run, "bench", 0, runner)
    assert result.runner == "process"
    assert_matches_golden(name, result.records)


@pytest.mark.parametrize("runner_kind", ["serial", "thread", "process", "sharded"])
def test_scalar_pathfind_matches_golden_on_every_runner(runner_kind):
    """The scalar path-search oracle reproduces the golden records — which
    the regeneration bench pins to the default *vector* pathfinder — on
    every backend.  fig14 is the probe: it exercises renormalize through
    compile jobs (panel a) and through modular/non-modular FnJobs with the
    visited-sites proxy as a deterministic field (panel b), so any
    divergence in paths or accounting shows up byte-for-byte."""
    kwargs = {"shards": 2} if runner_kind == "sharded" else {"max_workers": 2}
    if runner_kind == "serial":
        kwargs = {}
    runner = make_runner(runner_kind, **kwargs)
    result = get_experiment("fig14").run("bench", 0, runner, pathfind="scalar")
    assert result.runner == runner_kind
    assert_matches_golden("fig14", result.records)


@pytest.mark.parametrize("runner_kind", ["serial", "thread", "process", "sharded"])
def test_rewrite_off_matches_golden_on_every_runner(runner_kind):
    """Disabling the pattern-rewrite pass reproduces the golden records —
    which the regeneration bench pins to the default ``rewrite="on"`` chain
    — on every backend.  That is the rewrite's oracle contract: on the
    (simplified) golden workloads the contraction finds nothing, so the
    rewritten and unrewritten pipelines must emit identical bytes, the
    same way ``--pathfind scalar`` oracles the vector pathfinder.  fig14
    again: compile jobs pick the override up through settings, FnJobs are
    (by design) left untouched."""
    kwargs = {"shards": 2} if runner_kind == "sharded" else {"max_workers": 2}
    if runner_kind == "serial":
        kwargs = {}
    runner = make_runner(runner_kind, **kwargs)
    result = get_experiment("fig14").run("bench", 0, runner, rewrite="off")
    assert result.runner == runner_kind
    assert_matches_golden("fig14", result.records)


@pytest.mark.parametrize("runner_kind", ["serial", "sharded"])
def test_telemetry_session_leaves_golden_records_untouched(runner_kind):
    """Telemetry is out-of-band: running under an active ``obs.session()``
    — which turns on span collection in every pipeline, cache hit/miss
    events, and cross-process telemetry merge for sharded children — must
    leave the canonical records byte-identical to the golden snapshot.
    fig14 again: compile jobs and FnJobs, so both record shapes are
    covered, on the in-process serial path and the subprocess shard path."""
    kwargs = {"shards": 2} if runner_kind == "sharded" else {}
    runner = make_runner(runner_kind, **kwargs)
    with obs.session() as tele:
        result = get_experiment("fig14").run("bench", 0, runner)
    assert result.runner == runner_kind
    assert_matches_golden("fig14", result.records)
    # The session actually observed the run — spans and counters exist —
    # so the byte-equality above is a real on-vs-off comparison.
    assert any(span["name"].startswith("run:") for span in tele.tracer.spans)
    assert any(span["name"] == "compile" for span in tele.tracer.spans)
