"""Bench: regenerate Fig. 16 (renormalization success vs node size).

Shape claims: for each fusion rate the success curve is (noisily) increasing
in the node side and saturates near 1; higher rates saturate earlier.
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment


def test_fig16_regeneration(once):
    result = once(run_experiment, "fig16", "bench")
    print("\n" + result.text)
    assert_matches_golden("fig16", result.records)

    by_rate: dict[float, list[tuple[int, float]]] = {}
    for record in result.records:
        by_rate.setdefault(record.fields["fusion_rate"], []).append(
            (record.fields["node_side"], record.fields["success_rate"])
        )
    for rate, series in by_rate.items():
        series.sort()
        assert series[-1][1] >= 0.9, f"p={rate}: largest node should saturate"
        assert series[0][1] <= series[-1][1]

    # Higher fusion rates reach 50% success at smaller node sides.
    def crossing(rate: float) -> int:
        for node, success in sorted(by_rate[rate]):
            if success >= 0.5:
                return node
        return 10**9

    assert crossing(0.78) <= crossing(0.66)
