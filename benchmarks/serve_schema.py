"""Line-by-line validation of a captured serve frame stream.

``repro submit --frames-out FILE`` dumps one request's response verbatim:
the ``ack`` frame, then the shared single-flight stream's exact wire
lines.  This checker pins that capture against the protocol contract
(:mod:`repro.serve.protocol`), so a frame-schema drift breaks CI's serve
smoke step instead of silently producing streams downstream clients
can't parse.

Structural checks per frame kind, plus the cross-line invariants that a
stream guarantees: at most one ``ack`` and it comes first, ``record``
sequence numbers are dense from zero, exactly one terminal frame and it
is last, and the ``summary``'s ``records`` count matches the record
frames actually streamed.  ``--min-hit-rate`` additionally asserts the
summary's record-derived cache hit rate — CI's warm-run check.

Usage (exit 0 when everything validates, 1 otherwise)::

    python benchmarks/serve_schema.py --frames frames.jsonl [--min-hit-rate 0.9]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Keep the repo importable when invoked as a script from anywhere: the
# checker validates against the library's declared protocol constants,
# never a copy that could drift.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.protocol import (  # noqa: E402
    FRAME_KINDS,
    OPS,
    PROTOCOL_VERSION,
    TERMINAL_FRAMES,
)

_NoneType = type(None)

#: ``field -> allowed types`` per frame kind (checked on top of the common
#: ``frame`` tag).  Payload sub-shapes are checked separately below.
_FRAME_FIELDS: dict[str, dict[str, tuple]] = {
    "hello": {"v": (int,), "server": (str,)},
    "ack": {"v": (int,), "id": (str, _NoneType), "op": (str,), "key": (str,),
            "coalesced": (bool,)},
    "record": {"seq": (int,), "record": (dict,)},
    "pass": {"pass": (str,), "seconds": (int, float)},
    "result": {"op": (str,), "result": (dict,)},
    "summary": {"v": (int,), "op": (str,), "records": (int,),
                "elapsed_s": (int, float), "cache": (dict,)},
    "error": {"v": (int,), "error": (str,), "kind": (str,)},
    "stats": {"v": (int,), "stats": (dict,)},
}

_RECORD_PAYLOAD_FIELDS = {
    "experiment": (str,),
    "scale": (str,),
    "seed": (int,),
    "job": (str,),
    "fields": (dict,),
    "timings": (dict,),
    "metrics": (dict,),
}

_CACHE_FIELDS = {
    "hits": (int,),
    "misses": (int,),
    "hit_rate": (int, float),
}


def _type_errors(obj: dict, fields: dict, where: str) -> list[str]:
    errors = []
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing key {key!r}")
        elif isinstance(obj[key], bool) and bool not in types:
            errors.append(f"{where}: {key!r} is bool, expected number")
        elif not isinstance(obj[key], types):
            errors.append(
                f"{where}: {key!r} is {type(obj[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    return errors


def validate_frames(
    path: str | Path, min_hit_rate: float | None = None
) -> list[str]:
    """All contract violations in a frame capture (empty list == valid)."""
    errors: list[str] = []
    frames: list[tuple[str, dict]] = []
    text = Path(path).read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            errors.append(f"{where}: blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: unparsable JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        frames.append((where, obj))
    if not frames and not errors:
        return ["frame capture is empty"]

    next_seq = 0
    record_count = 0
    terminals = 0
    summary: dict | None = None
    for index, (where, frame) in enumerate(frames):
        kind = frame.get("frame")
        if kind not in FRAME_KINDS:
            errors.append(f"{where}: unknown frame kind {kind!r}")
            continue
        errors.extend(_type_errors(frame, _FRAME_FIELDS[kind], where))
        if frame.get("v") not in (None, PROTOCOL_VERSION):
            errors.append(
                f"{where}: protocol v{frame['v']} != {PROTOCOL_VERSION}"
            )
        if kind == "ack" and index != 0:
            errors.append(f"{where}: ack must be the first frame of a capture")
        if kind == "hello" and index != 0:
            errors.append(f"{where}: hello after the start of a stream")
        if kind == "record":
            record_count += 1
            if frame.get("seq") != next_seq:
                errors.append(
                    f"{where}: seq {frame.get('seq')} (expected {next_seq})"
                )
            next_seq += 1
            payload = frame.get("record")
            if isinstance(payload, dict):
                errors.extend(
                    _type_errors(payload, _RECORD_PAYLOAD_FIELDS, where)
                )
        if kind in ("result", "summary") and frame.get("op") not in OPS:
            errors.append(f"{where}: unknown op {frame.get('op')!r}")
        if kind == "summary":
            summary = frame
            if isinstance(frame.get("cache"), dict):
                errors.extend(
                    _type_errors(frame["cache"], _CACHE_FIELDS, where)
                )
            if frame.get("records") != record_count:
                errors.append(
                    f"{where}: summary claims {frame.get('records')} records, "
                    f"stream carried {record_count}"
                )
        if kind in TERMINAL_FRAMES:
            terminals += 1
            if index != len(frames) - 1:
                errors.append(f"{where}: terminal frame is not last")
    if terminals != 1:
        errors.append(f"expected exactly one terminal frame, found {terminals}")
    if min_hit_rate is not None:
        if summary is None:
            errors.append("no summary frame to check --min-hit-rate against")
        else:
            rate = summary.get("cache", {}).get("hit_rate", 0.0)
            if not isinstance(rate, (int, float)) or rate < min_hit_rate:
                errors.append(
                    f"summary cache hit rate {rate!r} < floor {min_hit_rate}"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--frames", required=True,
        help="frame capture to validate (repro submit --frames-out)",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=None, metavar="RATE",
        help="also require the summary's cache hit rate >= RATE",
    )
    args = parser.parse_args(argv)
    try:
        errors = validate_frames(args.frames, min_hit_rate=args.min_hit_rate)
    except OSError as exc:
        errors = [f"unreadable: {exc}"]
    if errors:
        print(f"frames {args.frames}: INVALID", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    with open(args.frames) as handle:
        lines = sum(1 for _ in handle)
    print(f"frames {args.frames}: ok ({lines} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
