"""Bench: regenerate Fig. 13 (node-size stability, PL ratio, modularity).

Shape claims: the suitable node size stays within a narrow band across RSL
sizes and shrinks (weakly) with the fusion rate; the PL ratio grows with
program size toward a plateau; modular renormalization trades ~40 % of the
unlimited-time yield for a multiple of the time-restricted yield.
"""

from repro.experiments import fig13


def test_fig13_regeneration(once):
    result, text = once(fig13.run, "bench")
    print("\n" + text)

    # (a) stability: within each rate, node sizes span a narrow band.
    by_rate: dict[float, list[int]] = {}
    for rate, _rsl, node in result.suitable_node_sizes:
        by_rate.setdefault(rate, []).append(node)
    for rate, nodes in by_rate.items():
        assert max(nodes) - min(nodes) <= 10, f"node size unstable at p={rate}"
    assert min(by_rate[0.78]) <= min(by_rate[0.66])

    # (b) PL ratio: positive, and weakly growing with program size.
    by_family: dict[str, list[float]] = {}
    for family, _qubits, ratio in result.pl_ratios:
        by_family.setdefault(family, []).append(ratio)
    for family, ratios in by_family.items():
        assert all(r >= 1.0 for r in ratios)
        assert ratios[-1] >= ratios[0] * 0.9

    # (c) modularity: below unlimited non-modular, above restricted.
    nodes = {label: count for label, count, _wall in result.modularity}
    unlimited = nodes["non-modular (unlimited)"]
    restricted = nodes["non-modular (restricted)"]
    best_modular = max(
        count for label, count, _w in result.modularity if label.startswith("modules=")
    )
    assert best_modular <= unlimited
    assert best_modular > restricted
