"""Bench: regenerate Fig. 13 (node-size stability, PL ratio, modularity).

Shape claims: the suitable node size stays within a narrow band across RSL
sizes and shrinks (weakly) with the fusion rate; the PL ratio grows with
program size toward a plateau; modular renormalization trades part of the
unlimited-time yield for a multiple of the time-restricted yield.
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment


def test_fig13_regeneration(once):
    result = once(run_experiment, "fig13", "bench")
    print("\n" + result.text)
    assert_matches_golden("fig13", result.records)

    # (a) stability: within each rate, node sizes span a narrow band.
    by_rate: dict[float, list[int]] = {}
    for record in result.records:
        if record.fields.get("panel") == "a":
            by_rate.setdefault(record.fields["fusion_rate"], []).append(
                record.fields["node_side"]
            )
    for rate, nodes in by_rate.items():
        assert max(nodes) - min(nodes) <= 10, f"node size unstable at p={rate}"
    assert min(by_rate[0.78]) <= min(by_rate[0.66])

    # (b) PL ratio: positive, and weakly growing with program size.
    by_family: dict[str, list[float]] = {}
    for record in result.records:
        if record.fields.get("panel") == "b":
            by_family.setdefault(record.fields["benchmark"], []).append(
                record.fields["pl_ratio"]
            )
    for family, ratios in by_family.items():
        assert all(r >= 1.0 for r in ratios)
        assert ratios[-1] >= ratios[0] * 0.9

    # (c) modularity: below unlimited non-modular, above restricted.
    nodes = {
        record.fields["setting"]: record.fields["nodes_mean"]
        for record in result.records
        if record.fields.get("panel") == "c"
    }
    unlimited = nodes["non-modular (unlimited)"]
    restricted = nodes["non-modular (restricted)"]
    best_modular = max(
        count for label, count in nodes.items() if label.startswith("modules=")
    )
    assert best_modular <= unlimited
    assert best_modular > restricted
