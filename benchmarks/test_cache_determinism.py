"""Cache-correctness matrix: golden records in every cache/runner config.

The artifact cache's contract is bit-exactness: for a given (experiment,
scale, seed) the canonical records must be byte-identical with the cache
off (already held by the regeneration and determinism benches), cache on
cold, cache on warm, and across the serial/thread/process runners at
varying worker counts.  Each test walks one experiment through the matrix
in order (cold fills what warm reads) against one shared cache, asserting
the golden snapshot after every leg and checking the per-record hit/miss
provenance says what the leg should have done.

fig14 (compile jobs on tiny RSLs plus fn jobs) covers the full matrix
cheaply; table2 — the paper's headline sweep, with OneQ baseline jobs whose
repeat-until-success runs are the expensive part — covers the disk cache
shared from a serial cold run into warm thread and process runs.
"""

from golden_records import assert_matches_golden

from repro.experiments import get_experiment, make_runner
from repro.pipeline import DiskCache, MemoryCache


def _compile_metrics(result):
    return [record.metrics for record in result.records if record.metrics]


def _assert_all(result, name, counter):
    assert_matches_golden(name, result.records)
    per_record = _compile_metrics(result)
    assert per_record, f"{name}: no compile-job metrics surfaced"
    assert all(counter in metrics for metrics in per_record), (
        f"{name}: expected every compile record to report {counter}"
    )


def test_fig14_matrix_memory_and_disk(tmp_path):
    experiment = get_experiment("fig14")
    memory = MemoryCache()

    cold = experiment.run("bench", 0, make_runner("serial", cache=memory))
    _assert_all(cold, "fig14", "cache_misses")

    warm_serial = experiment.run("bench", 0, make_runner("serial", cache=memory))
    _assert_all(warm_serial, "fig14", "cache_hits")
    assert warm_serial.cache_stats()["hit_rate"] == 1.0

    warm_thread = experiment.run(
        "bench", 0, make_runner("thread", max_workers=3, cache=memory)
    )
    _assert_all(warm_thread, "fig14", "cache_hits")

    disk = DiskCache(tmp_path / "fig14")
    cold_process = experiment.run(
        "bench", 0, make_runner("process", max_workers=2, cache=disk)
    )
    _assert_all(cold_process, "fig14", "cache_misses")

    warm_process = experiment.run(
        "bench", 0, make_runner("process", max_workers=3, cache=disk)
    )
    _assert_all(warm_process, "fig14", "cache_hits")
    assert warm_process.cache_stats()["hit_rate"] == 1.0

    # The disk cache written by process workers serves the serial runner too.
    warm_cross = experiment.run("bench", 0, make_runner("serial", cache=disk))
    _assert_all(warm_cross, "fig14", "cache_hits")


def test_table2_disk_cache_shared_across_runners(tmp_path):
    experiment = get_experiment("table2")
    disk = DiskCache(tmp_path / "table2")

    cold = experiment.run("bench", 0, make_runner("serial", cache=disk))
    _assert_all(cold, "table2", "cache_misses")
    # The bench sweep repeats circuits only across the compiler axis
    # (OnePerc vs OneQ share each circuit's translate artifact).
    assert cold.cache_stats()["hits"] > 0

    warm_thread = experiment.run(
        "bench", 0, make_runner("thread", max_workers=2, cache=disk)
    )
    _assert_all(warm_thread, "table2", "cache_hits")
    assert warm_thread.cache_stats()["hit_rate"] == 1.0

    warm_process = experiment.run(
        "bench", 0, make_runner("process", max_workers=4, cache=disk)
    )
    _assert_all(warm_process, "table2", "cache_hits")
    assert warm_process.cache_stats()["hit_rate"] == 1.0
