"""Bench: regenerate Table 2 (OnePerc vs OneQ, #RSL and #fusion).

Shape claims checked here (the paper's headline results):

* OneQ hits the RSL cap for every benchmark at the practical rate 0.75;
* OnePerc compiles everything, with #RSL orders of magnitude below the cap;
* at 4 qubits / p = 0.9, OnePerc pays *more* fusions than OneQ (percolation
  overhead), while its #RSL is still smaller.

The serial run must also reproduce the checked-in golden records byte for
byte (the reference the pool runners are compared against).
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment
from repro.experiments.table2 import paired_rows


def test_table2_regeneration(once):
    result = once(run_experiment, "table2", "bench")
    print("\n" + result.text)
    assert_matches_golden("table2", result.records)

    rows = paired_rows(result.records)
    practical = [row for row in rows if row["fusion_rate"] == 0.75]
    assert practical, "bench scale must include the practical rate"
    assert all(row["oneq_capped"] for row in practical)
    assert all(row["oneperc_rsl"] < row["oneq_rsl"] for row in practical)

    hyper_small = [
        row for row in rows if row["fusion_rate"] == 0.90 and "4" in row["benchmark"]
    ]
    assert all(row["rsl_improvement"] > 1.0 for row in hyper_small)
    assert all(row["fusion_improvement"] < 1.0 for row in hyper_small)
