"""Perf-trajectory snapshot for the experiments layer's batch execution.

Times a Table-2-style compile sweep two ways — a hand-rolled per-item
``Pipeline.compile`` loop (how the drivers worked before the experiment API)
vs one ``compile_many`` batch (how every runner executes compile jobs now) —
and asserts the floor: batching must not regress per-item throughput.  Also
records per-runner wall-clock for one full experiment so the trajectory of
the runner layer itself is visible across PRs.  Everything lands in
``benchmarks/BENCH_experiments.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.circuits.benchmarks import make_benchmark
from repro.experiments import get_experiment, make_runner
from repro.pipeline import Pipeline, PipelineSettings

SNAPSHOT = Path(__file__).parent / "BENCH_experiments.json"

FAMILIES = ("qaoa", "qft", "rca", "vqe")
SEEDS = (0, 1, 2)
PASSES = 3  # best-of-N damps scheduler noise on loaded machines

#: The sweep: every family at 4 qubits, three seeds, the p = 0.9 group.
SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

#: Batching must hold at least this fraction of per-item throughput.
BATCH_FLOOR = 0.75


def _best_seconds(fn) -> float:
    best = float("inf")
    for _ in range(PASSES):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_sweep_throughput_snapshot():
    circuits = [
        make_benchmark(family, 4, seed=seed) for family in FAMILIES for seed in SEEDS
    ]
    seeds = [seed for _family in FAMILIES for seed in SEEDS]
    pipeline = Pipeline(SETTINGS)

    # Warm-up: one compile absorbs lazy imports and numpy dispatch.
    pipeline.compile(circuits[0], seed=seeds[0])

    per_item_s = _best_seconds(
        lambda: [
            pipeline.compile(circuit, seed=seed)
            for circuit, seed in zip(circuits, seeds)
        ]
    )
    batched_s = _best_seconds(
        lambda: pipeline.compile_many(circuits, seeds=seeds, backend="serial")
    )
    per_item_ops = len(circuits) / per_item_s
    batched_ops = len(circuits) / batched_s

    # One full experiment per runner backend, for the runner-layer trend.
    runner_seconds = {}
    for backend in ("serial", "thread", "process"):
        runner = make_runner(backend, max_workers=2)
        start = time.perf_counter()
        get_experiment("fig15").run("bench", seed=0, runner=runner)
        runner_seconds[backend] = time.perf_counter() - start

    snapshot = {
        "sweep": {
            "families": list(FAMILIES),
            "num_qubits": 4,
            "seeds": list(SEEDS),
            "fusion_success_rate": SETTINGS.fusion_success_rate,
            "jobs": len(circuits),
        },
        "python": platform.python_version(),
        "per_item_compile": {"ops_per_s": per_item_ops, "total_s": per_item_s},
        "batched_compile_many": {"ops_per_s": batched_ops, "total_s": batched_s},
        "batched_over_per_item": batched_ops / per_item_ops,
        "fig15_bench_runner_seconds": runner_seconds,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    assert batched_ops >= BATCH_FLOOR * per_item_ops, (
        f"compile_many batching regressed: {batched_ops:.2f} ops/s vs "
        f"{per_item_ops:.2f} ops/s per-item ({batched_ops / per_item_ops:.2f}x, "
        f"floor {BATCH_FLOOR}x)"
    )
