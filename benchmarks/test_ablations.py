"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism and measures the cost, quantifying why
the mechanism exists:

* collective retry (Section 4.3) vs single-shot bonds;
* dynamic DAG scheduling vs OneQ's static partition;
* the 25 % occupancy reserve vs a packed layer;
* alternating vertical/horizontal path search vs all-vertical-then-
  all-horizontal.
"""

import numpy as np

from repro.circuits import qaoa, qft
from repro.graphstate import ResourceStateSpec
from repro.hardware import FusionDevice, HardwareConfig
from repro.mbqc import translate_circuit
from repro.offline import OfflineMapper
from repro.online import form_layer
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize


def test_collective_retry_gain(once):
    """Retries with redundant degrees lift the open-bond fraction well above
    the raw fusion rate (5-qubit stars: 0.75 -> ~0.94)."""

    def measure() -> tuple[float, float]:
        config = HardwareConfig(rsl_size=48, resource_state=ResourceStateSpec(5))
        with_retry = form_layer(config, FusionDevice(0.75, rng=0))
        open_fraction = (
            with_retry.lattice.horizontal.sum() + with_retry.lattice.vertical.sum()
        ) / (2 * 48 * 47)
        return float(open_fraction), 0.75

    open_fraction, raw = once(measure)
    print(f"\nretry bond rate {open_fraction:.3f} vs raw {raw}")
    # Each site carries one redundant leaf shared across its four bonds, so
    # the boost is below the two-shot bound 1-(1-p)^2 ~ 0.94 but well above
    # the raw rate.
    assert open_fraction > raw + 0.05


def test_dynamic_vs_static_scheduling(once):
    """Dynamic front-layer scheduling maps in no more layers than OneQ's
    static partition (Section 6.2, optimization 1)."""

    def measure() -> tuple[int, int]:
        pattern = translate_circuit(qft(9))
        dynamic = OfflineMapper(width=3).map_pattern(pattern)
        static = OfflineMapper(width=3, dynamic_scheduling=False).map_pattern(pattern)
        return dynamic.layer_count, static.layer_count

    dynamic_layers, static_layers = once(measure)
    print(f"\ndynamic {dynamic_layers} vs static {static_layers} layers")
    assert dynamic_layers <= static_layers * 1.1


def test_occupancy_reserve_effect(once):
    """Packing layers full of incomplete nodes congests routing; the 25 %
    reserve keeps the layer count from degrading (optimization 2)."""

    def measure() -> tuple[int, int]:
        pattern = translate_circuit(qaoa(16, seed=0))
        reserved = OfflineMapper(width=4, occupancy_limit=0.25).map_pattern(pattern)
        packed = OfflineMapper(width=4, occupancy_limit=1.0).map_pattern(pattern)
        return reserved.layer_count, packed.layer_count

    reserved_layers, packed_layers = once(measure)
    print(f"\nreserved {reserved_layers} vs packed {packed_layers} layers")
    # The reserve must not be catastrophically worse; usually it is better
    # on congested programs.
    assert reserved_layers <= packed_layers * 1.5


def test_alternating_search_matches_sequential(once):
    """Alternating vertical/horizontal search (the paper's order) succeeds at
    least as often as all-vertical-then-all-horizontal at equal work."""

    def measure() -> tuple[int, int]:
        rng = np.random.default_rng(0)
        alternating = 0
        for _ in range(30):
            lattice = sample_lattice(48, 0.72, rng)
            alternating += renormalize(lattice, 3).success
        return alternating, 30

    hits, trials = once(measure)
    print(f"\nalternating search success {hits}/{trials}")
    assert hits > trials // 2
