"""Bench: regenerate Fig. 14 (online time per RSL).

Shape claims: per-RSL online time is flat in program size, grows with RSL
size, and modularity cuts the (concurrent) wall work substantially.
"""

from repro.experiments import fig14


def test_fig14_regeneration(once):
    result, text = once(fig14.run, "bench")
    print("\n" + text)

    # (a) flat in program size: max/min within a small factor.
    seconds = [s for _label, s in result.per_program]
    assert max(seconds) <= 4 * min(seconds)

    # (b) grows with RSL size (non-modular series) ...
    non_modular = sorted(
        (rsl, wall)
        for rsl, modules, _s, wall in result.per_rsl_size
        if modules == 1
    )
    assert non_modular[-1][1] > non_modular[0][1]

    # ... and modularity reduces wall work at the largest size.
    largest = max(rsl for rsl, _m, _s, _w in result.per_rsl_size)
    walls = {
        modules: wall
        for rsl, modules, _s, wall in result.per_rsl_size
        if rsl == largest
    }
    assert walls[16] < walls[1]
    assert walls[4] < walls[1]
