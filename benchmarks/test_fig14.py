"""Bench: regenerate Fig. 14 (online time per RSL).

Shape claims: per-RSL online time is flat in program size, grows with RSL
size, and modularity cuts the (concurrent) wall work substantially.  The
wall-clock columns live in the records' timings; the golden comparison
covers only the deterministic fields.
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment
from repro.experiments.fig14 import seconds_per_rsl


def test_fig14_regeneration(once):
    result = once(run_experiment, "fig14", "bench")
    print("\n" + result.text)
    assert_matches_golden("fig14", result.records)

    # (a) flat in program size: max/min within a small factor.
    seconds = [
        seconds_per_rsl(record)
        for record in result.records
        if record.fields.get("panel") == "a"
    ]
    assert seconds
    assert max(seconds) <= 4 * min(seconds)

    # (b) grows with RSL size (non-modular series) ...
    panel_b = [
        record.fields for record in result.records if record.fields.get("panel") == "b"
    ]
    non_modular = sorted(
        (fields["rsl_size"], fields["visited_per_attempt"])
        for fields in panel_b
        if fields["modules"] == 1
    )
    assert non_modular[-1][1] > non_modular[0][1]

    # ... and modularity reduces wall work at the largest size.
    largest = max(fields["rsl_size"] for fields in panel_b)
    walls = {
        fields["modules"]: fields["visited_per_attempt"]
        for fields in panel_b
        if fields["rsl_size"] == largest
    }
    assert walls[16] < walls[1]
    assert walls[4] < walls[1]
