"""Schema validation for device-validator diagnostics JSON.

A :class:`~repro.passes.validators.ValidationError` prints one JSON object
(``ValidationError.to_json``): the ``validation`` error tag, a schema
version, the rejecting validator's name, a one-line summary, and the full
diagnostic list.  CI's pass-ecosystem smoke step compiles a deliberately
invalid circuit, captures that object, and runs it through this checker —
so any drift in the failure shape breaks the smoke step instead of
silently producing output downstream tooling can't parse.

Validation is structural, not semantic: required keys, field types, rule
ids in ``family/check`` form, severities from the pinned vocabulary.

Usage (exit 0 when the capture validates, 1 otherwise)::

    python benchmarks/passes_schema.py --diagnostics DIAG.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Keep the repo importable when invoked as a script from anywhere: the
# checker validates against the library's declared schema version, never
# a copy that could drift.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.passes.validators import DIAGNOSTICS_SCHEMA_VERSION, SEVERITIES  # noqa: E402

_TOP_FIELDS = {
    "error": (str,),
    "schema": (int,),
    "validator": (str,),
    "summary": (str,),
    "diagnostics": (list,),
}

_DIAGNOSTIC_FIELDS = {
    "rule": (str,),
    "severity": (str,),
    "message": (str,),
    "location": (dict,),
}


def _type_errors(obj: dict, fields: dict, where: str) -> list[str]:
    errors = []
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing key {key!r}")
        elif not isinstance(obj[key], types) or isinstance(obj[key], bool):
            errors.append(
                f"{where}: {key!r} is {type(obj[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    return errors


def validate_diagnostics(path: str | Path) -> list[str]:
    """All schema violations in a diagnostics capture (empty list == valid)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        return [f"unparsable JSON: {exc}"]
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]

    errors = _type_errors(payload, _TOP_FIELDS, "top level")
    if payload.get("error") not in (None, "validation"):
        errors.append(f"top level: error tag {payload['error']!r} != 'validation'")
    schema = payload.get("schema")
    if isinstance(schema, int) and schema != DIAGNOSTICS_SCHEMA_VERSION:
        errors.append(
            f"top level: schema {schema} != {DIAGNOSTICS_SCHEMA_VERSION}"
        )

    diagnostics = payload.get("diagnostics")
    if isinstance(diagnostics, list):
        if not diagnostics:
            errors.append("diagnostics list is empty (a rejection must explain itself)")
        for index, diagnostic in enumerate(diagnostics):
            where = f"diagnostic {index}"
            if not isinstance(diagnostic, dict):
                errors.append(f"{where}: not a JSON object")
                continue
            errors.extend(_type_errors(diagnostic, _DIAGNOSTIC_FIELDS, where))
            rule = diagnostic.get("rule")
            if isinstance(rule, str) and "/" not in rule:
                errors.append(f"{where}: rule {rule!r} is not in family/check form")
            severity = diagnostic.get("severity")
            if isinstance(severity, str) and severity not in SEVERITIES:
                errors.append(
                    f"{where}: severity {severity!r} not in {'/'.join(SEVERITIES)}"
                )
        # An error-severity rejection must actually carry an error.
        severities = [
            d.get("severity") for d in diagnostics if isinstance(d, dict)
        ]
        if severities and "error" not in severities:
            errors.append("no error-severity diagnostic (rejection without a cause)")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--diagnostics", required=True, metavar="FILE",
        help="captured validator-failure JSON to validate",
    )
    args = parser.parse_args(argv)
    try:
        errors = validate_diagnostics(args.diagnostics)
    except OSError as exc:
        errors = [f"unreadable: {exc}"]
    if errors:
        print(f"diagnostics {args.diagnostics}: INVALID", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    payload = json.loads(Path(args.diagnostics).read_text())
    print(
        f"diagnostics {args.diagnostics}: ok "
        f"({payload['validator']}, {len(payload['diagnostics'])} diagnostic(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
