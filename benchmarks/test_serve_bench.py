"""Perf snapshot for the compile service (``repro.serve``).

Three measurements land in ``benchmarks/BENCH_serve.json`` (picked up by
``bench_trend.py`` alongside the other snapshots):

* **Cold vs warm request latency** — one compile-heavy experiment request
  (table2) against a server holding a disk cache: the first request
  compiles everything, the second replays the warm store.  This is the
  service's headline — repeat traffic costs deserialization plus protocol
  overhead, not recompilation — with a conservative floor (the cache
  bench pins the raw ~hundreds-x pipeline-level win; here the experiment
  harness and socket round-trips are inside the measurement).

* **Coalesced vs serial throughput** — N identical concurrent requests
  (single-flight coalesces them onto one compile) against the same N
  requests issued back-to-back on a cache-less server.  Coalescing must
  make the burst cost about one compile, not N.

* **Golden byte-identity** — asserted, not timed: the streamed records of
  a served request equal a local ``Experiment.run``'s byte for byte, so
  the snapshot can never be produced by a server that broke determinism.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from pathlib import Path

from repro.experiments.api import canonical_json, get_experiment
from repro.pipeline.cache import DiskCache
from repro.serve import ServeClient, ServeConfig, ServerThread

SNAPSHOT = Path(__file__).parent / "BENCH_serve.json"

#: Compile-heavy request for the cold/warm latency pair.  table2 is all
#: CompileJobs, so its warm pass is nearly pure cache replay (fig14/fig15
#: mix in FnJobs whose Monte-Carlo loops never touch the artifact cache).
LATENCY_EXPERIMENT = "table2"
#: Fast request for the coalescing burst (compiles in ~a quarter second,
#: so the serial comparison stays cheap at N clients).
BURST_EXPERIMENT = "fig15"
BURST_CLIENTS = 4

#: Acceptance floors — deliberately far under the typical ratios (warm
#: runs usually land >10x, coalesced bursts near Nx) so scheduler noise
#: on CI runners never trips them, while a real regression (cache or
#: single-flight silently disabled) still does.
WARM_FLOOR = 2.0
COALESCE_FLOOR = 1.5


def _submit_timed(client: ServeClient, request: dict) -> tuple[float, object]:
    start = time.perf_counter()
    run = client.submit(request).raise_for_error()
    return time.perf_counter() - start, run


def test_serve_latency_and_coalescing_snapshot(tmp_path):
    request = {"op": "experiment", "name": LATENCY_EXPERIMENT}

    # -- cold vs warm latency against a disk-cached server ------------------
    cache = DiskCache(tmp_path / "store")
    with ServerThread(ServeConfig(port=0, cache=cache)) as st:
        client = ServeClient(port=st.port)
        client.wait_until_up()
        cold_s, cold = _submit_timed(client, request)
        warm_s, warm = _submit_timed(client, request)
    warm_speedup = cold_s / warm_s

    # byte-identity gate: the snapshot is meaningless off a broken server
    local = get_experiment(LATENCY_EXPERIMENT).run("bench")
    assert canonical_json(cold.records) == canonical_json(local.records)
    assert canonical_json(warm.records) == canonical_json(local.records)
    assert warm.summary["cache"]["hit_rate"] > 0.9

    # -- coalesced burst vs serial repeats (no cache: compiles are real) ----
    burst_request = {"op": "experiment", "name": BURST_EXPERIMENT}
    with ServerThread(ServeConfig(port=0)) as st:
        clients = [ServeClient(port=st.port) for _ in range(BURST_CLIENTS)]
        clients[0].wait_until_up()

        serial_start = time.perf_counter()
        for client in clients:
            client.submit(burst_request).raise_for_error()
        serial_s = time.perf_counter() - serial_start

        runs: list = [None] * BURST_CLIENTS
        barrier = threading.Barrier(BURST_CLIENTS)

        def submit(slot: int) -> None:
            barrier.wait(timeout=30)
            runs[slot] = clients[slot].submit(burst_request)

        threads = [
            threading.Thread(target=submit, args=(slot,))
            for slot in range(BURST_CLIENTS)
        ]
        burst_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        burst_s = time.perf_counter() - burst_start
        flight = st.server.singleflight.stats()
    for run in runs:
        run.raise_for_error()
    # every client of the burst received the complete identical stream
    reference = runs[0].raw
    assert all(run.raw == reference for run in runs[1:])
    coalesce_speedup = serial_s / burst_s

    snapshot = {
        "python": platform.python_version(),
        "latency": {
            "experiment": LATENCY_EXPERIMENT,
            "records": len(cold.records),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_hit_rate": warm.summary["cache"]["hit_rate"],
            "warm_over_cold": warm_speedup,
        },
        "coalescing": {
            "experiment": BURST_EXPERIMENT,
            "clients": BURST_CLIENTS,
            "serial_s": serial_s,
            "burst_s": burst_s,
            "serial_over_burst": coalesce_speedup,
            "singleflight_coalesced": flight["coalesced"],
        },
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    assert warm_speedup >= WARM_FLOOR, (
        f"warm request only {warm_speedup:.2f}x over cold (floor {WARM_FLOOR}x)"
    )
    assert coalesce_speedup >= COALESCE_FLOOR, (
        f"coalesced burst only {coalesce_speedup:.2f}x over serial repeats "
        f"(floor {COALESCE_FLOOR}x)"
    )
