"""Parallel-runner scaling snapshot: warm pools must not lose to serial.

``BENCH_experiments.json`` exposed the PR-9 bug: the thread/process
runners *lost* to serial at bench scale because every run paid pool
startup and a pickle round trip per job.  This bench pins the fix.  A
12-job compile sweep (four benchmark families x three seeds) runs on
every backend with the pools already warm — the steady state the warm
pool registry exists to provide — and the snapshot in
``benchmarks/BENCH_scaling.json`` records the scaling curve
(``bench_trend.py`` picks it up, CI uploads it and prints the headline).

Two gates:

* **Determinism**: canonical records are byte-identical across
  serial/thread/process/sharded with pools warm, chunked, and reused.
* **The floor**: on a multi-core machine the process runner must be at
  least as fast as serial (speedup >= 1.0) — parallelism that subtracts
  performance is the bug this PR fixed.  On a single-core machine
  (CI containers are often 1-vCPU) there is no parallel win to have, so
  the floor is the overhead bound instead: warm-pool dispatch may cost
  at most ~15% over serial.  The snapshot records ``cpu_count`` so a
  trend reader knows which regime a number came from.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.experiments import CompileJob, canonical_json, make_runner
from repro.pipeline import PipelineSettings

SNAPSHOT = Path(__file__).parent / "BENCH_scaling.json"

FAMILIES = ("qaoa", "qft", "rca", "vqe")
SEEDS = (0, 1, 2)
PASSES = 3  # best-of-N damps scheduler noise on loaded machines
WORKERS = 2

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

#: Multi-core: the process runner must not lose to serial.
FLOOR_MULTICORE = 1.0
#: Single-core: no parallel win exists; bound the dispatch overhead.
FLOOR_SINGLE_CORE = 0.85

BACKENDS = (
    ("serial", {}),
    ("thread", {"max_workers": WORKERS}),
    ("process", {"max_workers": WORKERS}),
    ("sharded", {"shards": WORKERS}),
)


def _jobs():
    return [
        CompileJob(
            key=f"{family}4/s{seed}",
            meta={"benchmark": f"{family}-4", "seed_axis": seed},
            family=family,
            num_qubits=4,
            settings=SETTINGS,
            seed=seed,
        )
        for family in FAMILIES
        for seed in SEEDS
    ]


def _run(backend: str, kwargs: dict):
    runner = make_runner(backend, **kwargs)
    return runner.run_jobs(_jobs(), experiment="scaling", scale="bench", seed=0)


def test_scaling_snapshot_and_floor():
    cpu_count = os.cpu_count() or 1

    # Warm-up pass per backend: pools spin up and workers pre-import
    # outside the timed region — steady state is what the registry sells.
    reference = canonical_json(_run("serial", {}))
    for backend, kwargs in BACKENDS[1:]:
        records = _run(backend, kwargs)
        assert canonical_json(records) == reference, (
            f"{backend} records diverged from serial"
        )

    seconds: dict[str, float] = {}
    for backend, kwargs in BACKENDS:
        best = float("inf")
        for _ in range(PASSES):
            start = time.perf_counter()
            records = _run(backend, kwargs)
            best = min(best, time.perf_counter() - start)
        # Warm, chunked, reused — and still byte-identical.
        assert canonical_json(records) == reference, (
            f"{backend} records diverged from serial on a warm pool"
        )
        seconds[backend] = best

    speedups = {
        backend: seconds["serial"] / seconds[backend]
        for backend in seconds
        if backend != "serial"
    }
    floor = FLOOR_MULTICORE if cpu_count >= 2 else FLOOR_SINGLE_CORE
    snapshot = {
        "sweep": {
            "families": list(FAMILIES),
            "num_qubits": 4,
            "seeds": list(SEEDS),
            "jobs": len(FAMILIES) * len(SEEDS),
            "workers": WORKERS,
        },
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "runner_seconds": seconds,
        "speedup_over_serial": speedups,
        "process_floor": floor,
        "records_identical": True,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    assert speedups["process"] >= floor, (
        f"process runner lost to serial: {seconds['process']:.3f}s vs "
        f"{seconds['serial']:.3f}s ({speedups['process']:.2f}x, floor "
        f"{floor}x at cpu_count={cpu_count})"
    )
