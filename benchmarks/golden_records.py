"""Golden bench-scale record snapshots: loading and equality assertions.

``benchmarks/golden/<name>.json`` pins the canonical (deterministic) record
portion of each experiment's bench-scale run at seed 0.  The regeneration
benches assert the serial runner reproduces those bytes; the determinism
bench asserts the thread and process runners do too, for varying worker
counts.  Regenerate with ``benchmarks/golden/regenerate.py`` after an
intentional change.
"""

import json
from pathlib import Path

from repro.experiments.api import ExperimentRecord, canonical_json

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_canonical(name: str) -> str:
    """The checked-in records for ``name``, through the one true serializer.

    The snapshot's canonical dicts are rehydrated into records and fed to
    ``canonical_json`` itself, so the equality predicate has a single
    definition — a format change there can never masquerade as a
    determinism regression here.
    """
    payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    records = [
        ExperimentRecord(
            experiment=entry["experiment"],
            scale=entry["scale"],
            seed=entry["seed"],
            job=entry["job"],
            fields=entry["fields"],
        )
        for entry in payload["records"]
    ]
    return canonical_json(records)


def assert_matches_golden(name: str, records) -> None:
    assert canonical_json(records) == golden_canonical(name), (
        f"{name}: bench-scale records diverge from benchmarks/golden/{name}.json; "
        "if the change is intentional, regenerate the snapshot"
    )
