"""Bench: the photon-loss extension experiment.

Shape claims: loss scales the effective fusion rate by (1-l)^2 and #RSL is
(weakly) non-decreasing in the loss rate.
"""

from golden_records import assert_matches_golden

from repro.analysis import monotone_fraction
from repro.experiments import run_experiment
from repro.experiments.loss import effective_rate


def test_loss_regeneration(once):
    result = once(run_experiment, "loss", "bench")
    print("\n" + result.text)
    assert_matches_golden("loss", result.records)

    by_benchmark: dict[str, list[tuple[float, int]]] = {}
    for record in result.records:
        fields = record.fields
        assert fields["effective_rate"] == effective_rate(fields["loss_rate"])
        by_benchmark.setdefault(fields["benchmark"], []).append(
            (fields["loss_rate"], fields["rsl_count"])
        )
    for benchmark, series in by_benchmark.items():
        series.sort()
        counts = [count for _rate, count in series]
        # Noisy Monte-Carlo: demand a clear overall tilt, not strictness.
        assert (
            monotone_fraction(counts, decreasing=False) >= 0.5
        ), f"{benchmark}: #RSL should not improve with loss"
        assert counts[-1] >= counts[0] * 0.8
