"""Bench: the photon-loss extension experiment.

Shape claims: loss scales the effective fusion rate by (1-l)^2 and #RSL is
(weakly) non-decreasing in the loss rate.
"""

from repro.analysis import monotone_fraction
from repro.experiments import loss


def test_loss_regeneration(once):
    points, text = once(loss.run, "bench")
    print("\n" + text)

    by_benchmark: dict[str, list[tuple[float, int]]] = {}
    for point in points:
        assert point.effective_rate == loss.effective_rate(point.loss_rate)
        by_benchmark.setdefault(point.benchmark, []).append(
            (point.loss_rate, point.rsl_count)
        )
    for benchmark, series in by_benchmark.items():
        series.sort()
        counts = [count for _rate, count in series]
        # Noisy Monte-Carlo: demand a clear overall tilt, not strictness.
        assert (
            monotone_fraction(counts, decreasing=False) >= 0.5
        ), f"{benchmark}: #RSL should not improve with loss"
        assert counts[-1] >= counts[0] * 0.8
