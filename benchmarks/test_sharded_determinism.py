"""Sharded/streamed determinism: both paths reproduce the golden records.

Extends the serial/thread/process matrix (benchmarks/
test_experiment_determinism.py) to the two execution modes this layer
added last: every registered experiment is run (a) on the sharded runner —
per-experiment shard counts, subprocess shards, DiskCache artifact
exchange — and (b) as a drained ``iter_records`` stream folded back
through ``ExperimentResult.from_stream``.  Canonical records must be
byte-identical to the checked-in golden snapshots either way, which is
the ISSUE-5 guarantee: sharding and streaming are pure wall-clock/
latency knobs, never a result change.

The sharded runs double as an artifact-exchange check: every experiment
with compile jobs must end its cold sharded run with merged entries in
the shared store (nonzero lookups, all of them misses the first time).
"""

import pytest

from golden_records import assert_matches_golden

from repro.experiments import (
    ExperimentResult,
    experiment_names,
    get_experiment,
    make_runner,
)
from repro.pipeline import DiskCache

#: Shard counts per experiment — varied so the suite covers one-shard
#: degenerate runs, odd widths, and more shards than some groups have jobs.
SHARD_COUNTS = {
    "table2": 3,
    "table3": 2,
    "fig12": 4,
    "fig13": 3,
    "fig14": 2,
    "fig15": 5,
    "fig16": 2,
    "loss": 4,
}

#: Experiments whose bench-scale sweeps contain compile jobs (the others
#: are pure FnJob sweeps and never touch the artifact store).
COMPILE_EXPERIMENTS = {"table2", "fig12", "fig13", "fig14", "loss"}


@pytest.mark.parametrize("name", experiment_names())
def test_sharded_runner_matches_golden(name, once, tmp_path):
    # .get: an experiment registered after this table still gets covered.
    shards = SHARD_COUNTS.get(name, 2)
    cache = DiskCache(tmp_path / "store")
    runner = make_runner("sharded", cache=cache, shards=shards)
    result = once(get_experiment(name).run, "bench", 0, runner)
    assert result.runner == "sharded"
    assert_matches_golden(name, result.records)
    stats = result.cache_stats()
    if name in COMPILE_EXPERIMENTS:
        # The shards' delta directories merged back: the store is warm for
        # whoever runs next.  The cold pass is mostly misses (intra-shard
        # sharing — e.g. a OnePerc/OneQ pair landing in one shard — may
        # yield a few hits, never a majority).
        assert stats["misses"] > 0
        assert stats["misses"] > stats["hits"]
        assert len(cache) > 0
    else:
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0}


@pytest.mark.parametrize("name", experiment_names())
def test_streamed_records_match_golden(name, once):
    experiment = get_experiment(name)

    def drain():
        return ExperimentResult.from_stream(
            experiment, experiment.iter_records("bench", 0), runner="serial"
        )

    result = once(drain)
    assert_matches_golden(name, result.records)
    # The streamed fold reproduces the blocking result shape, not just the
    # records: same provenance and same rendered text.
    assert (result.experiment, result.scale, result.seed) == (name, "bench", 0)
    assert result.text == experiment.render(result.records)
