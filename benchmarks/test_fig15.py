"""Bench: regenerate Fig. 15 (offline compilation time).

Shape claims: offline time grows with program size; against virtual hardware
length the *layer count* falls monotonically while wall time stays within a
band (the U-shape's two competing forces).
"""

from repro.experiments import fig15


def test_fig15_regeneration(once):
    result, text = once(fig15.run, "bench")
    print("\n" + text)

    by_family: dict[str, list[tuple[int, float]]] = {}
    for family, qubits, seconds in result.by_program_size:
        by_family.setdefault(family, []).append((qubits, seconds))
    for family, series in by_family.items():
        series.sort()
        assert series[-1][1] > series[0][1], f"{family}: time should grow with size"

    layers_by_width: dict[str, list[tuple[int, int]]] = {}
    for family, width, _seconds, layers in result.by_virtual_size:
        layers_by_width.setdefault(family, []).append((width, layers))
    for family, series in layers_by_width.items():
        series.sort()
        assert series[-1][1] < series[0][1], f"{family}: layers should fall with width"
