"""Bench: regenerate Fig. 15 (offline compilation time).

Shape claims: offline time grows with program size; against virtual hardware
length the *layer count* falls monotonically while wall time stays within a
band (the U-shape's two competing forces).
"""

from golden_records import assert_matches_golden

from repro.experiments import run_experiment


def test_fig15_regeneration(once):
    result = once(run_experiment, "fig15", "bench")
    print("\n" + result.text)
    assert_matches_golden("fig15", result.records)

    by_family: dict[str, list[tuple[int, float]]] = {}
    for record in result.records:
        if record.fields["panel"] == "a":
            by_family.setdefault(record.fields["benchmark"], []).append(
                (record.fields["num_qubits"], record.timings["offline_seconds"])
            )
    for family, series in by_family.items():
        series.sort()
        assert series[-1][1] > series[0][1], f"{family}: time should grow with size"

    layers_by_width: dict[str, list[tuple[int, int]]] = {}
    for record in result.records:
        if record.fields["panel"] == "b":
            layers_by_width.setdefault(record.fields["benchmark"], []).append(
                (record.fields["virtual_length"], record.fields["logical_layers"])
            )
    for family, series in layers_by_width.items():
        series.sort()
        assert series[-1][1] < series[0][1], f"{family}: layers should fall with width"
