"""The online pass up close: percolation, renormalization, modularity.

Renders a percolated RSL as ASCII art with the carved coarse-lattice paths,
then sweeps the fusion rate through the percolation threshold and compares
modular against non-modular renormalization.

Run:  python examples/percolation_playground.py
"""

import numpy as np

from repro.online import (
    modular_renormalize,
    renormalize,
    sample_lattice,
    spanning_probability,
)


def render(lattice, result) -> str:
    """ASCII view: '.' dead, 'o' alive, '|' vertical path, '-' horizontal,
    '+' renormalized node (path crossing)."""
    n = lattice.size
    canvas = [["." if not lattice.sites[r, c] else "o" for c in range(n)] for r in range(n)]
    for path in result.vertical_paths:
        for r, c in path:
            canvas[r][c] = "|"
    for path in result.horizontal_paths:
        for r, c in path:
            canvas[r][c] = "-" if canvas[r][c] != "|" else "+"
    for coord in result.node_sites.values():
        canvas[coord[0]][coord[1]] = "+"
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    rng = np.random.default_rng(3)

    print("=== Percolation threshold (square lattice bonds, p_c = 1/2) ===")
    for p in (0.40, 0.48, 0.52, 0.60, 0.75):
        spanning = spanning_probability(24, p, trials=40, rng=rng)
        print(f"  p = {p:.2f}: spanning probability {spanning:.2f}")
    print()

    print("=== 2D renormalization of a 24x24 RSL at p = 0.75 ===")
    lattice = sample_lattice(24, 0.75, rng)
    result = renormalize(lattice.copy(), 3)
    print(f"success: {result.success}, nodes: {len(result.node_sites)}")
    print(render(lattice, result))
    print()

    print("=== Modular renormalization (Fig. 10/13(c)) ===")
    big = sample_lattice(72, 0.78, rng)
    full = renormalize(big.copy(), 72 // 12)
    print(f"non-modular: {full.lattice_size ** 2} nodes, work {full.visited_sites}")
    for modules in (4, 9):
        outcome = modular_renormalize(big.copy(), 12, modules, mi_ratio=7.0)
        print(
            f"{modules} modules: {outcome.node_count} nodes, "
            f"wall work {outcome.wall_visited_sites} "
            f"(total {outcome.total_visited_sites})"
        )


if __name__ == "__main__":
    main()
