"""The paper's motivating example (Section 3.1): why OneQ + retry fails.

Builds small target structures from star resource states with the naive
dynamic-retry strategy and measures how restarts (fatal failures) scale with
the structure size and fusion rate — then shows OnePerc's percolation-based
layer handling the same rates without any per-structure retries.

Run:  python examples/motivating_example.py
"""

from repro.baseline.dynamic_retry import (
    build_with_dynamic_retry,
    chain_edges,
    triangle_edges,
)
from repro.online import renormalize, sample_lattice
from repro.utils.tables import TextTable


def average_dynamic(edges, rate, trials=60):
    rsls = 0
    steps = 0
    for seed in range(trials):
        result = build_with_dynamic_retry(
            edges, resource_state_size=4, fusion_success_rate=rate, rng=seed
        )
        rsls += result.rsls_consumed
        steps += result.sequential_steps
    return rsls / trials, steps / trials


def main() -> None:
    print("=== Dynamic retry on growing target structures (p = 0.75) ===")
    table = TextTable(["target", "avg RSLs (restarts + 1)", "avg sequential steps"])
    cases = [("triangle (Fig. 5a)", triangle_edges())] + [
        (f"chain of {n} edges", chain_edges(n)) for n in (2, 4, 6, 8)
    ]
    for label, edges in cases:
        rsls, steps = average_dynamic(edges, 0.75)
        table.add_row(label, f"{rsls:.1f}", f"{steps:.1f}")
    print(table)
    print()

    print("=== The same fusion rate, handled by percolation instead ===")
    hits = 0
    trials = 20
    for seed in range(trials):
        lattice = sample_lattice(36, 0.75, rng=seed)
        hits += renormalize(lattice, 2).success
    print(
        f"one 36x36 RSL renormalizes to a 2x2 logical lattice "
        f"{hits}/{trials} of the time — no retries, no sequential stalls,\n"
        f"and the offline pass maps any program onto the result."
    )
    print()
    print(
        "Reading: dynamic retry's cost grows with the *structure*, and every\n"
        "fusion waits for the previous outcome; OnePerc's cost is a property\n"
        "of the *layer* and all fusions fire concurrently (Section 3.2)."
    )


if __name__ == "__main__":
    main()
