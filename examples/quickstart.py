"""Quickstart: compile a small program with OnePerc and read the metrics.

Run:  python examples/quickstart.py
"""

from repro.circuits import qaoa
from repro.compiler import OnePercCompiler

def main() -> None:
    # A 4-qubit QAOA maxcut instance (half of all possible edges, seeded).
    circuit = qaoa(num_qubits=4, seed=1)
    print(circuit)
    print()

    # The practical hardware of the paper: 4-qubit star resource states and
    # a 75% fusion success rate.  RSL and virtual hardware sizes default to
    # the paper's Table 1 scaling for the qubit count.
    compiler = OnePercCompiler(
        fusion_success_rate=0.75,
        resource_state_size=4,
        seed=7,
        emit_instructions=True,
    )
    result = compiler.compile(circuit)

    print(f"#RSL consumed:        {result.rsl_count}")
    print(f"#fusions attempted:   {result.fusion_count}")
    print(f"logical layers:       {result.logical_layers}")
    print(f"PL ratio (RSL/layer): {result.pl_ratio:.2f}")
    print(f"offline compile time: {result.offline_seconds*1000:.1f} ms")
    print(f"online time per RSL:  {result.online_seconds_per_rsl*1000:.2f} ms")
    print()

    print("First 12 intermediate-level instructions:")
    for instruction in result.instructions[:12]:
        print(f"  {instruction}")
    print(f"  ... ({len(result.instructions)} total)")

    # Compare with the OneQ baseline under repeat-until-success.
    baseline = compiler.compile_baseline(circuit)
    cap = "(hit the cap)" if baseline.capped else ""
    print()
    print(f"OneQ baseline #RSL:   {baseline.rsl_count} {cap}")
    print(f"OnePerc advantage:    {baseline.rsl_count / result.rsl_count:.1f}x fewer RSLs")


if __name__ == "__main__":
    main()
