"""Domain scenario: sizing photonic hardware for a VQE workload.

A chemistry team wants to run hardware-efficient VQE ansaetze (the paper's
full-entanglement benchmark) on a fusion-based photonic machine and needs to
know: how do #RSL (wall-clock) and #fusion (error exposure) scale with the
molecule's qubit count, and what does a better fusion module buy?

Run:  python examples/vqe_molecule_workflow.py
"""

from repro.circuits import vqe
from repro.compiler import OnePercCompiler
from repro.mbqc import translate_circuit
from repro.mbqc.translate import pattern_size_summary
from repro.utils.tables import TextTable


def main() -> None:
    print("=== VQE program sizes after MBQC translation ===")
    sizes = TextTable(["qubits", "graph nodes", "graph edges", "measured qubits"])
    for qubits in (4, 9, 16):
        summary = pattern_size_summary(translate_circuit(vqe(qubits, seed=0)))
        sizes.add_row(qubits, summary["nodes"], summary["edges"], summary["measured"])
    print(sizes)
    print()

    print("=== Compilation cost vs molecule size (p = 0.75, 4-qubit stars) ===")
    cost = TextTable(["qubits", "#RSL", "#fusion", "logical layers", "PL ratio"])
    for qubits in (4, 9, 16):
        compiler = OnePercCompiler(
            fusion_success_rate=0.75, resource_state_size=4, seed=1, max_rsl=10**5
        )
        result = compiler.compile(vqe(qubits, seed=0))
        cost.add_row(
            qubits,
            result.rsl_count,
            result.fusion_count,
            result.logical_layers,
            f"{result.pl_ratio:.1f}",
        )
    print(cost)
    print()

    print("=== What does a better fusion module buy? (VQE-9) ===")
    upgrade = TextTable(["fusion rate", "#RSL", "#fusion"])
    for rate in (0.70, 0.75, 0.78, 0.90):
        compiler = OnePercCompiler(
            fusion_success_rate=rate, resource_state_size=4, seed=1, max_rsl=10**5
        )
        result = compiler.compile(vqe(9, seed=0))
        upgrade.add_row(rate, result.rsl_count, result.fusion_count)
    print(upgrade)
    print()
    print(
        "Reading: #RSL sets execution time (1 RSL ~ 1 ns at GHz RSG clocks),\n"
        "#fusion sets the error budget; both improve with the fusion rate,\n"
        "and OnePerc keeps them finite even at the practical 0.75."
    )


if __name__ == "__main__":
    main()
