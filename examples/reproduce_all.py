"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/reproduce_all.py [bench|paper] [output.md]

``bench`` (default) uses the scaled-down parameters (a few minutes);
``paper`` uses the paper's own parameters (hours, as the artifact appendix
warns).  With an output path the report is also written as markdown —
EXPERIMENTS.md's measured sections were produced this way.
"""

import sys
import time

from repro.experiments import fig12, fig13, fig14, fig15, fig16, loss, table2, table3

EXPERIMENTS = [
    ("Table 2", table2),
    ("Table 3", table3),
    ("Fig. 12", fig12),
    ("Fig. 13", fig13),
    ("Fig. 14", fig14),
    ("Fig. 15", fig15),
    ("Fig. 16", fig16),
    ("Photon loss (extension)", loss),
]


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "bench"
    output_path = sys.argv[2] if len(sys.argv) > 2 else None
    sections: list[str] = []
    for name, module in EXPERIMENTS:
        start = time.perf_counter()
        _rows, text = module.run(scale)
        elapsed = time.perf_counter() - start
        header = f"== {name} (scale={scale}, {elapsed:.1f}s) =="
        print(header)
        print(text)
        print()
        sections.append(f"### {name}\n\n```\n{text}\n```\n")
    if output_path:
        with open(output_path, "w") as handle:
            handle.write(
                f"# Reproduced evaluation (scale = {scale})\n\n" + "\n".join(sections)
            )
        print(f"wrote {output_path}")


if __name__ == "__main__":
    main()
