"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/reproduce_all.py [bench|paper] [output.md]
                                       [--runner serial|thread|process|sharded]
                                       [--workers N] [--shards N]
                                       [--cache-dir DIR]

``bench`` (default) uses the scaled-down parameters (a few minutes);
``paper`` uses the paper's own parameters (hours, as the artifact appendix
warns).  With an output path the report is also written as markdown —
EXPERIMENTS.md's measured sections were produced this way.

The experiment list comes from the registry (`repro.experiments.api`), so a
newly registered experiment shows up here with no edits; the runner flags
pick the execution backend (records are identical for every backend).
``--cache-dir`` points every experiment of the run at one shared disk
artifact cache (see ARCHITECTURE.md's "Artifact cache") — a re-run after a
crash or parameter-study iteration then skips every compilation stage it
has already seen, with records byte-identical either way.  ``--runner
sharded --shards N`` partitions each experiment across N subprocesses that
exchange artifacts through per-shard views of that same cache directory
(requires ``--cache-dir``, or runs uncached).
"""

import argparse
import time

from repro.errors import ReproError
from repro.experiments import EXPERIMENT_REGISTRY, RUNNERS, make_runner
from repro.pipeline import DiskCache
from repro.pipeline.cache import cache_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="bench", choices=("bench", "paper"))
    parser.add_argument("output", nargs="?", default=None, help="optional markdown path")
    parser.add_argument("--runner", default="serial", choices=list(RUNNERS))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--shards", type=int, default=None, help="shard count for --runner sharded"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="shared disk artifact cache directory"
    )
    args = parser.parse_args()

    cache = DiskCache(args.cache_dir) if args.cache_dir else None
    try:
        runner = make_runner(
            args.runner, max_workers=args.workers, cache=cache, shards=args.shards
        )
    except ReproError as exc:  # bad runner/shard/cache combination
        raise SystemExit(f"reproduce_all: {exc}") from exc
    sections: list[str] = []
    cache_hits = cache_misses = 0
    for name, experiment in EXPERIMENT_REGISTRY.items():
        start = time.perf_counter()
        result = experiment.run(args.scale, runner=runner)
        elapsed = time.perf_counter() - start
        header = f"== {name}: {experiment.description} (scale={args.scale}, {elapsed:.1f}s) =="
        print(header)
        print(result.text)
        print()
        sections.append(f"### {name}\n\n```\n{result.text}\n```\n")
        stats = result.cache_stats()  # per-record counts survive process pools
        cache_hits += stats["hits"]
        cache_misses += stats["misses"]
    if cache is not None:
        totals = cache_summary(cache_hits, cache_misses)
        print(
            f"cache ({args.cache_dir}): {totals['hits']} hits, "
            f"{totals['misses']} misses, hit rate {totals['hit_rate']:.0%}"
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(
                f"# Reproduced evaluation (scale = {args.scale})\n\n"
                + "\n".join(sections)
            )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
