"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/reproduce_all.py [bench|paper] [output.md]
                                       [--runner serial|thread|process]
                                       [--workers N]

``bench`` (default) uses the scaled-down parameters (a few minutes);
``paper`` uses the paper's own parameters (hours, as the artifact appendix
warns).  With an output path the report is also written as markdown —
EXPERIMENTS.md's measured sections were produced this way.

The experiment list comes from the registry (`repro.experiments.api`), so a
newly registered experiment shows up here with no edits; the runner flags
pick the execution backend (records are identical for every backend).
"""

import argparse
import time

from repro.experiments import EXPERIMENT_REGISTRY, RUNNERS, make_runner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="bench", choices=("bench", "paper"))
    parser.add_argument("output", nargs="?", default=None, help="optional markdown path")
    parser.add_argument("--runner", default="serial", choices=list(RUNNERS))
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()

    runner = make_runner(args.runner, max_workers=args.workers)
    sections: list[str] = []
    for name, experiment in EXPERIMENT_REGISTRY.items():
        start = time.perf_counter()
        result = experiment.run(args.scale, runner=runner)
        elapsed = time.perf_counter() - start
        header = f"== {name}: {experiment.description} (scale={args.scale}, {elapsed:.1f}s) =="
        print(header)
        print(result.text)
        print()
        sections.append(f"### {name}\n\n```\n{result.text}\n```\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(
                f"# Reproduced evaluation (scale = {args.scale})\n\n"
                + "\n".join(sections)
            )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
