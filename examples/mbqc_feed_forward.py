"""MBQC semantics end to end: translation, feed-forward, and validation.

Shows the machinery the compiler is built on: a circuit becomes a
measurement pattern on a program graph state; executing it with *random*
measurement outcomes and flow corrections reproduces the circuit exactly.

Run:  python examples/mbqc_feed_forward.py
"""

import numpy as np

from repro.circuits import qft, simulate_statevector, states_equal_up_to_phase
from repro.mbqc import DependencyDAG, run_pattern, translate_circuit


def main() -> None:
    circuit = qft(3)
    pattern = translate_circuit(circuit)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(
        f"pattern: {pattern.node_count} graph-state qubits, "
        f"{pattern.graph.edge_count} edges, {pattern.measured_count} measured"
    )

    dag = DependencyDAG(pattern)
    print(f"dependency DAG depth: {dag.depth()} (front layer drives the mapper)")
    print()

    zero = np.zeros(2**3, dtype=complex)
    zero[0] = 1.0
    reference = simulate_statevector(circuit)

    print("five random-outcome executions (feed-forward corrects each):")
    for seed in range(5):
        output, outcomes = run_pattern(
            pattern, input_state=zero, rng=np.random.default_rng(seed)
        )
        ones = sum(outcomes.values())
        ok = states_equal_up_to_phase(output, reference)
        print(
            f"  seed {seed}: {ones:2d}/{len(outcomes)} outcomes were 1 -> "
            f"output {'matches' if ok else 'DIVERGES FROM'} the circuit"
        )

    print()
    print("the same pattern, postselected on all-zero outcomes (no corrections):")
    output, _ = run_pattern(pattern, input_state=zero, postselect_zeros=True)
    print(f"  matches: {states_equal_up_to_phase(output, reference)}")


if __name__ == "__main__":
    main()
