"""Sizing hardware automatically: the Fig. 16 policy as a tool.

Given a fusion module's measured success rate, pick the smallest average
node size whose renormalization saturates (Fig. 16's "smallest node size
that brings the success probability close to 1"), size the RSL for a target
virtual hardware, and sanity-check the raw 3D resource with the cubic
percolation model.

Run:  python examples/autotune_hardware.py
"""

from repro.analysis import crossing_point
from repro.online import (
    CUBIC_BOND_THRESHOLD,
    choose_node_side,
    rsl_size_for_virtual,
    sample_lattice3d,
    success_curve,
)
from repro.utils.tables import TextTable


def main() -> None:
    print("=== Raw 3D resource check (Fig. 7(b)'s comfort margin) ===")
    for rate in (0.66, 0.75):
        lattice = sample_lattice3d(8, rate, rng=0)
        fraction = lattice.largest_cluster_fraction()
        print(
            f"  p = {rate}: giant cluster holds {fraction:.0%} of sites "
            f"(threshold is {CUBIC_BOND_THRESHOLD})"
        )
    print()

    print("=== Success curves and transition points (Fig. 16 policy) ===")
    table = TextTable(["fusion rate", "50% crossing (node side)", "chosen node side"])
    for rate in (0.66, 0.72, 0.78):
        curve = success_curve(48, rate, [6, 8, 12, 16, 24], trials=8, rng=1)
        crossing = crossing_point(
            [n for n, _ in curve], [s for _, s in curve], threshold=0.5
        )
        choice = choose_node_side(48, rate, target_success=0.9, trials=8, rng=1)
        table.add_row(
            rate,
            "-" if crossing is None else f"{crossing:.1f}",
            choice.node_side,
        )
    print(table)
    print()

    print("=== RSL sizing for a 3x3 virtual hardware ===")
    sizing = TextTable(["fusion rate", "RSL side", "node side", "est. success"])
    for rate in (0.70, 0.75, 0.80):
        choice = rsl_size_for_virtual(3, rate, target_success=0.9, trials=8, rng=2)
        sizing.add_row(
            rate, choice.rsl_size, choice.node_side, f"{choice.estimated_success:.2f}"
        )
    print(sizing)
    print()
    print(
        "Reading: better fusion modules shrink the node size, and with it the\n"
        "RSL a given program needs — the quantitative form of Fig. 12(c)."
    )


if __name__ == "__main__":
    main()
