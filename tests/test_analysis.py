"""Tests for the experiment statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    bootstrap_mean,
    crossing_point,
    geometric_mean,
    monotone_fraction,
    repeat_runs,
)


class TestBootstrap:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.0)

    def test_single_sample_degenerate(self):
        summary = bootstrap_mean([3.0])
        assert summary.mean == summary.low == summary.high == 3.0
        assert summary.half_width == 0.0

    def test_interval_contains_mean(self):
        summary = bootstrap_mean([1, 2, 3, 4, 5], rng=0)
        assert summary.low <= summary.mean <= summary.high
        assert summary.samples == 5

    def test_tight_data_tight_interval(self):
        tight = bootstrap_mean([10.0] * 20, rng=0)
        loose = bootstrap_mean(list(range(20)), rng=0)
        assert tight.half_width <= loose.half_width

    def test_str_format(self):
        assert "n=2" in str(bootstrap_mean([1.0, 2.0], rng=0))

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_interval_brackets_sample_range(self, values):
        summary = bootstrap_mean(values, rng=1)
        assert min(values) - 1e-9 <= summary.low
        assert summary.high <= max(values) + 1e-9


class TestRepeatRuns:
    def test_runner_called_per_replica(self):
        calls = []

        def runner(index: int) -> float:
            calls.append(index)
            return float(index)

        summary = repeat_runs(runner, repetitions=4, rng=0)
        assert calls == [0, 1, 2, 3]
        assert summary.mean == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat_runs(lambda i: 0.0, repetitions=0)


class TestTrends:
    def test_monotone_fraction_perfect(self):
        assert monotone_fraction([5, 4, 3, 2]) == 1.0
        assert monotone_fraction([1, 2, 3], decreasing=False) == 1.0

    def test_monotone_fraction_plateaus_count(self):
        assert monotone_fraction([3, 3, 2]) == 1.0

    def test_monotone_fraction_noise(self):
        assert monotone_fraction([5, 6, 3, 2]) == pytest.approx(2 / 3)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            monotone_fraction([1])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestCrossingPoint:
    def test_interpolates(self):
        assert crossing_point([0, 10], [0.0, 1.0], 0.5) == pytest.approx(5.0)

    def test_already_above(self):
        assert crossing_point([2, 4], [0.9, 1.0], 0.5) == 2.0

    def test_never_crosses(self):
        assert crossing_point([0, 10], [0.0, 0.2], 0.5) is None

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            crossing_point([1], [1, 2], 0.5)

    def test_fig16_style_usage(self):
        """Locating sigmoid transitions, as the Fig. 16 analysis does."""
        nodes = [6, 9, 12, 18, 24]
        low_rate = [0.0, 0.0, 0.1, 0.5, 0.9]
        high_rate = [0.0, 0.4, 0.9, 1.0, 1.0]
        assert crossing_point(nodes, high_rate, 0.5) < crossing_point(
            nodes, low_rate, 0.5
        )
