"""Tests for the FlexLattice IR and the instruction set."""

import pytest

from repro.errors import InstructionError, IRError
from repro.ir import (
    ROLE_ANCILLA,
    ROLE_GRAPH,
    ROLE_WORLDLINE,
    EnableTemporalVEdge,
    FlexLatticeIR,
    InstructionInterpreter,
    MakeVNodeAncilla,
    MapVNode,
    RetrieveVNode,
    StoreVNode,
    lower_ir,
)


class TestFlexLatticeIR:
    def test_width_validation(self):
        with pytest.raises(IRError):
            FlexLatticeIR(0)

    def test_add_node_and_query(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 7)
        assert ir.node_at((0, 0, 0)).g_node == 7
        assert ir.layer_count == 1

    def test_coordinate_single_use(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_ANCILLA)
        with pytest.raises(IRError):
            ir.add_node((0, 0, 0), ROLE_ANCILLA)

    def test_out_of_bounds_rejected(self):
        ir = FlexLatticeIR(2)
        with pytest.raises(IRError):
            ir.add_node((2, 0, 0), ROLE_ANCILLA)
        with pytest.raises(IRError):
            ir.add_node((0, 0, -1), ROLE_ANCILLA)

    def test_role_payload_consistency(self):
        ir = FlexLatticeIR(2)
        with pytest.raises(IRError):
            ir.add_node((0, 0, 0), ROLE_GRAPH)  # graph without g_node
        with pytest.raises(IRError):
            ir.add_node((0, 1, 0), ROLE_ANCILLA, 3)  # ancilla with g_node

    def test_spatial_edge_rules(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_ANCILLA)
        ir.add_node((0, 1, 0), ROLE_ANCILLA)
        ir.add_node((0, 2, 1), ROLE_ANCILLA)
        ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        with pytest.raises(IRError):  # duplicate
            ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        with pytest.raises(IRError):  # cross-layer
            ir.add_spatial_edge((0, 1, 0), (0, 2, 1))

    def test_spatial_edge_requires_adjacency(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_ANCILLA)
        ir.add_node((2, 2, 0), ROLE_ANCILLA)
        with pytest.raises(IRError):
            ir.add_spatial_edge((0, 0, 0), (2, 2, 0))

    def test_temporal_edge_one_per_direction(self):
        """Rule 3 of the virtual hardware (Section 6.1)."""
        ir = FlexLatticeIR(2)
        for layer in range(3):
            ir.add_node((0, 0, layer), ROLE_ANCILLA)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 1))
        with pytest.raises(IRError):  # second forward edge from layer 0
            ir.add_temporal_edge((0, 0, 0), (0, 0, 2))
        ir.add_temporal_edge((0, 0, 1), (0, 0, 2))
        with pytest.raises(IRError):  # second backward edge into layer 2
            ir.add_temporal_edge((0, 0, 0), (0, 0, 2))

    def test_temporal_edge_same_coordinate(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 0), ROLE_ANCILLA)
        ir.add_node((0, 1, 1), ROLE_ANCILLA)
        with pytest.raises(IRError):
            ir.add_temporal_edge((0, 0, 0), (0, 1, 1))

    def test_temporal_edge_forward_only(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 1), ROLE_ANCILLA)
        ir.add_node((0, 0, 0), ROLE_ANCILLA)
        with pytest.raises(IRError):
            ir.add_temporal_edge((0, 0, 1), (0, 0, 0))

    def test_cross_layer_temporal_edges_allowed(self):
        ir = FlexLatticeIR(2)
        ir.add_node((1, 1, 0), ROLE_GRAPH, 1)
        ir.add_node((1, 1, 5), ROLE_WORLDLINE, 1)
        ir.add_temporal_edge((1, 1, 0), (1, 1, 5))
        assert ir.temporal_edges() == [((1, 1, 0), (1, 1, 5))]

    def test_graph_nodes_unique(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 1, 0), ROLE_GRAPH, 1)
        with pytest.raises(IRError):
            ir.graph_nodes()

    def test_connected_graph_pairs_direct(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 1, 0), ROLE_GRAPH, 2)
        ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        assert ir.connected_graph_pairs() == {frozenset((1, 2))}

    def test_connected_graph_pairs_through_wire(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 1, 0), ROLE_ANCILLA)
        ir.add_node((0, 2, 0), ROLE_GRAPH, 2)
        ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        ir.add_spatial_edge((0, 1, 0), (0, 2, 0))
        assert ir.connected_graph_pairs() == {frozenset((1, 2))}

    def test_connected_graph_pairs_through_worldline(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 0, 2), ROLE_WORLDLINE, 1)
        ir.add_node((0, 1, 2), ROLE_GRAPH, 2)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 2))
        ir.add_spatial_edge((0, 0, 2), (0, 1, 2))
        assert ir.connected_graph_pairs() == {frozenset((1, 2))}

    def test_overloaded_wire_detected(self):
        ir = FlexLatticeIR(3)
        ir.add_node((1, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((1, 1, 0), ROLE_ANCILLA)
        ir.add_node((1, 2, 0), ROLE_GRAPH, 2)
        ir.add_node((0, 1, 0), ROLE_GRAPH, 3)
        ir.add_spatial_edge((1, 0, 0), (1, 1, 0))
        ir.add_spatial_edge((1, 1, 0), (1, 2, 0))
        ir.add_spatial_edge((0, 1, 0), (1, 1, 0))
        with pytest.raises(IRError):
            ir.connected_graph_pairs()

    def test_structural_equality(self):
        def build():
            ir = FlexLatticeIR(2)
            ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
            ir.add_node((0, 1, 0), ROLE_ANCILLA)
            ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
            return ir

        assert build().structurally_equal(build())
        other = build()
        other.add_node((1, 1, 0), ROLE_ANCILLA)
        assert not build().structurally_equal(other)

    def test_validate_passes_on_consistent_ir(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 0, 1), ROLE_WORLDLINE, 1)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 1))
        ir.validate()


class TestInstructions:
    def test_paper_canonical_cross_layer_example(self):
        """The Section 6.3 worked example executes verbatim.

        Ancilla A1 at (1,1,0) is stored, retrieved at (1,1,1) *through* the
        resident node N, and lands on graph node A at (1,1,2).
        """
        program = [
            MakeVNodeAncilla(v_node=(1, 1, 0)),
            StoreVNode(v_node=(1, 1, 0)),
            MakeVNodeAncilla(v_node=(1, 1, 1)),  # the resident node N
            RetrieveVNode(v_node=(1, 1, 0), position=(1, 1, 1)),
            MapVNode(v_node=(1, 1, 2), g_node=0),
            EnableTemporalVEdge(v_node=(1, 1, 1), adjacent_v_node=(1, 1, 2)),
        ]
        ir = InstructionInterpreter(width=3).run(program)
        assert ((1, 1, 0), (1, 1, 2)) in ir.temporal_edges()

    def test_retrieve_requires_store(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            RetrieveVNode(v_node=(0, 0, 0), position=(0, 0, 1)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_store_twice_rejected(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            StoreVNode(v_node=(0, 0, 0)),
            StoreVNode(v_node=(0, 0, 0)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_retrieve_must_keep_coordinate(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            StoreVNode(v_node=(0, 0, 0)),
            RetrieveVNode(v_node=(0, 0, 0), position=(1, 1, 1)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_retrieve_must_advance_time(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 1)),
            StoreVNode(v_node=(0, 0, 1)),
            RetrieveVNode(v_node=(0, 0, 1), position=(0, 0, 1)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_dangling_store_rejected_at_end(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            StoreVNode(v_node=(0, 0, 0)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_dangling_transit_rejected_at_end(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            StoreVNode(v_node=(0, 0, 0)),
            MakeVNodeAncilla(v_node=(0, 0, 1)),
            RetrieveVNode(v_node=(0, 0, 0), position=(0, 0, 1)),  # transit
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_direct_temporal_enable_adjacent_only(self):
        program = [
            MakeVNodeAncilla(v_node=(0, 0, 0)),
            MakeVNodeAncilla(v_node=(0, 0, 2)),
            EnableTemporalVEdge(v_node=(0, 0, 0), adjacent_v_node=(0, 0, 2)),
        ]
        with pytest.raises(InstructionError):
            InstructionInterpreter(2).run(program)

    def test_retrieve_recreates_identity(self):
        program = [
            MapVNode(v_node=(0, 0, 0), g_node=9),
            StoreVNode(v_node=(0, 0, 0)),
            RetrieveVNode(v_node=(0, 0, 0), position=(0, 0, 3)),
        ]
        ir = InstructionInterpreter(2).run(program)
        node = ir.node_at((0, 0, 3))
        assert node.role == ROLE_WORLDLINE
        assert node.g_node == 9

    def test_lower_ir_round_trip_simple(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 1, 0), ROLE_ANCILLA)
        ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        ir.add_node((0, 0, 3), ROLE_WORLDLINE, 1)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 3))
        ir.add_node((0, 1, 3), ROLE_GRAPH, 2)
        ir.add_spatial_edge((0, 0, 3), (0, 1, 3))
        program = lower_ir(ir)
        rebuilt = InstructionInterpreter(3).run(program)
        assert rebuilt.structurally_equal(ir)
        assert rebuilt.connected_graph_pairs() == ir.connected_graph_pairs()

    def test_lower_ir_emits_store_retrieve_for_worldlines(self):
        ir = FlexLatticeIR(2)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 0, 4), ROLE_WORLDLINE, 1)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 4))
        program = lower_ir(ir)
        kinds = [type(instr).__name__ for instr in program]
        assert "StoreVNode" in kinds
        assert "RetrieveVNode" in kinds
