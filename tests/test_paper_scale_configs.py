"""Consistency checks on the paper-scale parameter sets (without running them).

`scale="paper"` runs take hours; these tests make sure the configurations
are at least well-formed and match the paper's Table 1 / figure captions, so
a long run cannot die on a typo.
"""

from repro.circuits.benchmarks import BENCHMARKS
from repro.compiler.driver import rsl_size_for, virtual_size_for
from repro.experiments import fig12, fig13, fig14, fig15, fig16, loss, table2, table3


class TestTableConfigs:
    def test_table2_paper_settings(self):
        settings = dict(
            (rate, (qubits, cap, node)) for rate, qubits, cap, node in table2.SCALE_SETTINGS["paper"]
        )
        assert 0.90 in settings and 0.75 in settings
        qubits_90, cap_90, node_90 = settings[0.90]
        qubits_75, cap_75, node_75 = settings[0.75]
        assert cap_90 == cap_75 == 10**6  # the paper's cap
        assert node_90 == 12 and node_75 == 24  # Table 1's RSL scaling
        assert set(qubits_90) <= {4, 9, 25}
        assert set(qubits_75) <= {4, 25, 64, 100}

    def test_table1_rsl_sizes_reproduced(self):
        """Our sizing helpers reproduce Table 1's RSL column exactly."""
        expected = {
            (4, 0.90): 24,
            (9, 0.90): 36,
            (25, 0.90): 60,
            (4, 0.75): 48,
            (25, 0.75): 120,
            (64, 0.75): 192,
            (100, 0.75): 240,
        }
        for (qubits, rate), rsl in expected.items():
            assert rsl_size_for(qubits, rate) == rsl

    def test_table1_virtual_sizes_reproduced(self):
        expected = {4: 2, 9: 3, 25: 5, 64: 8, 100: 10}
        for qubits, virtual in expected.items():
            assert virtual_size_for(qubits) == virtual

    def test_table3_paper_settings(self):
        assert table3.SCALE_QUBITS["paper"] == (25, 64, 100)
        assert table3.SCALE_REFRESH["paper"] == 50  # "refresh rate of 50"
        assert table3.SCALE_BUDGET["paper"] == 32 * 2**30  # 32 GB


class TestFigureConfigs:
    def test_fig12_paper_sweeps(self):
        families, qubits, virtual = fig12.SCALE_PROGRAM["paper"]
        assert set(families) == set(BENCHMARKS)
        assert qubits == 36 and virtual == 6  # "36-qubit benchmarks"
        resource, rsls, rates, rsl_a, rsl_c, base = fig12.SCALE_SWEEPS["paper"]
        assert resource == (4, 5, 6, 7)  # Fig. 12(a)'s x-axis
        assert rsl_a == rsl_c == 84  # "hardware size being 84x84"
        assert base == 0.75
        assert min(rates) == 0.66 and max(rates) == 0.78  # Fig. 12(c)

    def test_fig13_paper_sweeps(self):
        rsl_sizes, rates, _trials = fig13.SCALE_13A["paper"]
        assert max(rsl_sizes) >= 240  # Fig. 13(a) sweeps to N=300
        assert set(rates) == {0.66, 0.72, 0.78}
        rsl, node, modules, mi_ratios, rate, _t = fig13.SCALE_13C["paper"]
        assert modules == (4, 9, 16)
        assert mi_ratios == (2, 4, 7, 14, 19)  # Fig. 13(c)'s MI sweep

    def test_fig14_paper_sweeps(self):
        families, qubit_counts, rsl, rate = fig14.SCALE_14A["paper"]
        assert rsl == 96  # "RSL size is 96x96 for (a)"
        assert rate == 0.75
        rsl_sizes, node, modules, mi, rate_b, _t = fig14.SCALE_14B["paper"]
        assert node == 24  # "average node size chosen as 24x24"
        assert mi == 7.0  # "MI ratio is chosen as 7"
        assert modules == (1, 4, 9, 16)

    def test_fig15_paper_sweeps(self):
        _families, _qubits, width = fig15.SCALE_15A["paper"]
        assert width == 4  # "virtual hardware size being 4x4 for (a)"
        _families_b, qubits_b, widths = fig15.SCALE_15B["paper"]
        assert qubits_b == 36
        assert min(widths) == 3 and max(widths) == 10  # Fig. 15(b) x-axis

    def test_fig16_paper_sweeps(self):
        rsl, nodes, rates, _trials = fig16.SCALE_SETTINGS["paper"]
        assert rsl == 200  # "RSL size being 200x200"
        assert set(rates) == {0.66, 0.69, 0.72, 0.75, 0.78}
        assert max(nodes) >= 50

    def test_loss_paper_sweeps(self):
        families, qubits, virtual, rsl, rates = loss.SCALE_SETTINGS["paper"]
        assert set(families) == set(BENCHMARKS)
        assert rsl >= virtual * 12
        assert rates[0] == 0.0  # always include the lossless anchor
