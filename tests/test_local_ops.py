"""Tests for postponed-operator bookkeeping: Theorems 4.1 and 4.2 literally."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphStateError
from repro.graphstate.local_ops import Axis, LocalOpLedger, QuarterTurn


class TestAxis:
    def test_pauli_constructors(self):
        assert Axis.pauli("X").close_to(Axis(1, 0, 0))
        assert Axis.pauli("Y", -1).close_to(Axis(0, -1, 0))
        assert Axis.pauli("Z").close_to(Axis(0, 0, 1))

    def test_pauli_bad_label(self):
        with pytest.raises(GraphStateError):
            Axis.pauli("W")

    def test_pauli_bad_sign(self):
        with pytest.raises(GraphStateError):
            Axis.pauli("X", 2)

    def test_non_unit_axis_rejected(self):
        with pytest.raises(GraphStateError):
            Axis(1, 1, 0)

    def test_equatorial(self):
        axis = Axis.equatorial(math.pi / 3)
        assert axis.is_equatorial
        assert math.isclose(axis.equatorial_angle, math.pi / 3)

    def test_equatorial_angle_of_z_raises(self):
        with pytest.raises(GraphStateError):
            Axis.pauli("Z").equatorial_angle

    def test_as_signed_pauli(self):
        assert Axis.pauli("Y", -1).as_signed_pauli() == ("Y", -1)
        assert Axis.equatorial(0.3).as_signed_pauli() is None

    def test_negated(self):
        assert Axis.pauli("X").negated().close_to(Axis.pauli("X", -1))

    def test_str_pauli(self):
        assert str(Axis.pauli("Z", -1)) == "-Z"


class TestTheorem41:
    """The four propagation identities of Theorem 4.1, verbatim."""

    def test_mz_through_uz_unchanged(self):
        for sign in (1, -1):
            op = QuarterTurn("Z", sign)
            assert op.conjugate_axis(Axis.pauli("Z")).close_to(Axis.pauli("Z"))

    def test_mz_through_ux_becomes_minus_sign_y(self):
        # M_Z U_X^± = U_X^± M[∓Y]
        for sign in (1, -1):
            op = QuarterTurn("X", sign)
            result = op.conjugate_axis(Axis.pauli("Z"))
            assert result.close_to(Axis.pauli("Y", -sign))

    @given(st.floats(0, 2 * math.pi - 1e-9), st.sampled_from([1, -1]))
    @settings(max_examples=40)
    def test_equatorial_through_uz(self, phi, sign):
        # M[cos phi X + sin phi Y] U_Z^± = U_Z^± M[±(cos phi Y − sin phi X)]
        op = QuarterTurn("Z", sign)
        result = op.conjugate_axis(Axis.equatorial(phi))
        target = Axis(
            sign * -math.sin(phi), sign * math.cos(phi), 0.0
        )
        assert result.close_to(target)

    @given(st.floats(0, 2 * math.pi - 1e-9), st.sampled_from([1, -1]))
    @settings(max_examples=40)
    def test_equatorial_through_ux(self, phi, sign):
        # M[cos phi X + sin phi Y] U_X^± = U_X^± M[cos phi X ± sin phi Z]
        op = QuarterTurn("X", sign)
        result = op.conjugate_axis(Axis.equatorial(phi))
        target = Axis(math.cos(phi), 0.0, sign * math.sin(phi))
        assert result.close_to(target)

    @given(st.sampled_from(["X", "Z"]), st.sampled_from([1, -1]))
    def test_inverse_undoes(self, pauli, sign):
        op = QuarterTurn(pauli, sign)
        axis = Axis.equatorial(0.7)
        assert op.inverse().conjugate_axis(op.conjugate_axis(axis)).close_to(axis)


class TestTheorem42:
    """Fusion-basis propagation: factor-wise conjugation of X⊗Z, Z⊗X."""

    def test_uz_on_both_qubits(self):
        # -> M[±1 Y1 Z2], M[±2 Z1 Y2]
        ledger = LocalOpLedger()
        ledger.record("q1", QuarterTurn("Z", +1))
        ledger.record("q2", QuarterTurn("Z", -1))
        (a1, b1), (a2, b2) = ledger.adjusted_fusion_bases("q1", "q2")
        assert a1.as_signed_pauli() == ("Y", +1)
        assert b1.as_signed_pauli() == ("Z", +1)
        assert a2.as_signed_pauli() == ("Z", +1)
        assert b2.as_signed_pauli() == ("Y", -1)

    def test_ux_on_both_qubits(self):
        # -> M[∓2 X1 Y2], M[∓1 Y1 X2] (as an unordered set of products)
        ledger = LocalOpLedger()
        ledger.record("q1", QuarterTurn("X", +1))
        ledger.record("q2", QuarterTurn("X", +1))
        (a1, b1), (a2, b2) = ledger.adjusted_fusion_bases("q1", "q2")
        assert a1.as_signed_pauli() == ("X", +1)
        assert b1.as_signed_pauli() == ("Y", -1)
        assert a2.as_signed_pauli() == ("Y", -1)
        assert b2.as_signed_pauli() == ("X", +1)

    def test_mixed_uz_ux(self):
        # U_Z on 1, U_X on 2 -> M[±1∓2 Y1 Y2], M[Z1 X2]
        ledger = LocalOpLedger()
        ledger.record("q1", QuarterTurn("Z", +1))
        ledger.record("q2", QuarterTurn("X", -1))
        (a1, b1), (a2, b2) = ledger.adjusted_fusion_bases("q1", "q2")
        assert a1.as_signed_pauli() == ("Y", +1)
        assert b1.as_signed_pauli() == ("Y", +1)  # ∓2 with sign2=-1 -> +Y
        assert a2.as_signed_pauli() == ("Z", +1)
        assert b2.as_signed_pauli() == ("X", +1)


class TestLedger:
    def test_empty_ledger_identity(self):
        ledger = LocalOpLedger()
        axis = Axis.equatorial(1.1)
        assert ledger.adjusted_basis("q", axis).close_to(axis)

    def test_record_local_complement_content(self):
        ledger = LocalOpLedger()
        ledger.record_local_complement("v", ["a", "b"])
        assert ledger.pending("v") == [QuarterTurn("X", -1)]
        assert ledger.pending("a") == [QuarterTurn("Z", +1)]
        assert ledger.pending("b") == [QuarterTurn("Z", +1)]
        assert len(ledger) == 3

    def test_ops_compose_in_reverse_order(self):
        """Later-recorded ops conjugate first: A' = U1† U2† A U2 U1."""
        ledger = LocalOpLedger()
        ledger.record("q", QuarterTurn("Z", +1))
        ledger.record("q", QuarterTurn("X", +1))
        result = ledger.adjusted_basis("q", Axis.pauli("Z"))
        # U_X first: Z -> -Y; then U_Z: -Y -> -(-X)?  rotate (0,-1,0) about z
        # by +90°: (1, 0, 0) = +X.
        assert result.as_signed_pauli() == ("X", +1)

    def test_consume_clears(self):
        ledger = LocalOpLedger()
        ledger.record("q", QuarterTurn("Z", 1))
        ops = ledger.consume("q")
        assert len(ops) == 1
        assert ledger.pending("q") == []

    def test_double_lc_cancels_geometrically(self):
        """Recording LC twice leaves every measurement basis unchanged."""
        ledger = LocalOpLedger()
        for _ in range(2):
            ledger.record_local_complement("v", ["a"])
        for axis in (Axis.pauli("X"), Axis.pauli("Y"), Axis.pauli("Z")):
            adjusted = ledger.adjusted_basis("v", axis)
            # U_X^- twice = a half turn about X: flips Y and Z, fixes X.
            expected = Axis(axis.x, -axis.y, -axis.z)
            assert adjusted.close_to(expected)
