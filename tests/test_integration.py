"""Cross-module integration tests: the full pipeline hangs together.

These tests exercise circuit -> pattern -> mapping -> instructions -> online
execution as one story, and check the quantum-semantics invariants that span
module boundaries.
"""

import numpy as np
import pytest

from repro.circuits import (
    make_benchmark,
    qaoa,
    simulate_statevector,
    states_equal_up_to_phase,
)
from repro.compiler import OnePercCompiler
from repro.graphstate import GraphState, Tableau, graph_from_adjacency
from repro.ir import InstructionInterpreter
from repro.mbqc import DependencyDAG, run_pattern, translate_circuit
from repro.offline import OfflineMapper
from repro.online import OnlineReshaper
from repro.hardware import HardwareConfig
from repro.graphstate.resource import ResourceStateSpec


class TestPipeline:
    @pytest.fixture(scope="class")
    def compiled(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.75,
            resource_state_size=4,
            seed=5,
            max_rsl=10**5,
            emit_instructions=True,
        )
        circuit = make_benchmark("qaoa", 4, seed=7)
        return circuit, compiler.compile(circuit)

    def test_instruction_stream_is_legal(self, compiled):
        _circuit, result = compiled
        width = result.mapping.ir.width
        rebuilt = InstructionInterpreter(width).run(result.instructions)
        assert rebuilt.structurally_equal(result.mapping.ir)

    def test_ir_realizes_program_graph(self, compiled):
        circuit, result = compiled
        pattern = translate_circuit(circuit)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert result.mapping.ir.connected_graph_pairs() == expected

    def test_online_served_every_layer(self, compiled):
        _circuit, result = compiled
        assert result.reshape.logical_layers == len(result.mapping.demands)

    def test_fusion_accounting_positive_kinds(self, compiled):
        _circuit, result = compiled
        # Merging (4-qubit stars), spatial bonding and temporal fusions all
        # happened at least once.
        assert result.reshape.rsl_consumed >= 3 * result.reshape.logical_layers

    def test_program_semantics_survive_translation(self, compiled):
        """The measurement pattern the compiler consumed still computes the
        circuit (checked by dense simulation on the small benchmark)."""
        circuit, _result = compiled
        pattern = translate_circuit(circuit)
        zero = np.zeros(2**circuit.num_qubits, dtype=complex)
        zero[0] = 1.0
        output, _ = run_pattern(pattern, input_state=zero, rng=np.random.default_rng(0))
        assert states_equal_up_to_phase(output, simulate_statevector(circuit))


class TestMappingOnlineContract:
    def test_demands_are_executable(self):
        """The mapper never demands more connections than a layer can host."""
        pattern = translate_circuit(qaoa(9, seed=0))
        width = 3
        mapping = OfflineMapper(width=width).map_pattern(pattern)
        for demand in mapping.demands:
            assert (
                demand.adjacent_connections + demand.cross_connections
                <= width * width
            )

    def test_reshaper_consumes_mapper_demands(self):
        pattern = translate_circuit(qaoa(4, seed=1))
        mapping = OfflineMapper(width=2).map_pattern(pattern)
        config = HardwareConfig(
            rsl_size=32, resource_state=ResourceStateSpec(7), fusion_success_rate=0.78
        )
        metrics = OnlineReshaper(config, virtual_size=2, rng=3).run(mapping.demands)
        assert metrics.logical_layers == mapping.layer_count


class TestQuantumSemanticEndToEnd:
    def test_percolated_layer_is_a_real_graph_state(self):
        """Build a tiny RSL's physical graph state with real fusions and
        verify the lattice abstraction agrees with the graph-state picture."""
        from repro.graphstate import apply_fusion, emit_star

        size = 3
        graph = GraphState()
        stars = {}
        for row in range(size):
            for col in range(size):
                stars[(row, col)] = emit_star(graph, ResourceStateSpec(5), (row, col))
        # Fuse right and down neighbours leaf-to-leaf, all successful.
        for row in range(size):
            for col in range(size):
                if col + 1 < size:
                    apply_fusion(
                        graph,
                        stars[(row, col)].leaves[0],
                        stars[(row, col + 1)].leaves[1],
                        True,
                    )
                if row + 1 < size:
                    apply_fusion(
                        graph,
                        stars[(row, col)].leaves[2],
                        stars[(row + 1, col)].leaves[3],
                        True,
                    )
        # The roots now form a 3x3 lattice.
        for row in range(size):
            for col in range(size):
                root = stars[(row, col)].root
                if col + 1 < size:
                    assert graph.has_edge(root, stars[(row, col + 1)].root)
                if row + 1 < size:
                    assert graph.has_edge(root, stars[(row + 1, col)].root)

    def test_lattice_reshaping_by_z_measurements(self):
        """Z-measuring non-path qubits carves a wire out of a lattice and the
        tableau confirms the surviving chain, mirroring the reshaping pass."""
        graph = GraphState()
        for row in range(3):
            for col in range(3):
                if col + 1 < 3:
                    graph.add_edge((row, col), (row, col + 1))
                if row + 1 < 3:
                    graph.add_edge((row, col), (row + 1, col))
        tableau, index = Tableau.from_graph(graph)
        keep_path = [(1, 0), (1, 1), (1, 2)]  # the middle row
        expected = graph.copy()
        for node in graph.nodes():
            if node not in keep_path:
                expected.measure_z(node)
                tableau.measure_letter(index[node], "Z", postselect=0)
        keep = [index[n] for n in keep_path]
        adjacency, _ = tableau.extract_graph(keep)
        chain = graph_from_adjacency(adjacency)
        assert chain.has_edge(0, 1) and chain.has_edge(1, 2)
        assert not chain.has_edge(0, 2)


class TestDependencyMapperAgreement:
    def test_mapping_respects_dependency_order(self):
        """A node is never placed on an earlier layer than a predecessor."""
        pattern = translate_circuit(qaoa(4, seed=4))
        dag = DependencyDAG(pattern)
        mapping = OfflineMapper(width=2).map_pattern(pattern)
        layer_of = {g: coord[2] for g, coord in mapping.ir.graph_nodes().items()}
        for node in pattern.nodes:
            for predecessor in dag.predecessors(node):
                assert layer_of[predecessor] <= layer_of[node]
