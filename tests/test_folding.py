"""Tests for RSL folding (Fig. 4's spatial/temporal tradeoff)."""

import pytest

from repro.errors import HardwareError
from repro.hardware import (
    folding_overhead_fraction,
    max_effective_side,
    plan_folding,
)


class TestPlanFolding:
    def test_no_folding_needed(self):
        plan = plan_folding(48, 48)
        assert plan.tiles_per_side == 1
        assert plan.cycles_per_layer == 1
        assert plan.seam_fusions == 0
        assert plan.oldest_photon_age == 0

    def test_double_fold(self):
        """Fig. 4: a 2x2 tiling quadruples the layer from 4 RSLs."""
        plan = plan_folding(24, 48)
        assert plan.tiles_per_side == 2
        assert plan.cycles_per_layer == 4
        assert plan.amplification == 4
        assert plan.seam_fusions == 2 * 1 * 48

    def test_partial_tile_rounds_up(self):
        plan = plan_folding(24, 50)
        assert plan.tiles_per_side == 3

    def test_validation(self):
        with pytest.raises(HardwareError):
            plan_folding(0, 24)
        with pytest.raises(HardwareError):
            plan_folding(24, 12)  # shrinking is not folding

    def test_lifetime_binds(self):
        # 100x amplification needs 10,000 cycles of waiting, beyond 5,000.
        with pytest.raises(HardwareError):
            plan_folding(10, 1000, photon_lifetime=5000)
        # ...but fits with a longer-lived memory.
        plan = plan_folding(10, 1000, photon_lifetime=10**6)
        assert plan.tiles_per_side == 100

    def test_oldest_photon_age(self):
        plan = plan_folding(10, 30)
        assert plan.oldest_photon_age == plan.cycles_per_layer - 1


class TestMaxEffectiveSide:
    def test_paper_5000x_claim(self):
        """With a 5000-cycle lifetime the RSL extends by up to ~70x per
        side, i.e. ~5000x in area (Section 2.2's 'up to 5000 times')."""
        side = max_effective_side(1, photon_lifetime=5000)
        assert 64 <= side <= 71
        assert abs(side**2 - 5000) < 1000

    def test_scales_with_physical_array(self):
        assert max_effective_side(10, 5000) == 10 * max_effective_side(1, 5000)

    def test_validation(self):
        with pytest.raises(HardwareError):
            max_effective_side(0)

    def test_plan_at_maximum_is_feasible(self):
        side = max_effective_side(4, photon_lifetime=500)
        plan = plan_folding(4, side, photon_lifetime=500)
        assert plan.oldest_photon_age <= 500


class TestOverhead:
    def test_overhead_fraction_zero_without_folding(self):
        assert folding_overhead_fraction(plan_folding(24, 24)) == 0.0

    def test_overhead_fraction_small(self):
        """Seams are a boundary effect: a small fraction of all bonds."""
        plan = plan_folding(24, 96)
        fraction = folding_overhead_fraction(plan)
        assert 0.0 < fraction < 0.1

    def test_overhead_grows_with_tiling(self):
        coarse = folding_overhead_fraction(plan_folding(48, 96))
        fine = folding_overhead_fraction(plan_folding(12, 96))
        assert fine > coarse
