"""Tests for translation, patterns, dependency DAG and the MBQC simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    Circuit,
    qaoa,
    qft,
    rca,
    simulate_statevector,
    states_equal_up_to_phase,
    vqe,
)
from repro.errors import TranslationError
from repro.mbqc import (
    DependencyDAG,
    run_pattern,
    translate_circuit,
)
from repro.mbqc.translate import pattern_size_summary


def zero_input(pattern):
    n = len(pattern.inputs)
    state = np.zeros(2**n, dtype=complex)
    state[0] = 1.0
    return state


class TestTranslation:
    def test_single_j_structure(self):
        circuit = Circuit(1)
        circuit.j(0.4, 0)
        pattern = translate_circuit(circuit)
        assert pattern.node_count == 2
        assert pattern.measured_count == 1
        assert pattern.nodes[0].angle == pytest.approx(0.4)
        assert pattern.nodes[0].successor == 1
        assert pattern.outputs == [1]

    def test_cz_toggles_edge(self):
        circuit = Circuit(2)
        circuit.cz(0, 1).cz(0, 1)
        pattern = translate_circuit(circuit)
        assert pattern.graph.edge_count == 0

    def test_lowering_happens_automatically(self):
        pattern = translate_circuit(qft(2))
        pattern.validate()
        assert pattern.measured_count > 0

    def test_size_summary(self):
        summary = pattern_size_summary(translate_circuit(qaoa(3, seed=0)))
        assert summary["wires"] == 3
        assert summary["nodes"] == summary["measured"] + 3

    def test_flow_order_measures_everything_once(self):
        pattern = translate_circuit(qft(3))
        order = pattern.flow_order()
        assert len(order) == pattern.measured_count
        assert len(set(order)) == len(order)

    def test_flow_order_respects_flow_condition(self):
        """i must precede f(i) and every other neighbour of f(i)."""
        pattern = translate_circuit(qaoa(4, seed=1))
        position = {node: i for i, node in enumerate(pattern.flow_order())}
        for node_id, node in pattern.nodes.items():
            if node.is_output:
                continue
            for neighbor in pattern.graph.neighbors(node.successor):
                if neighbor == node_id or pattern.nodes[neighbor].is_output:
                    continue
                assert position[node_id] < position[neighbor]


class TestDependencyDAG:
    def test_front_layer_starts_with_inputs(self):
        pattern = translate_circuit(qft(2))
        dag = DependencyDAG(pattern)
        front = dag.front_layer(set())
        assert set(pattern.inputs) <= set(front)

    def test_front_layer_shrinks_and_grows(self):
        pattern = translate_circuit(qaoa(3, seed=0))
        dag = DependencyDAG(pattern)
        order = dag.topological_order()
        consumed = set()
        for node in order:
            front = dag.front_layer(consumed)
            assert node in front
            consumed.add(node)
        assert dag.front_layer(consumed) == []

    def test_topological_order_is_valid(self):
        pattern = translate_circuit(vqe(3, seed=0))
        dag = DependencyDAG(pattern)
        position = {n: i for i, n in enumerate(dag.topological_order())}
        for node in pattern.nodes:
            for successor in dag.successors(node):
                assert position[node] < position[successor]

    def test_depth_at_least_wire_length(self):
        circuit = Circuit(1)
        for _ in range(5):
            circuit.j(0.1, 0)
        dag = DependencyDAG(translate_circuit(circuit))
        assert dag.depth() >= 6  # 5 measured nodes + output


class TestMBQCExecution:
    @pytest.mark.parametrize(
        "circuit",
        [qft(3), qaoa(4, seed=3), vqe(3, seed=5), rca(4)],
        ids=["qft3", "qaoa4", "vqe3", "rca4"],
    )
    def test_reproduces_circuit_on_zero_input(self, circuit):
        pattern = translate_circuit(circuit)
        rng = np.random.default_rng(42)
        output, outcomes = run_pattern(pattern, input_state=zero_input(pattern), rng=rng)
        assert states_equal_up_to_phase(output, simulate_statevector(circuit))
        assert len(outcomes) == pattern.measured_count

    def test_random_outcomes_still_correct(self):
        """Different RNG seeds give different outcomes, same output state."""
        circuit = qft(2)
        pattern = translate_circuit(circuit)
        reference = simulate_statevector(circuit)
        histories = set()
        for seed in range(6):
            output, outcomes = run_pattern(
                pattern, input_state=zero_input(pattern), rng=np.random.default_rng(seed)
            )
            assert states_equal_up_to_phase(output, reference)
            histories.add(tuple(sorted(outcomes.items())))
        assert len(histories) > 1  # feed-forward genuinely exercised

    def test_postselect_zero_branch(self):
        circuit = qft(2)
        pattern = translate_circuit(circuit)
        output, outcomes = run_pattern(
            pattern, input_state=zero_input(pattern), postselect_zeros=True
        )
        assert set(outcomes.values()) == {0}
        assert states_equal_up_to_phase(output, simulate_statevector(circuit))

    def test_plus_input_default(self):
        """Default input |+...+> equals running the circuit after H-walls."""
        circuit = Circuit(2)
        circuit.cz(0, 1)
        circuit.j(0.0, 0)
        pattern = translate_circuit(circuit)
        output, _ = run_pattern(pattern, rng=np.random.default_rng(0))
        prep = Circuit(2)
        prep.h(0).h(1).cz(0, 1).h(0)
        assert states_equal_up_to_phase(output, simulate_statevector(prep))

    def test_bad_input_shape_rejected(self):
        pattern = translate_circuit(qft(2))
        with pytest.raises(TranslationError):
            run_pattern(pattern, input_state=np.ones(3))

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_random_jcz_circuits_via_mbqc(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(2, name="rand")
        for _ in range(6):
            if rng.random() < 0.6:
                circuit.j(float(rng.uniform(0, 2 * math.pi)), int(rng.integers(2)))
            else:
                circuit.cz(0, 1)
        pattern = translate_circuit(circuit)
        output, _ = run_pattern(
            pattern, input_state=zero_input(pattern), rng=np.random.default_rng(seed + 1)
        )
        assert states_equal_up_to_phase(output, simulate_statevector(circuit))
