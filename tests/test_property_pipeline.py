"""Hypothesis property tests across the whole pipeline.

Random circuits are the adversary: whatever {J, CZ} program hypothesis
invents, the translation must produce a valid causal pattern, the mapper
must realize exactly its edge set, the instruction stream must replay, and
(on small cases) the MBQC execution must match dense simulation.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import Circuit, simulate_statevector, states_equal_up_to_phase
from repro.ir import InstructionInterpreter, lower_ir
from repro.mbqc import DependencyDAG, run_pattern, translate_circuit
from repro.offline import OfflineMapper


@st.composite
def jcz_circuits(draw, max_qubits=4, max_gates=14):
    """Random {J, CZ} circuits."""
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = Circuit(num_qubits, name="hyp")
    for _ in range(draw(st.integers(1, max_gates))):
        if draw(st.booleans()):
            wire = draw(st.integers(0, num_qubits - 1))
            angle = draw(
                st.floats(0, 2 * math.pi - 1e-9, allow_nan=False, allow_infinity=False)
            )
            circuit.j(angle, wire)
        else:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 1))
            if a != b:
                circuit.cz(a, b)
    return circuit


@given(jcz_circuits())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_translation_always_valid(circuit):
    pattern = translate_circuit(circuit)
    pattern.validate()
    order = pattern.flow_order()
    assert len(order) == pattern.measured_count
    DependencyDAG(pattern)  # raises on cycles


@given(jcz_circuits())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mapper_realizes_random_programs_exactly(circuit):
    pattern = translate_circuit(circuit)
    result = OfflineMapper(width=2).map_pattern(pattern)
    expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
    assert result.ir.connected_graph_pairs() == expected
    assert set(result.ir.graph_nodes()) == set(pattern.nodes)


@given(jcz_circuits())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_instruction_stream_replays_random_programs(circuit):
    pattern = translate_circuit(circuit)
    result = OfflineMapper(width=2).map_pattern(pattern)
    rebuilt = InstructionInterpreter(2).run(lower_ir(result.ir))
    assert rebuilt.structurally_equal(result.ir)


@given(jcz_circuits(max_qubits=3, max_gates=8), st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mbqc_matches_dense_simulation(circuit, seed):
    pattern = translate_circuit(circuit)
    zero = np.zeros(2**circuit.num_qubits, dtype=complex)
    zero[0] = 1.0
    output, _ = run_pattern(
        pattern, input_state=zero, rng=np.random.default_rng(seed)
    )
    assert states_equal_up_to_phase(output, simulate_statevector(circuit))


@given(jcz_circuits(max_qubits=3, max_gates=10))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_demands_always_executable(circuit):
    """Mapper demands never exceed the virtual layer's capacity and carry
    consistent cross-gap annotations."""
    pattern = translate_circuit(circuit)
    result = OfflineMapper(width=2).map_pattern(pattern)
    for demand in result.demands:
        assert demand.adjacent_connections + demand.cross_connections <= 4
        assert len(demand.cross_gaps) == demand.cross_connections
        assert all(gap >= 2 for gap in demand.cross_gaps)
