"""Tests for the offline mapper, routing and refresh/memory accounting."""

import pytest

from repro.circuits import Circuit, make_benchmark, qaoa, qft, vqe
from repro.errors import MappingError, MemoryBudgetExceeded
from repro.ir import InstructionInterpreter, lower_ir
from repro.mbqc import translate_circuit
from repro.offline import LayerGrid, OfflineMapper, route


class TestLayerGrid:
    def test_occupy_and_free(self):
        grid = LayerGrid(3)
        assert grid.is_free((0, 0))
        grid.occupy((0, 0), "x")
        assert not grid.is_free((0, 0))
        grid.release((0, 0))
        assert grid.is_free((0, 0))

    def test_double_occupy_raises(self):
        grid = LayerGrid(2)
        grid.occupy((0, 0), "a")
        with pytest.raises(ValueError):
            grid.occupy((0, 0), "b")

    def test_nearest_free_prefers_close(self):
        grid = LayerGrid(3)
        cell = grid.nearest_free([(0, 0)])
        assert cell == (0, 0)
        grid.occupy((0, 0), "x")
        assert grid.nearest_free([(0, 0)]) in [(0, 1), (1, 0)]

    def test_nearest_free_no_anchor(self):
        assert LayerGrid(2).nearest_free([]) == (0, 0)

    def test_nearest_free_full_grid(self):
        grid = LayerGrid(2)
        for row in range(2):
            for col in range(2):
                grid.occupy((row, col), "x")
        assert grid.nearest_free([(0, 0)]) is None


class TestRoute:
    def test_adjacent_endpoints_empty_wire(self):
        assert route(LayerGrid(3), (0, 0), (0, 1)) == []

    def test_straight_wire(self):
        wire = route(LayerGrid(4), (0, 0), (0, 3))
        assert wire == [(0, 1), (0, 2)]

    def test_blocked_route_detours(self):
        grid = LayerGrid(3)
        grid.occupy((0, 1), "wall")
        wire = route(grid, (0, 0), (0, 2))
        assert wire is not None
        assert (0, 1) not in wire

    def test_fully_blocked_returns_none(self):
        grid = LayerGrid(3)
        for row in range(3):
            grid.occupy((row, 1), "wall")
        assert route(grid, (0, 0), (0, 2)) is None

    def test_wire_cells_are_free_cells(self):
        grid = LayerGrid(5)
        grid.occupy((2, 2), "obstacle")
        wire = route(grid, (0, 0), (4, 4))
        for cell in wire:
            assert grid.is_free(cell)


class TestOfflineMapper:
    def test_parameter_validation(self):
        with pytest.raises(MappingError):
            OfflineMapper(width=1)
        with pytest.raises(MappingError):
            OfflineMapper(width=3, occupancy_limit=0.0)
        with pytest.raises(MappingError):
            OfflineMapper(width=3, refresh_every=0)

    @pytest.mark.parametrize(
        "circuit,width",
        [
            (qaoa(4, seed=1), 2),
            (qft(4), 2),
            (vqe(4, seed=1), 2),
            (make_benchmark("rca", 4), 2),
            (qaoa(9, seed=1), 3),
            (vqe(9, seed=1), 3),
        ],
        ids=["qaoa4", "qft4", "vqe4", "rca4", "qaoa9", "vqe9"],
    )
    def test_mapping_realizes_exact_edge_set(self, circuit, width):
        """The IR's wires realize exactly the program graph state's edges."""
        pattern = translate_circuit(circuit)
        result = OfflineMapper(width=width).map_pattern(pattern)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert result.ir.connected_graph_pairs() == expected
        result.ir.validate()

    def test_every_program_node_mapped_once(self):
        pattern = translate_circuit(qaoa(4, seed=2))
        result = OfflineMapper(width=2).map_pattern(pattern)
        placed = result.ir.graph_nodes()
        assert set(placed) == set(pattern.nodes)

    def test_instruction_round_trip(self):
        pattern = translate_circuit(qft(4))
        result = OfflineMapper(width=2).map_pattern(pattern)
        rebuilt = InstructionInterpreter(2).run(lower_ir(result.ir))
        assert rebuilt.structurally_equal(result.ir)

    def test_demands_match_temporal_edges(self):
        pattern = translate_circuit(qaoa(4, seed=0))
        result = OfflineMapper(width=2).map_pattern(pattern)
        total_connections = sum(
            d.adjacent_connections + d.cross_connections for d in result.demands
        )
        assert total_connections == len(result.ir.temporal_edges())
        assert len(result.demands) == result.layer_count

    def test_occupancy_limit_enforced(self):
        """Each layer introduces at most ceil(limit * W^2) incomplete nodes."""
        pattern = translate_circuit(qaoa(9, seed=0))
        width = 4
        limit = max(1, int(0.25 * width * width))
        result = OfflineMapper(width=width, occupancy_limit=0.25).map_pattern(pattern)
        # Count *new graph nodes with pending edges* per layer: bounded by
        # the incomplete-node cap (+1 because the limit is checked before
        # placement).
        by_layer: dict[int, int] = {}
        placed_layer = {g: coord[2] for g, coord in result.ir.graph_nodes().items()}
        for g_node, layer in placed_layer.items():
            neighbors = pattern.graph.neighbors(g_node)
            if any(placed_layer[nb] >= layer for nb in neighbors):
                by_layer[layer] = by_layer.get(layer, 0) + 1
        assert max(by_layer.values()) <= limit + 1

    def test_memory_budget_enforced(self):
        pattern = translate_circuit(qft(9))
        with pytest.raises(MemoryBudgetExceeded):
            OfflineMapper(
                width=3,
                memory_budget_bytes=10 * 2**20,
                bytes_per_node_layer=2**20,
            ).map_pattern(pattern)

    def test_refresh_reduces_peak_memory(self):
        pattern = translate_circuit(qft(9))
        plain = OfflineMapper(width=3, bytes_per_node_layer=2**20).map_pattern(pattern)
        refreshed = OfflineMapper(
            width=3, refresh_every=5, bytes_per_node_layer=2**20
        ).map_pattern(pattern)
        assert refreshed.peak_memory_bytes < plain.peak_memory_bytes
        assert refreshed.layer_count > plain.layer_count  # the #RSL price
        assert refreshed.refresh_layer_count > 0

    def test_refresh_preserves_edge_realization(self):
        pattern = translate_circuit(qaoa(9, seed=3))
        result = OfflineMapper(width=3, refresh_every=4).map_pattern(pattern)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert result.ir.connected_graph_pairs() == expected

    def test_dense_program_on_tiny_hardware(self):
        """Worldline meetings + home relocation let even a 2x2 layer host a
        fully-entangled 9-qubit program (many more live wires than cells)."""
        pattern = translate_circuit(vqe(9, seed=0))
        result = OfflineMapper(width=2).map_pattern(pattern)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert result.ir.connected_graph_pairs() == expected

    def test_static_scheduling_works_but_differs(self):
        pattern = translate_circuit(qaoa(4, seed=5))
        dynamic = OfflineMapper(width=2).map_pattern(pattern)
        static = OfflineMapper(width=2, dynamic_scheduling=False).map_pattern(pattern)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert static.ir.connected_graph_pairs() == expected
        assert dynamic.ir.connected_graph_pairs() == expected

    def test_wider_hardware_fewer_layers(self):
        pattern = translate_circuit(qft(9))
        narrow = OfflineMapper(width=3).map_pattern(pattern)
        wide = OfflineMapper(width=6).map_pattern(pattern)
        assert wide.layer_count < narrow.layer_count

    def test_single_wire_program(self):
        circuit = Circuit(1)
        for _ in range(4):
            circuit.j(0.3, 0)
        pattern = translate_circuit(circuit)
        result = OfflineMapper(width=2).map_pattern(pattern)
        expected = {frozenset((u, v)) for u, v in pattern.graph.edges()}
        assert result.ir.connected_graph_pairs() == expected
