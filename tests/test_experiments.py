"""Unit tests for the declarative experiment API (tiny parameters).

Full bench-scale regeneration and the cross-runner determinism suite live in
benchmarks/; these tests exercise the registry, record/result plumbing, job
builders, and the runner contract at the smallest sizes that still show the
behavior.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import (
    EXPERIMENT_REGISTRY,
    CompileJob,
    Experiment,
    ExperimentRecord,
    FnJob,
    ProcessRunner,
    SerialRunner,
    ThreadRunner,
    UnknownExperimentError,
    canonical_json,
    experiment_names,
    fig13,
    fig16,
    get_experiment,
    loss,
    make_runner,
    table2,
    table3,
)
from repro.experiments.common import BenchmarkCase, check_scale, stream_for
from repro.pipeline import PipelineSettings

EXPECTED_NAMES = [
    "table2", "table3", "fig12", "fig13", "fig14", "fig15", "fig16", "loss",
    "passes",
]


class TestCommon:
    def test_check_scale(self):
        check_scale("bench")
        with pytest.raises(ValueError):
            check_scale("huge")

    def test_case_label(self):
        assert BenchmarkCase("qaoa", 9).label == "QAOA-9"

    def test_stream_deterministic(self):
        a = stream_for("x", seed=1).generator.random()
        b = stream_for("x", seed=1).generator.random()
        assert a == b


class TestRegistry:
    def test_all_experiments_registered_in_order(self):
        assert experiment_names() == EXPECTED_NAMES

    def test_get_experiment(self):
        assert get_experiment("fig16").name == "fig16"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_experiment("fig99")
        message = str(excinfo.value)
        assert "fig99" in message
        for name in EXPECTED_NAMES:
            assert name in message

    def test_descriptions_present(self):
        for experiment in EXPERIMENT_REGISTRY.values():
            assert experiment.description


class TestRecords:
    def record(self):
        return ExperimentRecord(
            experiment="toy",
            scale="bench",
            seed=0,
            job="a/x=1",
            fields={"x": 1, "value": 2.5},
            timings={"seconds": 0.123},
            metrics={"cache_hits": 2, "peak_memory_bytes": 64},
        )

    def test_canonical_excludes_timings_and_metrics(self):
        canonical = self.record().canonical()
        assert canonical["fields"] == {"x": 1, "value": 2.5}
        assert "timings" not in canonical
        assert "metrics" not in canonical

    def test_canonical_json_ignores_wall_clock_and_provenance(self):
        fast = self.record()
        slow = ExperimentRecord(
            "toy", "bench", 0, "a/x=1", {"x": 1, "value": 2.5}, {"seconds": 99.0},
            {"cache_hits": 0, "cache_misses": 2},
        )
        assert canonical_json([fast]) == canonical_json([slow])

    def test_flat_row_prefixes_timings_and_metrics(self):
        row = self.record().flat()
        assert row["t_seconds"] == 0.123
        assert row["m_cache_hits"] == 2
        assert row["m_peak_memory_bytes"] == 64
        assert row["job"] == "a/x=1"


def _toy_point(x: int, seed: int) -> dict:
    rng = stream_for("toy", seed).child(x).generator
    return {"x": x, "value": float(rng.integers(0, 1000))}


def _exploding_point() -> dict:
    raise ValueError("kaboom")


class ToyExperiment(Experiment):
    """Tiny mixed-job experiment used to exercise the runner contract."""

    name = "toy"
    description = "toy"

    def build_jobs(self, scale, seed):
        jobs = [
            FnJob(key=f"fn/{x}", fn=_toy_point, kwargs={"x": x, "seed": seed})
            for x in range(4)
        ]
        settings = PipelineSettings(
            fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
        )
        jobs.append(
            CompileJob(
                key="compile/qaoa4",
                meta={"benchmark": "QAOA-4", "compiler": "oneperc"},
                family="qaoa",
                num_qubits=4,
                settings=settings,
                seed=seed,
            )
        )
        return jobs

    def render(self, records):
        return f"{len(records)} records"


class TestRunners:
    def test_all_backends_and_worker_counts_agree(self):
        experiment = ToyExperiment()
        reference = experiment.run("bench", seed=3, runner=SerialRunner())
        for runner in (
            ThreadRunner(max_workers=2),
            ThreadRunner(max_workers=4),
            ProcessRunner(max_workers=2),
        ):
            result = experiment.run("bench", seed=3, runner=runner)
            assert canonical_json(result.records) == canonical_json(reference.records)
            assert result.runner == runner.name

    def test_records_in_job_order(self):
        result = ToyExperiment().run("bench", seed=0)
        assert [record.job for record in result.records] == [
            "fn/0",
            "fn/1",
            "fn/2",
            "fn/3",
            "compile/qaoa4",
        ]

    def test_compile_record_fields_and_timings(self):
        result = ToyExperiment().run("bench", seed=0)
        record = result.records[-1]
        assert record.fields["rsl_count"] > 0
        assert record.fields["benchmark"] == "QAOA-4"
        assert "online-reshape" in record.timings

    def test_compile_record_surfaces_pass_metrics(self):
        """PassContext.metrics flow into compile-job records (non-canonical)."""
        result = ToyExperiment().run("bench", seed=0)
        record = result.records[-1]
        assert record.metrics["logical_layers_mapped"] > 0
        assert record.metrics["peak_memory_bytes"] > 0
        assert record.metrics["rsl_count"] == record.fields["rsl_count"]
        assert record.metrics["fusion_count"] == record.fields["fusion_count"]
        for fn_record in result.records[:-1]:
            assert fn_record.metrics == {}

    @pytest.mark.parametrize("runner_name", ["serial", "thread"])
    def test_cached_runner_matches_uncached_and_counts(self, runner_name):
        from repro.pipeline import MemoryCache

        experiment = ToyExperiment()
        reference = experiment.run("bench", seed=3, runner=SerialRunner())
        cache = MemoryCache()
        runner = make_runner(runner_name, max_workers=2, cache=cache)
        cold = experiment.run("bench", seed=3, runner=runner)
        warm = experiment.run("bench", seed=3, runner=runner)
        assert canonical_json(cold.records) == canonical_json(reference.records)
        assert canonical_json(warm.records) == canonical_json(reference.records)
        assert cold.records[-1].metrics["cache_misses"] == 4
        assert warm.records[-1].metrics["cache_hits"] == 4
        assert cold.cache_stats() == {"hits": 0, "misses": 4, "hit_rate": 0.0}
        assert warm.cache_stats() == {"hits": 4, "misses": 0, "hit_rate": 1.0}

    def test_process_runner_with_disk_cache(self, tmp_path):
        from repro.pipeline import DiskCache

        experiment = ToyExperiment()
        reference = experiment.run("bench", seed=3, runner=SerialRunner())
        cache = DiskCache(tmp_path)
        cold = experiment.run(
            "bench", seed=3, runner=ProcessRunner(max_workers=2, cache=cache)
        )
        warm = experiment.run(
            "bench", seed=3, runner=ProcessRunner(max_workers=2, cache=cache)
        )
        assert canonical_json(cold.records) == canonical_json(reference.records)
        assert canonical_json(warm.records) == canonical_json(reference.records)
        # Workers wrote through the shared directory, so the second run's
        # per-record provenance shows a full hit.
        assert warm.records[-1].metrics["cache_hits"] == 4
        assert warm.cache_stats()["hit_rate"] == 1.0

    def test_runner_by_name_and_unknown(self):
        assert make_runner("thread", 2).max_workers == 2
        with pytest.raises(ReproError, match="serial, thread, process"):
            make_runner("gpu")

    def test_result_exports(self):
        result = ToyExperiment().run("bench", seed=0)
        obj = result.to_json_obj()
        assert obj["experiment"] == "toy"
        assert len(obj["records"]) == 5
        json.dumps(obj)  # JSON-serializable end to end
        csv_text = result.to_csv()
        header = csv_text.splitlines()[0].split(",")
        assert header[:4] == ["experiment", "scale", "seed", "job"]
        assert "value" in header and "rsl_count" in header

    def test_reduce_rejects_empty(self):
        with pytest.raises(ReproError):
            ToyExperiment().reduce([])

    def test_unsupported_scale_rejected(self):
        experiment = ToyExperiment()
        experiment.scales = ("bench",)
        with pytest.raises(ReproError, match="supports scales"):
            experiment.run("paper")

    @pytest.mark.parametrize("runner", [SerialRunner(), ThreadRunner(max_workers=2)])
    def test_failures_name_the_job(self, runner):
        jobs = [FnJob(key="boom/1", fn=_exploding_point, kwargs={})]
        with pytest.raises(ReproError, match="boom/1"):
            runner.run_jobs(jobs, experiment="toy", scale="bench", seed=0)


class TestJobBuilders:
    """The declarative halves, without executing the heavy jobs."""

    def test_table2_pairs_oneperc_with_oneq(self):
        jobs = get_experiment("table2").build_jobs("bench", seed=0)
        assert all(isinstance(job, CompileJob) for job in jobs)
        by_compiler = {"oneperc": 0, "oneq": 0}
        for job in jobs:
            by_compiler[job.meta["compiler"]] += 1
            assert job.baseline == (job.meta["compiler"] == "oneq")
        assert by_compiler["oneperc"] == by_compiler["oneq"] == len(jobs) // 2

    def test_table2_groups_share_settings(self):
        jobs = get_experiment("table2").build_jobs("bench", seed=0)
        distinct = {(job.settings, job.baseline) for job in jobs}
        # One settings object per (rate, cap, node side) group, times the
        # baseline flag — that is what compile_many batches on.
        assert len(distinct) == 2 * len(table2.SCALE_SETTINGS["bench"])

    def test_fig13_mixes_job_kinds(self):
        jobs = get_experiment("fig13").build_jobs("bench", seed=0)
        kinds = {type(job) for job in jobs}
        assert kinds == {CompileJob, FnJob}

    def test_keys_unique_across_all_experiments(self):
        for experiment in EXPERIMENT_REGISTRY.values():
            jobs = experiment.build_jobs("bench", seed=0)
            keys = [job.key for job in jobs]
            assert len(keys) == len(set(keys)), experiment.name

    def test_jobs_are_picklable(self):
        import pickle

        for experiment in EXPERIMENT_REGISTRY.values():
            for job in experiment.build_jobs("bench", seed=0):
                pickle.loads(pickle.dumps(job))


class TestTable3:
    def test_budget_dash(self):
        experiment = get_experiment("table3")
        fields = table3.map_case("qft", 16, refresh_every=None, budget=64 * 2**20, seed=0)
        assert fields["budget_exceeded"]
        assert fields["rsl_estimate"] is None
        refreshed = table3.map_case("qft", 16, refresh_every=5, budget=None, seed=0)
        assert refreshed["rsl_estimate"] > 0
        records = [
            ExperimentRecord(
                "table3", "bench", 0, "qft16/raw",
                {**fields, "benchmark": "QFT", "num_qubits": 16, "refreshed": False,
                 "refresh_every": None},
            ),
            ExperimentRecord(
                "table3", "bench", 0, "qft16/refreshed",
                {**refreshed, "benchmark": "QFT", "num_qubits": 16, "refreshed": True,
                 "refresh_every": 5},
            ),
        ]
        assert "-" in experiment.render(records)

    def test_refresh_bounds_memory(self):
        raw = table3.map_case("rca", 9, refresh_every=None, budget=None, seed=0)
        refreshed = table3.map_case("rca", 9, refresh_every=5, budget=None, seed=0)
        assert refreshed["rsl_estimate"] >= raw["rsl_estimate"]
        assert refreshed["peak_memory_bytes"] <= raw["peak_memory_bytes"]


class TestFigureHelpers:
    def test_fig13_suitable_node_size_definition(self):
        from repro.utils.rng import ensure_rng

        node = fig13.suitable_node_size(36, 0.78, trials=6, rng=ensure_rng(0))
        assert 4 <= node <= 36

    def test_fig16_sigmoid_shape(self):
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(1)
        tiny = fig16.success_rate(36, 6, 0.72, trials=10, rng=rng)
        large = fig16.success_rate(36, 18, 0.72, trials=10, rng=rng)
        assert large >= tiny
        assert large > 0.5

    def test_fig16_rate_ordering(self):
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(2)
        low = fig16.success_rate(36, 12, 0.60, trials=10, rng=rng)
        high = fig16.success_rate(36, 12, 0.85, trials=10, rng=rng)
        assert high >= low

    def test_loss_effective_rate(self):
        assert loss.effective_rate(0.0) == pytest.approx(0.78)
        assert loss.effective_rate(0.1) == pytest.approx(0.78 * 0.9**2)
