"""Smoke and shape tests for the experiment harness (tiny parameters).

Full bench-scale regeneration lives in benchmarks/; these tests exercise the
experiment code paths and the headline *shape* claims at the smallest sizes
that still show them.
"""

import pytest

from repro.experiments import fig12, fig13, fig14, fig15, fig16, table2, table3
from repro.experiments.common import BenchmarkCase, check_scale, stream_for, sweep


class TestCommon:
    def test_check_scale(self):
        check_scale("bench")
        with pytest.raises(ValueError):
            check_scale("huge")

    def test_case_label(self):
        assert BenchmarkCase("qaoa", 9).label == "QAOA-9"

    def test_stream_deterministic(self):
        a = stream_for("x", seed=1).generator.random()
        b = stream_for("x", seed=1).generator.random()
        assert a == b

    def test_sweep_averages(self):
        rows = sweep([1, 2], lambda point, trial: point * 10 + trial, trials=2)
        assert rows == [(1, 10.5), (2, 20.5)]


class TestTable2:
    def test_single_cell_shape(self):
        row = table2.run_case(
            BenchmarkCase("qaoa", 4), fusion_rate=0.75, rsl_cap=3000, node_side=12, seed=0
        )
        assert row.oneperc_rsl > 0
        assert row.oneq_capped  # OneQ cannot survive p = 0.75
        assert row.rsl_improvement > 1.0

    def test_oneq_wins_fusions_at_tiny_scale_high_rate(self):
        """At 4 qubits and p=0.9 OnePerc spends more fusions (Table 2)."""
        row = table2.run_case(
            BenchmarkCase("vqe", 4), fusion_rate=0.9, rsl_cap=10**5, node_side=12, seed=0
        )
        assert row.fusion_improvement < 1.0

    def test_render_contains_benchmarks(self):
        row = table2.run_case(
            BenchmarkCase("qaoa", 4), fusion_rate=0.9, rsl_cap=10**4, node_side=12
        )
        text = table2.render([row])
        assert "QAOA-4" in text


class TestTable3:
    def test_refresh_row_shape(self):
        row = table3.run_case("rca", 9, refresh_every=5, seed=0)
        assert row.non_refreshed_rsl is not None  # small program fits
        assert row.refreshed_rsl >= row.non_refreshed_rsl
        assert row.refreshed_peak_bytes <= row.non_refreshed_peak_bytes

    def test_budget_dash(self):
        row = table3.run_case(
            "qft", 16, refresh_every=5, seed=0, budget=64 * 2**20
        )
        assert row.non_refreshed_rsl is None
        assert row.refreshed_rsl > 0
        assert row.overhead is None

    def test_render_dash(self):
        row = table3.run_case("qft", 16, refresh_every=5, seed=0, budget=64 * 2**20)
        assert "-" in table3.render([row], refresh_every=5)


class TestFigures:
    def test_fig12_resource_size_trend(self):
        """7-qubit stars need fewer RSLs than 4-qubit stars (Fig. 12(a))."""
        small = fig12._compile_rsl("qaoa", 4, 2, 4, 48, 0.75, seed=0)
        large = fig12._compile_rsl("qaoa", 4, 2, 7, 48, 0.75, seed=0)
        assert large < small

    def test_fig13_suitable_node_size_definition(self):
        from repro.utils.rng import ensure_rng

        node = fig13.suitable_node_size(36, 0.78, trials=6, rng=ensure_rng(0))
        assert 4 <= node <= 36

    def test_fig16_sigmoid_shape(self):
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(1)
        tiny = fig16.success_rate(36, 6, 0.72, trials=10, rng=rng)
        large = fig16.success_rate(36, 18, 0.72, trials=10, rng=rng)
        assert large >= tiny
        assert large > 0.5

    def test_fig16_rate_ordering(self):
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(2)
        low = fig16.success_rate(36, 12, 0.60, trials=10, rng=rng)
        high = fig16.success_rate(36, 12, 0.85, trials=10, rng=rng)
        assert high >= low

    def test_fig14_result_dataclass(self):
        result = fig14.Fig14Result()
        result.per_program.append(("X", 0.1))
        assert "X" in fig14.render(result)

    def test_fig15_mapping_timer(self):
        seconds, layers = fig15._time_mapping("qaoa", 4, 3, seed=0)
        assert seconds > 0
        assert layers > 0

    def test_fig13_modularity_section_renders(self):
        result = fig13.Fig13Result()
        result.modularity.append(("non-modular (unlimited)", 64.0, 1000.0))
        assert "non-modular" in fig13.render(result)
