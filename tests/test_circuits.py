"""Tests for the circuit IR, the {J, CZ} lowering and the benchmarks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    Circuit,
    Gate,
    gate_matrix,
    make_benchmark,
    qaoa,
    qft,
    random_maxcut_graph,
    rca,
    simulate_statevector,
    simulate_unitary,
    to_jcz,
    unitaries_equal_up_to_phase,
    vqe,
)
from repro.errors import CircuitError


class TestGate:
    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            Gate("frobnicate", (0,))

    def test_wrong_arity(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))

    def test_repeated_qubits(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_param_arity(self):
        with pytest.raises(CircuitError):
            Gate("rz", (0,))  # missing angle
        with pytest.raises(CircuitError):
            Gate("h", (0,), (0.5,))  # spurious angle

    def test_str_contains_angle(self):
        assert "0.5000" in str(Gate("rz", (0,), (0.5,)))


class TestCircuit:
    def test_needs_positive_qubits(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_qubit_range_checked(self):
        circuit = Circuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_depth(self):
        circuit = Circuit(2)
        circuit.h(0).h(1).cx(0, 1).h(0)
        assert circuit.depth() == 3

    def test_count(self):
        circuit = Circuit(2)
        circuit.h(0).h(1).cz(0, 1)
        assert circuit.count("h") == 2
        assert circuit.count("cz") == 1

    def test_is_jcz(self):
        circuit = Circuit(2)
        circuit.j(0.1, 0).cz(0, 1)
        assert circuit.is_jcz()
        circuit.h(0)
        assert not circuit.is_jcz()

    def test_copy_independent(self):
        circuit = Circuit(1)
        circuit.h(0)
        clone = circuit.copy()
        clone.h(0)
        assert len(circuit) == 1 and len(clone) == 2


class TestLowering:
    @pytest.mark.parametrize(
        "build",
        [
            lambda c: c.h(0),
            lambda c: c.x(0),
            lambda c: c.y(0),
            lambda c: c.z(0),
            lambda c: c.s(0),
            lambda c: c.sdg(0),
            lambda c: c.t(0),
            lambda c: c.tdg(0),
            lambda c: c.rx(0.37, 0),
            lambda c: c.ry(0.91, 0),
            lambda c: c.rz(1.23, 0),
            lambda c: c.p(0.55, 0),
            lambda c: c.cx(0, 1),
            lambda c: c.cz(0, 1),
            lambda c: c.cp(0.8, 0, 1),
            lambda c: c.swap(0, 1),
            lambda c: c.ccx(0, 1, 2),
        ],
    )
    def test_each_gate_lowering_preserves_unitary(self, build):
        circuit = Circuit(3)
        build(circuit)
        lowered = to_jcz(circuit)
        assert lowered.is_jcz()
        assert unitaries_equal_up_to_phase(
            simulate_unitary(circuit), simulate_unitary(lowered)
        )

    def test_j0_pairs_cancel(self):
        circuit = Circuit(1)
        circuit.h(0).h(0)
        lowered = to_jcz(circuit)
        assert len(lowered) == 0

    def test_simplify_respects_interleaving(self):
        circuit = Circuit(2)
        circuit.h(0).cz(0, 1).h(0)
        lowered = to_jcz(circuit)
        assert lowered.count("j") == 2  # CZ between them blocks cancellation

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_lowering(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(3, name="random")
        one_qubit = ["h", "x", "s", "t"]
        for _ in range(10):
            choice = rng.integers(0, 3)
            if choice == 0:
                circuit.add(one_qubit[int(rng.integers(len(one_qubit)))], int(rng.integers(3)))
            elif choice == 1:
                circuit.rz(float(rng.uniform(0, 2 * math.pi)), int(rng.integers(3)))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cz(int(a), int(b))
        lowered = to_jcz(circuit)
        assert unitaries_equal_up_to_phase(
            simulate_unitary(circuit), simulate_unitary(lowered)
        )


class TestBenchmarks:
    def test_qft_matches_dft_matrix(self):
        """The QFT circuit's unitary is the DFT matrix (with final swaps)."""
        n = 3
        dim = 2**n
        omega = np.exp(2j * math.pi / dim)
        dft = np.array(
            [[omega ** (row * col) for col in range(dim)] for row in range(dim)]
        ) / math.sqrt(dim)
        unitary = simulate_unitary(qft(n))
        assert unitaries_equal_up_to_phase(unitary, dft)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 0), (0, 1), (1, 1)])
    def test_rca_one_bit_addition(self, a, b):
        """The 4-qubit Cuccaro adder computes b <- a + b with carry out."""
        circuit = Circuit(4, name="prep")
        if b:
            circuit.x(1)  # b0 wire
        if a:
            circuit.x(2)  # a0 wire
        for gate in rca(4).gates:
            circuit.append(gate)
        state = simulate_statevector(circuit)
        basis = int(np.argmax(np.abs(state)))
        bits = [(basis >> (3 - wire)) & 1 for wire in range(4)]
        total = a + b
        assert bits[1] == total % 2  # sum bit on the b wire
        assert bits[3] == total // 2  # carry-out wire
        assert bits[2] == a  # a register restored

    def test_rca_two_bit_addition(self):
        """a=3, b=1 on the 6-qubit adder: b <- 0 (mod 4), carry 1."""
        circuit = Circuit(6, name="prep")
        circuit.x(1)  # b0 = 1
        circuit.x(2).x(4)  # a = 11b = 3
        for gate in rca(6).gates:
            circuit.append(gate)
        state = simulate_statevector(circuit)
        basis = int(np.argmax(np.abs(state)))
        bits = [(basis >> (5 - wire)) & 1 for wire in range(6)]
        assert (bits[1], bits[3]) == (0, 0)  # sum 100b -> low bits 0
        assert bits[5] == 1  # carry out
        assert (bits[2], bits[4]) == (1, 1)  # a restored

    def test_rca_too_small(self):
        with pytest.raises(CircuitError):
            rca(3)

    def test_qaoa_gate_structure(self):
        circuit = qaoa(4, seed=0)
        assert circuit.count("h") == 4
        assert circuit.count("rx") == 4
        # Half the possible edges -> 3 of 6, each expands to cx rz cx.
        assert circuit.count("cx") == 6
        assert circuit.count("rz") == 3

    def test_qaoa_seed_reproducible(self):
        a = qaoa(5, seed=3)
        b = qaoa(5, seed=3)
        assert [str(g) for g in a.gates] == [str(g) for g in b.gates]

    def test_random_maxcut_graph_half_edges(self):
        rng = np.random.default_rng(0)
        edges = random_maxcut_graph(6, rng)
        assert len(edges) == 15 // 2
        assert len(set(edges)) == len(edges)

    def test_vqe_full_entanglement(self):
        circuit = vqe(4, seed=0)
        assert circuit.count("cz") == 6  # all pairs
        assert circuit.count("ry") == 8  # one wall per layer + final wall

    def test_vqe_layers(self):
        assert vqe(3, seed=0, layers=2).count("cz") == 6

    def test_make_benchmark_dispatch(self):
        assert make_benchmark("qft", 3).name == "qft-3"
        with pytest.raises(CircuitError):
            make_benchmark("nope", 3)

    def test_benchmarks_have_expected_qubits(self):
        for family in ("qaoa", "qft", "rca", "vqe"):
            assert make_benchmark(family, 9, seed=1).num_qubits == 9


class TestSimulator:
    def test_statevector_normalized(self):
        circuit = qaoa(3, seed=2)
        state = simulate_statevector(circuit)
        assert math.isclose(float(np.linalg.norm(state)), 1.0, abs_tol=1e-9)

    def test_bell_state(self):
        circuit = Circuit(2)
        circuit.h(0).cx(0, 1)
        state = simulate_statevector(circuit)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_width_cap(self):
        with pytest.raises(CircuitError):
            simulate_statevector(Circuit(20))

    def test_gate_matrix_unitary(self):
        for gate in [Gate("h", (0,)), Gate("rz", (0,), (0.3,)), Gate("ccx", (0, 1, 2))]:
            matrix = gate_matrix(gate)
            assert np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]))
