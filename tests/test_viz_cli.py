"""Tests for the ASCII visualization helpers and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.ir import ROLE_ANCILLA, ROLE_GRAPH, ROLE_WORLDLINE, FlexLatticeIR
from repro.online import LayerDemand, renormalize, sample_lattice
from repro.viz import (
    render_demand_profile,
    render_ir,
    render_ir_layer,
    render_lattice,
    render_renormalization,
)


class TestVizLattice:
    def test_render_lattice_shape(self):
        lattice = sample_lattice(5, 1.0, rng=0)
        art = render_lattice(lattice)
        lines = art.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 5 for line in lines)
        assert set(art) <= {"o", ".", "\n"}

    def test_dead_sites_rendered(self):
        alive = np.ones((3, 3), dtype=bool)
        alive[1, 1] = False
        lattice = sample_lattice(3, 1.0, rng=0, site_alive=alive)
        assert render_lattice(lattice).splitlines()[1][1] == "."

    def test_render_renormalization_marks_nodes(self):
        lattice = sample_lattice(12, 1.0, rng=0)
        result = renormalize(lattice.copy(), 3)
        art = render_renormalization(lattice, result)
        assert art.count("+") >= 9  # at least one glyph per logical node
        assert "|" in art and "-" in art


class TestVizIR:
    def build_ir(self):
        ir = FlexLatticeIR(3)
        ir.add_node((0, 0, 0), ROLE_GRAPH, 1)
        ir.add_node((0, 1, 0), ROLE_ANCILLA)
        ir.add_spatial_edge((0, 0, 0), (0, 1, 0))
        ir.add_node((0, 0, 1), ROLE_WORLDLINE, 1)
        ir.add_temporal_edge((0, 0, 0), (0, 0, 1))
        return ir

    def test_layer_glyphs(self):
        art = render_ir_layer(self.build_ir(), 0)
        assert art.splitlines()[0][:2] == "Ga"

    def test_worldline_glyph(self):
        art = render_ir_layer(self.build_ir(), 1)
        assert art.splitlines()[0][0] == "W"

    def test_render_ir_counts_layers(self):
        art = render_ir(self.build_ir())
        assert "layer 0" in art and "layer 1" in art
        assert "1 temporal in" in art

    def test_render_ir_truncation(self):
        art = render_ir(self.build_ir(), max_layers=1)
        assert "more layers" in art

    def test_demand_profile(self):
        art = render_demand_profile(
            [LayerDemand(2, 1, (3,)), LayerDemand(0, 0)]
        )
        assert "##%" in art


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_command(self, capsys):
        code = main(
            [
                "compile",
                "--benchmark", "qaoa",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "100000",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "#RSL:" in output
        assert "PL ratio:" in output

    def test_compile_with_ir_dump(self, capsys):
        code = main(
            [
                "compile",
                "--benchmark", "qaoa",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "100000",
                "--show-ir", "2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "layer 0" in output

    def test_compile_json_output(self, capsys):
        import json

        code = main(
            [
                "compile",
                "--benchmark", "qaoa",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "100000",
                "--json",
            ]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["rsl_count"] > 0
        assert set(record["pass_timings"]) == {
            "translate", "rewrite", "offline-map", "lower-ir", "online-reshape"
        }

    def test_baseline_json_output(self, capsys):
        import json

        code = main(
            [
                "baseline",
                "--benchmark", "vqe",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "5000",
                "--json",
            ]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["command"] == "baseline"
        assert record["rsl_count"] > 0

    def test_baseline_command(self, capsys):
        code = main(
            [
                "baseline",
                "--benchmark", "vqe",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "5000",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "restarts:" in output

    def test_percolate_command(self, capsys):
        code = main(
            ["percolate", "--size", "16", "--rate", "0.8", "--node", "8"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "renormalization" in output

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "--benchmark", "nope", "--qubits", "4"])

    def test_compile_json_reports_cache(self, capsys):
        import json

        code = main(
            [
                "compile",
                "--benchmark", "qaoa",
                "--qubits", "4",
                "--rate", "0.9",
                "--rsl-size", "24",
                "--max-rsl", "100000",
                "--cache", "memory",
                "--json",
            ]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["cache"]["misses"] == 4  # cold cache: every stage missed
        assert record["metrics"]["cache_misses"] == 4


# The experiment subcommand's tests live in tests/test_cli_experiment.py.
