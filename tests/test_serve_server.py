"""The compile service end to end: golden identity, coalescing, lifecycle.

Pins the tentpole contracts over real sockets (loopback TCP and a Unix
socket), with the server hosted on a background event loop:

* records streamed through the server are byte-identical to a local
  ``Experiment.run`` — cache off, cache on, and on the warm second hit;
* a concurrent same-key burst executes exactly one underlying sweep while
  every client receives the complete identical byte stream;
* the summary frame round-trips into ``ExperimentResult`` (cache_session
  + session metrics), the stats op exposes live counters, protocol errors
  fail the request but not the connection, and graceful shutdown drains
  in-flight requests to their terminal frame.

The experiments used here are registered toys: fast deterministic FnJobs
plus one real (tiny) CompileJob, and a gated variant whose first job
blocks on a module Event so tests can hold a request in flight on purpose
(the server's workers share this process, so the Event reaches them).
"""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.experiments.api import (
    CompileJob,
    Experiment,
    FnJob,
    canonical_json,
)
from repro.experiments.common import stream_for
from repro.pipeline import PipelineSettings
from repro.pipeline.cache import DiskCache
from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServerError,
    ServerThread,
    decode_frame,
    request_key,
)

#: Appended per job *execution* — the burst test's "exactly one compile"
#: witness (serve toys run on the serial runner inside this process).
EXECUTED: list[str] = []

#: Gate blocking ``serve-gated``'s first job; tests release it once every
#: client of the burst has joined the in-flight stream.
GATE = threading.Event()

_TOY_SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
)


def _point(x: int, seed: int) -> dict:
    EXECUTED.append(f"point/{x}")
    rng = stream_for("serve-toy", seed).child(x).generator
    return {"x": x, "value": float(rng.integers(0, 1000))}


def _gated_point(x: int, seed: int) -> dict:
    if x == 0:
        GATE.wait(timeout=30)
    EXECUTED.append(f"gated/{x}")
    rng = stream_for("serve-gated", seed).child(x).generator
    return {"x": x, "value": float(rng.integers(0, 1000))}


class ServeToy(Experiment):
    name = "serve-toy"
    description = "service contract probe"

    def build_jobs(self, scale, seed):
        jobs = [
            FnJob(key=f"fn/{x}", fn=_point, kwargs={"x": x, "seed": seed})
            for x in range(4)
        ]
        jobs.append(
            CompileJob(
                key="compile/qaoa4",
                meta={"benchmark": "QAOA-4", "compiler": "oneperc"},
                family="qaoa",
                num_qubits=4,
                settings=_TOY_SETTINGS,
                seed=seed,
            )
        )
        return jobs

    def render(self, records):
        return f"{len(records)} records"


class ServeGated(Experiment):
    name = "serve-gated"
    description = "service in-flight probe (job 0 blocks on GATE)"

    def build_jobs(self, scale, seed):
        return [
            FnJob(key=f"fn/{x}", fn=_gated_point, kwargs={"x": x, "seed": seed})
            for x in range(3)
        ]

    def render(self, records):
        return f"{len(records)} records"


LOCAL_TOY = ServeToy().run("bench", seed=0)


@pytest.fixture(autouse=True, scope="module")
def _registered_toys():
    """Register the probe experiments for this module only.

    Registration must not happen at import time: pytest imports every test
    module during collection, and a permanently registered toy would leak
    into the registry-contents assertions of test_experiments.py.
    """
    from repro.experiments.api import EXPERIMENT_REGISTRY

    toys = {"serve-toy": ServeToy(), "serve-gated": ServeGated()}
    EXPERIMENT_REGISTRY.update(toys)
    yield
    for name in toys:
        EXPERIMENT_REGISTRY.pop(name, None)


@pytest.fixture(autouse=True)
def _reset_gate():
    GATE.clear()
    EXECUTED.clear()
    yield
    GATE.set()  # never leave a worker blocked across tests


def _client(st: ServerThread, **kwargs) -> ServeClient:
    client = ServeClient(port=st.port, **kwargs)
    client.wait_until_up()
    return client


class TestGoldenIdentity:
    def test_streamed_records_match_local_run_cache_off(self):
        with ServerThread(ServeConfig(port=0)) as st:
            run = _client(st).submit(
                {"op": "experiment", "name": "serve-toy"}
            ).raise_for_error()
        assert canonical_json(run.records) == canonical_json(LOCAL_TOY.records)
        assert run.summary["records"] == len(LOCAL_TOY.records)

    def test_streamed_records_match_local_run_cache_on_and_warm(self, tmp_path):
        cache = DiskCache(tmp_path / "store")
        with ServerThread(ServeConfig(port=0, cache=cache)) as st:
            client = _client(st)
            request = {"op": "experiment", "name": "serve-toy"}
            cold = client.submit(request).raise_for_error()
            warm = client.submit(request).raise_for_error()
        for run in (cold, warm):
            assert canonical_json(run.records) == canonical_json(
                LOCAL_TOY.records
            )
        # the second submit hit the warm store (single-flight retired the
        # key after the first finished, so this was a fresh cache-read run)
        assert warm.summary["cache"]["hits"] > 0
        assert cold.summary["cache"]["misses"] > 0

    def test_summary_round_trips_into_experiment_result(self, tmp_path):
        cache = DiskCache(tmp_path / "store")
        with ServerThread(ServeConfig(port=0, cache=cache)) as st:
            run = _client(st).submit(
                {"op": "experiment", "name": "serve-toy"}
            ).raise_for_error()
        result = run.experiment_result()
        assert canonical_json(result.records) == canonical_json(
            LOCAL_TOY.records
        )
        # the satellite contract: the remote result carries the server
        # session's cache view and metrics snapshot out of the summary
        assert result.cache_session["backend"] == "disk"
        assert result.cache_session["misses"] > 0
        assert "counters" in result.session_metrics
        obj = result.to_json_obj()
        assert obj["cache_session"] == result.cache_session
        # record-derived accounting reconstructs exactly (cold run: the
        # session counters and the record sums are the same lookups)
        assert result.cache_stats() == run.summary["cache"]

    def test_compile_request_streams_passes_and_result(self):
        with ServerThread(ServeConfig(port=0)) as st:
            run = _client(st).submit(
                {"op": "compile", "benchmark": "qaoa", "qubits": 4,
                 "rate": 0.9, "rsl_size": 24, "virtual_size": 2,
                 "max_rsl": 10**5}
            ).raise_for_error()
        assert [p["pass"] for p in run.passes] == [
            "translate", "rewrite", "offline-map", "lower-ir", "online-reshape"
        ]
        assert run.result["benchmark"] == "qaoa-4"
        assert run.result["rsl_count"] > 0
        assert run.summary["op"] == "compile"

    def test_baseline_request(self):
        with ServerThread(ServeConfig(port=0)) as st:
            run = _client(st).submit(
                {"op": "baseline", "benchmark": "qaoa", "qubits": 4,
                 "rate": 0.9, "rsl_size": 24, "virtual_size": 2,
                 "max_rsl": 10**4}
            ).raise_for_error()
        assert [p["pass"] for p in run.passes] == ["translate", "baseline"]
        assert run.result["rsl_count"] > 0

    def test_compile_with_inserted_validator_and_rejection_details(self):
        """The ``passes`` request field end to end: a passing validator
        changes nothing; a rejecting one terminates the stream with an
        error frame carrying the structured diagnostics as ``details``."""
        with ServerThread(ServeConfig(port=0)) as st:
            ok = _client(st).submit(
                {"op": "compile", "benchmark": "qaoa", "qubits": 4,
                 "rate": 0.9, "rsl_size": 24, "virtual_size": 2,
                 "max_rsl": 10**5, "passes": "validate-connectivity"}
            ).raise_for_error()
            rejected = _client(st).submit(
                {"op": "compile", "benchmark": "qft", "qubits": 25,
                 "rate": 0.9, "rsl_size": 24, "virtual_size": 2,
                 "max_rsl": 10**5, "passes": "validate-connectivity"}
            )
        assert "validate-connectivity" in [p["pass"] for p in ok.passes]
        assert ok.result["rsl_count"] > 0
        assert rejected.error is not None
        assert rejected.error["kind"] == "ValidationError"
        details = rejected.error["details"]
        assert details["error"] == "validation"
        assert details["validator"] == "validate-connectivity"
        assert any(
            d["rule"] == "connectivity/width" for d in details["diagnostics"]
        )


class TestCoalescing:
    def test_concurrent_burst_compiles_once_with_identical_bytes(self):
        """N clients, one key: one sweep executes, N identical streams."""
        n = 4
        with ServerThread(ServeConfig(port=0, max_inflight=2)) as st:
            clients = [_client(st) for _ in range(n)]
            runs: list = [None] * n
            errors: list = []
            barrier = threading.Barrier(n)

            def submit(slot):
                try:
                    barrier.wait(timeout=10)
                    runs[slot] = clients[slot].submit(
                        {"op": "experiment", "name": "serve-gated"}
                    )
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(n)
            ]
            for thread in threads:
                thread.start()
            # hold the producer until every client joined the stream — the
            # singleflight counters tick at join time, before any record
            deadline = threading.Event()
            for _ in range(200):
                stats = st.server.singleflight.stats()
                if stats["started"] + stats["coalesced"] >= n:
                    break
                deadline.wait(0.05)
            GATE.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        # exactly one underlying execution of the gated job
        assert EXECUTED.count("gated/0") == 1
        for run in runs:
            run.raise_for_error()
        # every subscriber received the complete stream, byte-identical —
        # including those that joined mid-production (full replay)
        reference = runs[0].raw
        assert len(reference) == 3 + 1  # records + summary
        assert all(run.raw == reference for run in runs[1:])
        # exactly one leader, n-1 coalesced acks
        assert sum(not run.coalesced for run in runs) == 1
        assert sum(run.coalesced for run in runs) == n - 1

    def test_request_key_separates_different_work(self):
        base = {"op": "experiment", "name": "serve-toy", "scale": "bench",
                "seed": 0, "runner": "serial", "workers": None,
                "shards": None, "pathfind": None, "rewrite": None}
        assert request_key(base) == request_key(dict(base))
        assert request_key(base) != request_key({**base, "seed": 1})
        assert request_key(base) != request_key({**base, "name": "serve-gated"})
        assert request_key(base) != request_key({**base, "rewrite": "off"})
        compile_req = {"op": "compile", "benchmark": "qaoa", "qubits": 4,
                       "rate": 0.75, "stars": 4, "seed": 0, "rsl_size": None,
                       "virtual_size": None, "max_rsl": 10**6,
                       "pathfind": "vector", "rewrite": "on", "passes": None}
        assert request_key(compile_req) != request_key(
            {**compile_req, "op": "baseline"}
        )
        assert request_key(compile_req) != request_key(
            {**compile_req, "qubits": 9}
        )
        assert request_key(compile_req) != request_key(
            {**compile_req, "rewrite": "off"}
        )
        assert request_key(compile_req) != request_key(
            {**compile_req, "passes": "validate-rsg"}
        )


class TestLifecycle:
    def test_stats_op_reports_live_counters(self):
        with ServerThread(ServeConfig(port=0)) as st:
            client = _client(st)
            client.submit(
                {"op": "experiment", "name": "serve-toy"}
            ).raise_for_error()
            stats = client.server_stats()
        assert stats["requests"]["total"] >= 2  # experiment + stats
        assert stats["requests"]["by_op"]["experiment"] == 1
        assert stats["singleflight"]["started"] == 1
        assert "serve.request_seconds" in stats["metrics"]["histograms"]
        assert stats["uptime_s"] > 0

    def test_unknown_experiment_is_an_error_frame(self):
        with ServerThread(ServeConfig(port=0)) as st:
            run = _client(st).submit(
                {"op": "experiment", "name": "no-such-table"}
            )
            assert run.error is not None
            with pytest.raises(ServerError):
                run.raise_for_error()
            with pytest.raises(ReproError):
                run.experiment_result()

    def test_protocol_error_does_not_kill_the_connection(self):
        import socket

        with ServerThread(ServeConfig(port=0)) as st:
            _client(st)  # waits until up
            with socket.create_connection(("127.0.0.1", st.port)) as sock:
                reader = sock.makefile("rb")
                assert decode_frame(reader.readline())["frame"] == "hello"
                sock.sendall(b"this is not json\n")
                error = decode_frame(reader.readline())
                assert error["frame"] == "error"
                assert error["kind"] == "protocol"
                # same socket still serves a valid request
                sock.sendall(json.dumps({"op": "stats"}).encode() + b"\n")
                assert decode_frame(reader.readline())["frame"] == "ack"
                assert decode_frame(reader.readline())["frame"] == "stats"

    def test_client_side_validation_rejects_before_the_network(self):
        client = ServeClient(port=1)  # nothing listens there
        with pytest.raises(ProtocolError):
            client.submit({"op": "experiment"})  # missing name

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with ServerThread(
            ServeConfig(port=None, unix_path=path)
        ) as st:
            assert st.port is None
            client = ServeClient(unix_path=path)
            client.wait_until_up()
            run = client.submit(
                {"op": "experiment", "name": "serve-toy"}
            ).raise_for_error()
        assert canonical_json(run.records) == canonical_json(LOCAL_TOY.records)

    def test_graceful_shutdown_drains_in_flight_request(self):
        st = ServerThread(ServeConfig(port=0, drain_timeout=30)).start()
        client = _client(st)
        outcome: dict = {}

        def submit():
            outcome["run"] = client.submit(
                {"op": "experiment", "name": "serve-gated"}
            )

        worker = threading.Thread(target=submit)
        worker.start()
        # wait until the request is actually in flight, then shut down
        for _ in range(200):
            if st.server.singleflight.stats()["inflight"]:
                break
            threading.Event().wait(0.05)
        stopper = threading.Thread(target=st.stop)
        stopper.start()
        # let shutdown reach its drain wait, then release the job
        threading.Event().wait(0.2)
        GATE.set()
        worker.join(timeout=30)
        stopper.join(timeout=30)
        run = outcome["run"].raise_for_error()
        assert len(run.records) == 3  # the drained request completed fully
        # the listener is gone: fresh connections are refused
        with pytest.raises(OSError):
            ServeClient(port=st.port or 1, timeout=0.5).submit({"op": "stats"})

    def test_request_timeout_errors_the_subscriber(self):
        with ServerThread(
            ServeConfig(port=0, request_timeout=0.2)
        ) as st:
            run = _client(st).submit(
                {"op": "experiment", "name": "serve-gated"}
            )
            assert run.error is not None
            assert run.error["kind"] == "timeout"
            GATE.set()  # let the (still running) producer finish pre-drain
