"""The stabilizer tableau as ground truth for the graph rewrite rules.

These are the load-bearing correctness tests of the quantum substrate: every
graph-level rule the online pass relies on (fusion success/failure, X/Y/Z
measurements, local complementation) is checked edge-for-edge against an
independent CHP simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphStateError
from repro.graphstate import (
    GraphState,
    PauliProduct,
    Tableau,
    apply_fusion,
    graph_from_adjacency,
)


def expected_adjacency(graph: GraphState, order: list) -> np.ndarray:
    size = len(order)
    matrix = np.zeros((size, size), dtype=np.uint8)
    for i, u in enumerate(order):
        for j, v in enumerate(order):
            if i != j and graph.has_edge(u, v):
                matrix[i, j] = 1
    return matrix


def random_graph(num_nodes: int, edge_bits: int) -> GraphState:
    graph = GraphState()
    for node in range(num_nodes):
        graph.add_node(node)
    index = 0
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (edge_bits >> index) & 1:
                graph.add_edge(i, j)
            index += 1
    return graph


def assert_tableau_matches(tableau: Tableau, graph: GraphState) -> None:
    keep = sorted(graph.nodes())
    adjacency, _ops = tableau.extract_graph(keep)
    assert np.array_equal(adjacency, expected_adjacency(graph, keep))


def two_stars() -> GraphState:
    graph = GraphState()
    for leaf in (1, 2, 3):
        graph.add_edge(0, leaf)
    for leaf in (5, 6, 7):
        graph.add_edge(4, leaf)
    return graph


class TestTableauBasics:
    def test_zero_state_stabilizers(self):
        tableau = Tableau(2)
        adjacency, ops = tableau.extract_graph([0, 1])
        # |00> reduces to the empty graph (after local Hadamards).
        assert adjacency.sum() == 0
        assert {op for op, _q in ops} <= {"H", "S"}

    def test_graph_state_round_trip(self):
        graph = GraphState([(0, 1), (1, 2)])
        tableau, _ = Tableau.from_graph(graph)
        assert_tableau_matches(tableau, graph)

    def test_measurement_deterministic_on_stabilizer(self):
        graph = GraphState([(0, 1)])
        tableau, index = Tableau.from_graph(graph)
        # X_0 Z_1 stabilizes the 2-qubit graph state: outcome must be 0.
        product = PauliProduct.from_letters(2, {index[0]: "X", index[1]: "Z"})
        assert tableau.measure_pauli(product) == 0

    def test_postselect_against_determinism_raises(self):
        graph = GraphState([(0, 1)])
        tableau, index = Tableau.from_graph(graph)
        product = PauliProduct.from_letters(2, {index[0]: "X", index[1]: "Z"})
        with pytest.raises(GraphStateError):
            tableau.measure_pauli(product, postselect=1)

    def test_random_measurement_respects_postselect(self):
        tableau = Tableau(1)
        tableau.hadamard(0)  # |+>
        assert tableau.measure_letter(0, "Z", postselect=1) == 1

    def test_entangled_keep_raises(self):
        graph = GraphState([(0, 1)])
        tableau, _ = Tableau.from_graph(graph)
        with pytest.raises(GraphStateError):
            tableau.extract_graph([0])  # qubit 1 still entangled

    def test_measured_out_qubit_can_be_dropped(self):
        graph = GraphState([(0, 1), (1, 2)])
        tableau, index = Tableau.from_graph(graph)
        tableau.measure_letter(index[1], "Z", postselect=0)
        adjacency, _ = tableau.extract_graph([index[0], index[2]])
        assert adjacency.sum() == 0  # Z-measurement cuts the chain

    def test_pauli_product_validates_labels(self):
        with pytest.raises(GraphStateError):
            PauliProduct.from_letters(2, {0: "Q"})

    def test_pauli_product_validates_range(self):
        with pytest.raises(GraphStateError):
            PauliProduct.from_letters(2, {5: "X"})


class TestMeasurementRules:
    @pytest.mark.parametrize("letter", ["Z", "Y"])
    def test_measurement_rule_on_root(self, letter):
        graph = two_stars()
        graph.add_edge(3, 5)
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        if letter == "Z":
            expected.measure_z(0)
        else:
            expected.measure_y(0)
        tableau.measure_letter(index[0], letter, postselect=0)
        assert_tableau_matches(tableau, expected)

    def test_x_measurement_rule_up_to_h_byproduct(self):
        """X measurement matches after the known H byproduct on b."""
        graph = two_stars()
        graph.add_edge(3, 5)
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        expected.measure_x(0, special_neighbor=1)
        tableau.measure_letter(index[0], "X", postselect=0)
        tableau.hadamard(index[1])
        assert_tableau_matches(tableau, expected)

    @given(st.integers(3, 7), st.integers(0, 2**21 - 1), st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_y_measurement_rule_randomized(self, size, bits, node):
        graph = random_graph(size, bits)
        if node >= size:
            return
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        expected.measure_y(node)
        tableau.measure_letter(index[node], "Y", postselect=0)
        assert_tableau_matches(tableau, expected)

    @given(st.integers(3, 7), st.integers(0, 2**21 - 1), st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_z_measurement_rule_randomized(self, size, bits, node):
        graph = random_graph(size, bits)
        if node >= size:
            return
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        expected.measure_z(node)
        tableau.measure_letter(index[node], "Z", postselect=0)
        assert_tableau_matches(tableau, expected)


class TestFusionRules:
    def test_leaf_leaf_success_joins_stars(self):
        graph = two_stars()
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        apply_fusion(expected, 1, 5, True)
        tableau.fuse(index[1], index[5])
        assert expected.has_edge(0, 4)  # the two roots joined
        assert_tableau_matches(tableau, expected)

    def test_leaf_leaf_failure_burns_leaves(self):
        graph = two_stars()
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        apply_fusion(expected, 1, 5, False)
        tableau.measure_letter(index[1], "Y", postselect=0)
        tableau.measure_letter(index[5], "Y", postselect=0)
        assert not expected.has_edge(0, 4)
        assert_tableau_matches(tableau, expected)

    def test_root_leaf_success_merges_degree(self):
        graph = two_stars()
        expected = graph.copy()
        apply_fusion(expected, 5, 0, True)  # root 0 fused with leaf 5
        # Surviving root 4 gains 0's leaves: degree 2 + 3 = 5.
        assert expected.degree(4) == 5
        tableau, index = Tableau.from_graph(graph)
        tableau.fuse(index[5], index[0])
        assert_tableau_matches(tableau, expected)

    def test_root_leaf_failure_creates_cycle(self):
        """Fig. 8: failing on the root leaves a fully connected structure."""
        graph = two_stars()
        expected = graph.copy()
        apply_fusion(expected, 0, 5, False)
        # 0's neighbours became a clique (LC at 0 before removal).
        assert expected.has_edge(1, 2)
        assert expected.has_edge(2, 3)
        assert expected.has_edge(1, 3)
        tableau, index = Tableau.from_graph(graph)
        tableau.measure_letter(index[0], "Y", postselect=0)
        tableau.measure_letter(index[5], "Y", postselect=0)
        assert_tableau_matches(tableau, expected)

    @given(
        st.integers(4, 8),
        st.integers(0, 2**28 - 1),
        st.integers(0, 7),
        st.integers(0, 7),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_fusion_rule_randomized(self, size, bits, a, b, success):
        graph = random_graph(size, bits)
        if a >= size or b >= size or a == b or graph.has_edge(a, b):
            return
        tableau, index = Tableau.from_graph(graph)
        expected = graph.copy()
        apply_fusion(expected, a, b, success)
        if success:
            tableau.fuse(index[a], index[b])
        else:
            tableau.measure_letter(index[a], "Y", postselect=0)
            tableau.measure_letter(index[b], "Y", postselect=0)
        assert_tableau_matches(tableau, expected)


class TestLocalComplementOperator:
    def test_lc_operator_content(self):
        """U_v(G) = sqrt(-iX)_v prod sqrt(iZ)_u implements tau_v."""
        graph = two_stars()
        expected = graph.copy()
        expected.local_complement(0)
        tableau, index = Tableau.from_graph(graph)
        tableau.sqrt_x(index[0])
        for leaf in (1, 2, 3):
            tableau.phase_gate(index[leaf])
        assert_tableau_matches(tableau, expected)

    @given(st.integers(3, 7), st.integers(0, 2**21 - 1), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_lc_operator_randomized(self, size, bits, node):
        graph = random_graph(size, bits)
        if node >= size:
            return
        expected = graph.copy()
        expected.local_complement(node)
        tableau, index = Tableau.from_graph(graph)
        tableau.sqrt_x(index[node])
        for neighbor in graph.neighbors(node):
            tableau.phase_gate(index[neighbor])
        assert_tableau_matches(tableau, expected)


class TestGraphFromAdjacency:
    def test_round_trip(self):
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        graph = graph_from_adjacency(adjacency)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)
