"""Tests for the Section 3.1 dynamic-retry strategy and its failure modes."""

import pytest

from repro.baseline.dynamic_retry import (
    DynamicBuildResult,
    build_with_dynamic_retry,
    chain_edges,
    triangle_edges,
)
from repro.errors import HardwareError


class TestTargets:
    def test_chain_edges(self):
        assert chain_edges(3) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(HardwareError):
            chain_edges(0)

    def test_triangle_edges(self):
        assert len(triangle_edges()) == 3


class TestDynamicBuild:
    def test_perfect_fusions_single_attempt(self):
        result = build_with_dynamic_retry(
            triangle_edges(), fusion_success_rate=1.0, rng=0
        )
        assert result.success
        assert result.rsls_consumed == 1
        assert result.fatal_failures == 0
        assert result.fusions_attempted == 3

    def test_empty_target_rejected(self):
        with pytest.raises(HardwareError):
            build_with_dynamic_retry([], rng=0)

    def test_impossible_rate_hits_restart_cap(self):
        result = build_with_dynamic_retry(
            chain_edges(2), fusion_success_rate=1e-9, rng=0, max_restarts=5
        )
        assert not result.success
        assert result.rsls_consumed == 5

    def test_retries_cost_leaves_and_fusions(self):
        result = build_with_dynamic_retry(
            triangle_edges(), fusion_success_rate=0.6, rng=2
        )
        assert result.success
        assert result.fusions_attempted >= 3  # at least one per edge

    def test_sequential_steps_count_every_fusion(self):
        """Dynamic retry has zero concurrency: steps == fusion attempts."""
        result = build_with_dynamic_retry(
            chain_edges(4), fusion_success_rate=0.75, rng=3
        )
        assert result.sequential_steps == result.fusions_attempted

    def test_restarts_grow_with_structure_size(self):
        """Fig. 5's point: bigger targets mean more fatal failures."""

        def average_rsls(edges, trials=80) -> float:
            total = 0
            for seed in range(trials):
                total += build_with_dynamic_retry(
                    edges, fusion_success_rate=0.7, rng=seed
                ).rsls_consumed
            return total / trials

        small = average_rsls(chain_edges(2))
        large = average_rsls(chain_edges(7))
        assert large > small

    def test_lower_rate_more_restarts(self):
        def average_rsls(rate, trials=60) -> float:
            total = 0
            for seed in range(trials):
                total += build_with_dynamic_retry(
                    triangle_edges(), fusion_success_rate=rate, rng=seed
                ).rsls_consumed
            return total / trials

        assert average_rsls(0.6) > average_rsls(0.9)

    def test_result_dataclass_fields(self):
        result = DynamicBuildResult(
            success=True,
            rsls_consumed=2,
            fusions_attempted=5,
            sequential_steps=5,
            fatal_failures=1,
        )
        assert result.fatal_failures == result.rsls_consumed - 1
