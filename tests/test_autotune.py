"""Tests for the node-size autotuner (the Fig. 13(a)/16 policy as code)."""

import pytest

from repro.errors import RenormalizationError
from repro.online import (
    choose_node_side,
    estimate_success,
    rsl_size_for_virtual,
    saturation_point,
    success_curve,
)
from repro.utils.rng import ensure_rng


class TestEstimateSuccess:
    def test_perfect_bonds_always_succeed(self):
        rng = ensure_rng(0)
        assert estimate_success(24, 8, 1.0, trials=4, rng=rng) == 1.0

    def test_dead_bonds_never_succeed(self):
        rng = ensure_rng(0)
        assert estimate_success(24, 8, 0.0, trials=4, rng=rng) == 0.0

    def test_node_side_validation(self):
        rng = ensure_rng(0)
        with pytest.raises(RenormalizationError):
            estimate_success(24, 0, 0.5, trials=1, rng=rng)
        with pytest.raises(RenormalizationError):
            estimate_success(24, 25, 0.5, trials=1, rng=rng)


class TestChooseNodeSide:
    def test_easy_regime_chooses_small_nodes(self):
        choice = choose_node_side(36, 0.95, target_success=0.9, trials=6, rng=1)
        assert choice.node_side <= 12
        assert choice.estimated_success >= 0.9

    def test_hard_regime_chooses_larger_nodes(self):
        easy = choose_node_side(36, 0.90, target_success=0.9, trials=6, rng=1)
        hard = choose_node_side(36, 0.68, target_success=0.9, trials=6, rng=1)
        assert hard.node_side >= easy.node_side

    def test_virtual_side_derivation(self):
        choice = choose_node_side(48, 0.9, target_success=0.8, trials=4, rng=0)
        assert choice.virtual_side == 48 // choice.node_side

    def test_target_validation(self):
        with pytest.raises(RenormalizationError):
            choose_node_side(24, 0.75, target_success=0.0)

    def test_unsaturable_returns_coarsest(self):
        """Below threshold, nothing saturates; the coarsest choice returns."""
        choice = choose_node_side(16, 0.2, target_success=0.99, trials=3, rng=0)
        assert choice.estimated_success < 0.99


class TestRslSizeForVirtual:
    def test_returns_first_saturating_candidate(self):
        choice = rsl_size_for_virtual(2, 0.9, target_success=0.8, trials=5, rng=2)
        assert choice.rsl_size == choice.node_side * 2
        assert choice.estimated_success >= 0.8

    def test_harder_rate_needs_bigger_rsl(self):
        easy = rsl_size_for_virtual(2, 0.92, target_success=0.9, trials=6, rng=3)
        hard = rsl_size_for_virtual(2, 0.70, target_success=0.9, trials=6, rng=3)
        assert hard.rsl_size >= easy.rsl_size

    def test_virtual_side_validation(self):
        with pytest.raises(RenormalizationError):
            rsl_size_for_virtual(0, 0.75)

    def test_empty_candidates_rejected(self):
        with pytest.raises(RenormalizationError):
            rsl_size_for_virtual(2, 0.75, candidate_node_sides=())


class TestSuccessCurve:
    def test_curve_is_sorted_and_bounded(self):
        curve = success_curve(36, 0.78, [18, 6, 12], trials=5, rng=4)
        assert [side for side, _s in curve] == [6, 12, 18]
        assert all(0.0 <= s <= 1.0 for _n, s in curve)

    def test_saturation_point(self):
        curve = [(6, 0.0), (12, 0.4), (18, 0.95), (24, 1.0)]
        assert saturation_point(curve, 0.9) == 18
        assert saturation_point(curve, 0.99) == 24
        assert saturation_point([(6, 0.1)], 0.9) is None
