"""Pass insertion: anchors, the static chain contract, and cache rewrap."""

import pytest

from repro.circuits.benchmarks import make_benchmark
from repro.passes import ConnectivityValidatorPass, RewritePass
from repro.pipeline import (
    MemoryCache,
    PassInsertionError,
    Pipeline,
    PipelineSettings,
    check_chain,
)
from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass
from repro.pipeline.pipeline import TranslatePass, default_passes

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

CIRCUIT = make_benchmark("qaoa", 4, seed=0)


class NullPass(CompilerPass):
    name = "null"

    def run(self, ctx: PassContext) -> None:
        pass


def _names(pipeline):
    return [stage.name for stage in pipeline.passes]


class TestAnchors:
    def test_insert_after_and_before(self):
        base = Pipeline(SETTINGS)
        after = base.insert_pass(ConnectivityValidatorPass(), after="translate")
        assert _names(after) == [
            "translate", "validate-connectivity", "rewrite", "offline-map",
            "lower-ir", "online-reshape",
        ]
        before = base.insert_pass(ConnectivityValidatorPass(), before="rewrite")
        assert _names(before) == _names(after)

    def test_append_when_no_anchor(self):
        pipeline = Pipeline(SETTINGS).insert_pass(NullPass())
        assert _names(pipeline)[-1] == "null"

    def test_both_anchors_rejected(self):
        with pytest.raises(PassInsertionError) as excinfo:
            Pipeline(SETTINGS).insert_pass(
                NullPass(), after="translate", before="rewrite"
            )
        assert excinfo.value.kind == "anchor"

    def test_unknown_anchor_lists_chain(self):
        with pytest.raises(PassInsertionError) as excinfo:
            Pipeline(SETTINGS).insert_pass(NullPass(), after="no-such-pass")
        assert excinfo.value.kind == "anchor"
        message = str(excinfo.value)
        for name in _names(Pipeline(SETTINGS)):
            assert name in message

    def test_original_pipeline_unchanged(self):
        base = Pipeline(SETTINGS)
        base.insert_pass(NullPass(), after="translate")
        assert "null" not in _names(base)


class TestChainContract:
    def test_unsatisfied_requires_names_both_passes(self):
        """Inserting a pattern consumer before any provider exists must
        raise a structured error naming the new pass, the provider that
        comes too late, and the artifact."""
        with pytest.raises(PassInsertionError) as excinfo:
            Pipeline(SETTINGS).insert_pass(RewritePass(), before="translate")
        error = excinfo.value
        assert error.kind == "unsatisfied"
        assert error.new_pass == "rewrite"
        assert error.existing_pass == "translate"
        assert error.key == "pattern"
        assert "rewrite" in str(error) and "translate" in str(error)

    def test_requires_with_no_provider_anywhere(self):
        class Orphan(CompilerPass):
            name = "orphan"
            requires = ("unicorn",)

            def run(self, ctx: PassContext) -> None:
                pass

        with pytest.raises(PassInsertionError) as excinfo:
            Pipeline(SETTINGS).insert_pass(Orphan(), after="translate")
        assert excinfo.value.kind == "unsatisfied"
        assert excinfo.value.key == "unicorn"
        assert excinfo.value.existing_pass is None
        assert "no pass in the chain provides" in str(excinfo.value)

    def test_provides_collision_names_both_passes(self):
        """A second provider of ``pattern`` that does not also require it is
        not an in-place refinement — reject it, naming the incumbent (the
        chain's latest provider of the artifact)."""
        with pytest.raises(PassInsertionError) as excinfo:
            Pipeline(SETTINGS).insert_pass(TranslatePass(), after="rewrite")
        error = excinfo.value
        assert error.kind == "collision"
        assert error.new_pass == "translate"
        assert error.existing_pass == "rewrite"
        assert error.key == "pattern"
        assert "in-place refinement" in str(error)
        assert "translate" in str(error) and "rewrite" in str(error)

    def test_in_place_refinement_is_legal(self):
        """rewrite provides what translate provides — legal, because it also
        requires it (pattern -> pattern)."""
        pipeline = Pipeline(SETTINGS).insert_pass(RewritePass(), after="rewrite")
        assert _names(pipeline).count("rewrite") == 2
        result = pipeline.compile(CIRCUIT, seed=0)
        assert result.rsl_count > 0

    def test_check_chain_standalone(self):
        check_chain(default_passes())  # the default chain is self-consistent
        with pytest.raises(PassInsertionError):
            check_chain(tuple(reversed(default_passes())))


class TestCacheInteraction:
    def test_inserted_cacheable_pass_gets_wrapped(self):
        cache = MemoryCache()
        pipeline = Pipeline(SETTINGS, cache=cache).insert_pass(
            RewritePass(), after="rewrite"
        )
        kinds = [type(stage).__name__ for stage in pipeline.passes]
        # Both rewrites (built-in and inserted) are cache-wrapped.
        assert kinds.count("CachePass") == 5
        cold = pipeline.compile(CIRCUIT, seed=0)
        warm = pipeline.compile(CIRCUIT, seed=0)
        # The duplicate rewrite is a no-op on the already-simplified pattern,
        # so its key matches the first rewrite's entry: 4 misses + 1 hit.
        assert cold.metrics["cache_misses"] == 4
        assert cold.metrics["cache_hits"] == 1
        assert warm.metrics["cache_hits"] == 5

    def test_inserted_validator_stays_unwrapped(self):
        pipeline = Pipeline(SETTINGS, cache=MemoryCache()).insert_pass(
            ConnectivityValidatorPass(), after="translate"
        )
        stage = pipeline.passes[1]
        assert type(stage).__name__ == "ConnectivityValidatorPass"

    def test_insertion_preserves_compilation_identity(self):
        plain = Pipeline(SETTINGS).compile(CIRCUIT, seed=5)
        gated = Pipeline(SETTINGS).insert_pass(
            ConnectivityValidatorPass(), after="translate"
        ).compile(CIRCUIT, seed=5)
        assert (plain.rsl_count, plain.fusion_count) == (
            gated.rsl_count, gated.fusion_count,
        )
