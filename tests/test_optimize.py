"""Tests for pattern-level optimization (zero-pair contraction)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    qft,
    simulate_statevector,
    states_equal_up_to_phase,
    to_jcz,
)
from repro.mbqc import merge_zero_pairs, optimize_pattern, run_pattern, translate_circuit


def unsimplified_pattern(circuit):
    """Translate without the circuit-level J(0) peephole, so zero pairs
    survive into the pattern for the optimizer to find."""
    return translate_circuit(to_jcz(circuit, simplify=False))


def zero_state(pattern):
    state = np.zeros(2 ** len(pattern.inputs), dtype=complex)
    state[0] = 1.0
    return state


class TestMergeZeroPairs:
    def test_contracts_double_hadamard(self):
        circuit = Circuit(1)
        # rz anchors the wire so the H pair sits mid-wire (inputs are never
        # contracted), then H H leaves two adjacent zero-angle nodes.
        circuit.rz(0.7, 0).h(0).h(0).rz(0.3, 0)
        pattern = unsimplified_pattern(circuit)
        report = merge_zero_pairs(pattern)
        assert report.contracted_pairs >= 1
        assert report.nodes_after < report.nodes_before

    def test_no_op_on_simplified_pattern(self):
        pattern = translate_circuit(qft(2))
        before = pattern.node_count
        report = merge_zero_pairs(pattern)
        # The circuit-level peephole already took the free pairs; whatever
        # remains must involve CZ-entangled nodes the optimizer must skip.
        assert report.nodes_after <= before

    def test_preserves_interface(self):
        circuit = Circuit(2)
        circuit.rz(0.5, 0).rz(0.5, 0).cz(0, 1).rz(0.2, 1)
        pattern = unsimplified_pattern(circuit)
        inputs, outputs = list(pattern.inputs), list(pattern.outputs)
        merge_zero_pairs(pattern)
        assert pattern.inputs == inputs
        assert pattern.outputs == outputs

    def test_pattern_still_validates(self):
        pattern = unsimplified_pattern(qft(2))
        merge_zero_pairs(pattern)
        pattern.validate()
        assert len(pattern.flow_order()) == pattern.measured_count

    @pytest.mark.parametrize(
        "build",
        [
            lambda c: c.rz(0.7, 0).h(0).h(0).rz(0.3, 0),
            lambda c: c.h(0).h(0).rz(1.1, 0),
            lambda c: c.rz(0.4, 0).cz(0, 1).rz(0.6, 1).h(1).h(1).rz(0.2, 1),
            lambda c: c.rz(0.9, 0).x(0).x(0).rz(0.1, 0),
        ],
    )
    def test_semantics_preserved(self, build):
        """Optimized patterns compute the same state (dense validation)."""
        circuit = Circuit(2)
        build(circuit)
        pattern = unsimplified_pattern(circuit)
        optimize_pattern(pattern)
        output, _ = run_pattern(
            pattern, input_state=zero_state(pattern), rng=np.random.default_rng(3)
        )
        assert states_equal_up_to_phase(output, simulate_statevector(circuit))

    def test_skips_entangled_zero_nodes(self):
        """Zero-angle nodes carrying CZ edges are load-bearing: kept."""
        circuit = Circuit(2)
        # H on wire 0, then CZ, then H again: the two J(0) nodes sandwich an
        # entangling edge and must NOT contract.
        circuit.h(0).cz(0, 1).h(0).rz(0.3, 1)
        pattern = unsimplified_pattern(circuit)
        before = pattern.graph.edge_count
        report = merge_zero_pairs(pattern)
        assert report.contracted_pairs == 0
        assert pattern.graph.edge_count == before

    def test_optimizer_shrinks_mapping_input(self):
        """Fewer pattern nodes means fewer layers for the offline mapper."""
        from repro.offline import OfflineMapper

        circuit = Circuit(2)
        circuit.rz(0.5, 0).rz(0.5, 1)
        for _ in range(3):
            circuit.h(0).h(0).h(1).h(1)
        circuit.cz(0, 1)
        circuit.rz(0.2, 0).rz(0.2, 1)
        raw = unsimplified_pattern(circuit)
        optimized = unsimplified_pattern(circuit)
        optimize_pattern(optimized)
        assert optimized.node_count < raw.node_count
        raw_layers = OfflineMapper(width=2).map_pattern(raw).layer_count
        optimized_layers = OfflineMapper(width=2).map_pattern(optimized).layer_count
        assert optimized_layers <= raw_layers
