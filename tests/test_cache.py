"""Unit tests for the content-addressed artifact cache (tiny parameters).

The bench-scale golden matrix (cache off / cold / warm x serial / thread /
process) lives in benchmarks/test_cache_determinism.py; these tests pin the
cache's own contract: key derivation, backend behavior, hit replay fidelity,
pipeline wiring, and the process-pool pickling rules.
"""

import pickle

import pytest

from repro.circuits import make_benchmark
from repro.errors import CompilationError
from repro.pipeline import (
    CachePass,
    DiskCache,
    LowerIRPass,
    MemoryCache,
    Pipeline,
    PipelineSettings,
    TranslatePass,
    cached_passes,
    circuit_fingerprint,
    default_passes,
    make_cache,
)

SETTINGS = PipelineSettings(fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5)
CIRCUIT = make_benchmark("qaoa", 4, seed=0)


def _metrics(result):
    return (result.rsl_count, result.fusion_count, result.logical_layers, result.pl_ratio)


class TestFingerprint:
    def test_stable_across_copies(self):
        assert circuit_fingerprint(CIRCUIT) == circuit_fingerprint(CIRCUIT.copy())

    def test_sensitive_to_content_and_name(self):
        other_seed = make_benchmark("qaoa", 4, seed=1)
        assert circuit_fingerprint(CIRCUIT) != circuit_fingerprint(other_seed)
        renamed = CIRCUIT.copy()
        renamed.name = "something-else"
        assert circuit_fingerprint(CIRCUIT) != circuit_fingerprint(renamed)


class TestBackends:
    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_round_trip_and_counters(self, backend, tmp_path):
        cache = MemoryCache() if backend == "memory" else DiskCache(tmp_path)
        assert cache.fetch("00ab") is None
        cache.store("00ab", {"artifacts": {"x": [1, 2]}, "metrics": {"m": 3}})
        payload = cache.fetch("00ab")
        assert payload == {"artifacts": {"x": [1, 2]}, "metrics": {"m": 3}}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert len(cache) == 1
        assert cache.stats()["backend"] == backend

    def test_fetch_returns_fresh_copies(self, tmp_path):
        # Isolation against downstream mutation: two hits must never alias.
        for cache in (MemoryCache(), DiskCache(tmp_path)):
            cache.store("k", {"artifacts": {"x": [1]}, "metrics": {}})
            first = cache.fetch("k")["artifacts"]["x"]
            first.append(99)
            assert cache.fetch("k")["artifacts"]["x"] == [1]

    def test_disk_cache_shares_across_instances(self, tmp_path):
        DiskCache(tmp_path).store("k", {"artifacts": {}, "metrics": {"n": 1}})
        assert DiskCache(tmp_path).fetch("k") == {"artifacts": {}, "metrics": {"n": 1}}

    def test_backends_pickle_for_process_pools(self, tmp_path):
        memory = MemoryCache()
        memory.store("k", {"artifacts": {}, "metrics": {}})
        clone = pickle.loads(pickle.dumps(memory))
        assert clone.fetch("k") is not None  # snapshot rides along
        disk = DiskCache(tmp_path)
        disk.store("k", {"artifacts": {}, "metrics": {}})
        assert pickle.loads(pickle.dumps(disk)).fetch("k") is not None

    def test_make_cache_vocabulary(self, tmp_path):
        assert make_cache("off") is None
        assert isinstance(make_cache("memory"), MemoryCache)
        assert isinstance(make_cache("disk", tmp_path), DiskCache)
        with pytest.raises(CompilationError, match="--cache-dir"):
            make_cache("disk")
        with pytest.raises(CompilationError, match="unknown cache kind"):
            make_cache("redis")


class TestCachePassWiring:
    def test_wrapper_presents_inner_contract(self):
        cache = MemoryCache()
        wrapped = CachePass(TranslatePass(), cache)
        assert wrapped.name == "translate"
        assert wrapped.provides == ("pattern",)
        assert wrapped.requires == ()

    def test_non_cacheable_pass_rejected(self):
        with pytest.raises(CompilationError, match="not cacheable"):
            CachePass(LowerIRPass(), MemoryCache())

    def test_double_wrap_rejected(self):
        cache = MemoryCache()
        with pytest.raises(CompilationError, match="already cached"):
            CachePass(CachePass(TranslatePass(), cache), cache)

    def test_cached_passes_skips_ineligible(self):
        cache = MemoryCache()
        wrapped = cached_passes(default_passes(), cache)
        kinds = [type(stage).__name__ for stage in wrapped]
        assert kinds == [
            "CachePass", "CachePass", "CachePass", "LowerIRPass", "CachePass",
        ]
        rewrapped = cached_passes(wrapped, cache)
        assert [type(s).__name__ for s in rewrapped] == kinds

    def test_only_restricts_to_named_prefix(self):
        wrapped = cached_passes(
            default_passes(), MemoryCache(), only=("translate", "offline-map")
        )
        assert [type(stage).__name__ for stage in wrapped] == [
            "CachePass", "RewritePass", "CachePass", "LowerIRPass",
            "OnlineReshapePass",
        ]


class TestCachedCompilation:
    def test_off_cold_warm_identical(self):
        reference = Pipeline(SETTINGS).compile(CIRCUIT, seed=7)
        cache = MemoryCache()
        cached = Pipeline(SETTINGS, cache=cache)
        cold = cached.compile(CIRCUIT, seed=7)
        warm = cached.compile(CIRCUIT, seed=7)
        assert _metrics(reference) == _metrics(cold) == _metrics(warm)
        assert cold.metrics["cache_misses"] == 4
        assert warm.metrics["cache_hits"] == 4

    def test_hit_replays_pass_metrics(self):
        cache = MemoryCache()
        cached = Pipeline(SETTINGS, cache=cache)
        cold = cached.compile(CIRCUIT, seed=7)
        warm = cached.compile(CIRCUIT, seed=7)
        drop = ("cache_hits", "cache_misses")
        assert {k: v for k, v in cold.metrics.items() if k not in drop} == {
            k: v for k, v in warm.metrics.items() if k not in drop
        }
        assert "logical_layers_mapped" in warm.metrics
        assert "rsl_count" in warm.metrics

    def test_deterministic_prefix_shared_across_seeds(self):
        cache = MemoryCache()
        cached = Pipeline(SETTINGS, cache=cache)
        cached.compile(CIRCUIT, seed=0)
        second = cached.compile(CIRCUIT, seed=1)
        # translate + rewrite + offline-map hit (seedless keys);
        # online-reshape missed (its key folds in the derived stream seed).
        assert second.metrics["cache_hits"] == 3
        assert second.metrics["cache_misses"] == 1
        assert _metrics(second) == _metrics(Pipeline(SETTINGS).compile(CIRCUIT, seed=1))

    def test_distinct_settings_do_not_collide(self):
        cache = MemoryCache()
        loose = PipelineSettings(
            fusion_success_rate=0.9, rsl_size=24, virtual_size=2,
            max_rsl=10**5, occupancy_limit=0.5,
        )
        a = Pipeline(SETTINGS, cache=cache).compile(CIRCUIT, seed=0)
        b = Pipeline(loose, cache=cache).compile(CIRCUIT, seed=0)
        assert b.metrics["cache_misses"] == 4  # nothing reused across settings
        assert _metrics(b) == _metrics(Pipeline(loose).compile(CIRCUIT, seed=0))
        assert a.metrics["cache_misses"] == 4

    def test_baseline_chain_cached(self):
        reference = Pipeline(SETTINGS).compile_baseline(CIRCUIT, seed=3)
        cache = MemoryCache()
        cached = Pipeline(SETTINGS, cache=cache)
        cold = cached.compile_baseline(CIRCUIT, seed=3)
        warm = cached.compile_baseline(CIRCUIT, seed=3)
        for result in (cold, warm):
            assert (result.rsl_count, result.fusion_count, result.restarts) == (
                reference.rsl_count, reference.fusion_count, reference.restarts,
            )
        assert cold.metrics["cache_misses"] == 2  # translate + baseline
        assert warm.metrics["cache_hits"] == 2

    def test_with_cache_and_none(self):
        cache = MemoryCache()
        cached = Pipeline(SETTINGS).with_cache(cache)
        assert cached.cache is cache
        assert _metrics(cached.compile(CIRCUIT, seed=2)) == _metrics(
            Pipeline(SETTINGS).with_cache(None).compile(CIRCUIT, seed=2)
        )

    def test_with_cache_rebinds_and_unbinds(self):
        """Rebinding an already-cached pipeline must swap the store for
        real, and with_cache(None) must stop all lookups."""
        first, second = MemoryCache(), MemoryCache()
        cached = Pipeline(SETTINGS, cache=first)
        rebound = cached.with_cache(second)
        result = rebound.compile(CIRCUIT, seed=0)
        assert result.metrics["cache_misses"] == 4
        assert len(second) == 4 and second.lookups == 4
        assert len(first) == 0 and first.lookups == 0
        unbound = cached.with_cache(None)
        assert _metrics(unbound.compile(CIRCUIT, seed=0)) == _metrics(result)
        assert first.lookups == 0  # truly uncached, not silently reading first

    def test_compile_many_cache_kwarg(self):
        cache = MemoryCache()
        pipeline = Pipeline(SETTINGS)
        circuits = [CIRCUIT, CIRCUIT, CIRCUIT]
        batch = pipeline.compile_many(circuits, seeds=[0, 1, 2], cache=cache)
        assert [_metrics(r) for r in batch] == [
            _metrics(pipeline.compile(CIRCUIT, seed=s)) for s in (0, 1, 2)
        ]
        assert cache.hits > 0  # the seed axis shared the prefix

    def test_compile_many_conflicting_caches_rejected(self):
        pipeline = Pipeline(SETTINGS, cache=MemoryCache())
        with pytest.raises(CompilationError, match="conflicts"):
            pipeline.compile_many([CIRCUIT], cache=MemoryCache())

    def test_disk_cache_through_process_backend(self, tmp_path):
        cache = DiskCache(tmp_path)
        pipeline = Pipeline(SETTINGS, cache=cache)
        circuits = [CIRCUIT, CIRCUIT]
        cold = pipeline.compile_many(circuits, seeds=[0, 1], backend="process", max_workers=2)
        warm = pipeline.compile_many(circuits, seeds=[0, 1], backend="process", max_workers=2)
        serial = Pipeline(SETTINGS).compile_many(circuits, seeds=[0, 1])
        assert [_metrics(r) for r in serial] == [_metrics(r) for r in cold]
        assert [_metrics(r) for r in serial] == [_metrics(r) for r in warm]
        # Workers wrote through to the shared directory, so the warm pass
        # hit every stage of every job.
        assert all(r.metrics.get("cache_hits", 0) == 4 for r in warm)

    def test_sharded_backend_matches_serial_and_warms(self, tmp_path):
        cache = DiskCache(tmp_path)
        pipeline = Pipeline(SETTINGS, cache=cache)
        circuits = [make_benchmark("qaoa", 4, seed=s) for s in range(4)]
        seeds = [0, 1, 2, 3]
        serial = Pipeline(SETTINGS).compile_many(circuits, seeds=seeds)
        for shards in (1, 2, 3):
            batch = pipeline.compile_many(
                circuits, seeds=seeds, backend="sharded", shards=shards
            )
            assert [_metrics(r) for r in batch] == [_metrics(r) for r in serial]
        # Shard deltas merged back after the cold run, so later sharded runs
        # (any shard count) hit every stage of every job.
        warm = pipeline.compile_many(circuits, seeds=seeds, backend="sharded", shards=2)
        assert all(r.metrics.get("cache_hits", 0) == 4 for r in warm)
        # Scratch directories are cleaned up; only real entries remain.
        assert not list((tmp_path / ".shards").glob("*"))

    def test_shards_param_requires_sharded_backend(self):
        with pytest.raises(CompilationError, match="sharded"):
            Pipeline(SETTINGS).compile_many([CIRCUIT], backend="serial", shards=2)

    def test_sharded_backend_rejects_memory_cache(self):
        pipeline = Pipeline(SETTINGS, cache=MemoryCache())
        with pytest.raises(CompilationError, match="DiskCache"):
            pipeline.compile_many([CIRCUIT], backend="sharded", shards=2)

    def test_invalid_shard_counts_and_executor_conflict(self):
        from concurrent.futures import ThreadPoolExecutor

        with pytest.raises(CompilationError, match=">= 1"):
            Pipeline(SETTINGS).compile_many([CIRCUIT], backend="sharded", shards=0)
        with ThreadPoolExecutor(max_workers=1) as pool:
            # An explicit shard request must never be silently ignored.
            with pytest.raises(CompilationError, match="executor conflicts"):
                Pipeline(SETTINGS).compile_many([CIRCUIT], executor=pool, shards=2)


class TestEviction:
    """The max_bytes LRU budget: recency tracking, bounds, and accounting."""

    def _fill(self, cache, names, payload_bytes=200):
        for name in names:
            cache.store(name, {"artifacts": {"x": b"a" * payload_bytes}, "metrics": {}})

    def test_budget_bounds_total_bytes(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=2000)
        self._fill(cache, [f"k{i:02d}" for i in range(20)], payload_bytes=300)
        assert cache.total_bytes() <= 2000
        assert cache.evictions > 0
        assert len(cache) < 20

    def test_least_recently_used_goes_first(self, tmp_path):
        import os
        import time

        cache = DiskCache(tmp_path, max_bytes=10**6)
        self._fill(cache, ["old", "mid", "new"])
        # Pin distinct mtimes (filesystem granularity is not guaranteed),
        # then touch "old" via a hit so "mid" becomes the LRU entry.
        now = time.time()
        for name, age in (("old", 300), ("mid", 200), ("new", 100)):
            os.utime(cache._path(name), (now - age, now - age))
        assert cache.fetch("old") is not None
        cache.max_bytes = cache.total_bytes() - 1  # force one eviction
        cache.store("extra", {"artifacts": {}, "metrics": {}})
        assert cache.fetch("mid") is None  # evicted: least recently used
        assert cache.fetch("old") is not None  # the hit refreshed it
        assert cache.fetch("new") is not None

    def test_evicted_entry_reads_as_miss_and_recomputes(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1000)
        self._fill(cache, [f"k{i}" for i in range(4)], payload_bytes=400)
        assert cache.evictions > 0
        assert any(cache.fetch(f"k{i}") is None for i in range(4))
        # End-to-end correctness under a budget nothing can fit: every
        # artifact is skipped as oversized, every lookup misses, results
        # are still byte-identical.
        tight = DiskCache(tmp_path / "tight", max_bytes=1)
        pipeline = Pipeline(SETTINGS, cache=tight)
        first = pipeline.compile(CIRCUIT, seed=0)
        second = pipeline.compile(CIRCUIT, seed=0)
        assert _metrics(first) == _metrics(second)
        assert second.metrics.get("cache_hits", 0) == 0  # nothing survived
        assert len(tight) == 0  # oversized artifacts were never stored

    def test_oversized_entry_skipped_without_thrashing_warm_set(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1500)
        self._fill(cache, ["warm1", "warm2"], payload_bytes=300)
        survivors = len(cache)
        cache.store("huge", {"artifacts": {"x": b"a" * 5000}, "metrics": {}})
        assert cache.fetch("huge") is None  # never stored: reads as a miss
        assert len(cache) == survivors  # the warm set was not sacrificed
        assert cache.evictions == 0

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(CompilationError, match="positive"):
            DiskCache(tmp_path, max_bytes=0)
        # A budget without a disk store must error, never silently no-op.
        with pytest.raises(CompilationError, match="disk"):
            make_cache("memory", max_bytes=100)
        with pytest.raises(CompilationError, match="disk"):
            make_cache("off", max_bytes=100)
        assert make_cache("disk", tmp_path, max_bytes=100).max_bytes == 100

    def test_budget_survives_reopening_an_existing_store(self, tmp_path):
        # The running estimate seeds from disk, so a reopened store still
        # enforces its budget on the next write.
        unbounded = DiskCache(tmp_path)
        self._fill(unbounded, [f"k{i:02d}" for i in range(10)], payload_bytes=300)
        reopened = DiskCache(tmp_path, max_bytes=1500)
        reopened.store("one-more", {"artifacts": {"x": b"a" * 300}, "metrics": {}})
        assert reopened.total_bytes() <= 1500
        assert reopened.evictions > 0

    def test_overwrites_keep_the_size_estimate_flat(self, tmp_path, monkeypatch):
        # Re-storing one key replaces its file, so the estimate must stay
        # at ~one entry.  The old bug charged the full blob on every
        # overwrite: the estimate drifted upward until a store sitting
        # comfortably under budget paid a spurious full-directory eviction
        # scan on every subsequent write — so count the scans too.
        cache = DiskCache(tmp_path, max_bytes=10_000)
        scans = []
        real_evict = DiskCache._evict_to_budget
        monkeypatch.setattr(
            DiskCache,
            "_evict_to_budget",
            lambda self: scans.append(1) or real_evict(self),
        )
        for _round in range(40):  # 40 * 200B would blow the 10kB budget
            cache.store("same-key", {"artifacts": {"x": b"a" * 200}, "metrics": {}})
        assert len(cache) == 1
        assert cache._approx_bytes == cache.total_bytes()
        assert scans == []  # never over budget, so never a scan
        assert cache.evictions == 0

    def test_write_fsyncs_before_publishing(self, tmp_path, monkeypatch):
        # Durability contract: the temp file reaches stable storage before
        # os.replace makes it visible, so a crash cannot publish a
        # truncated entry.
        import os as os_module

        import repro.pipeline.cache as cache_module

        order = []
        real_fsync = os_module.fsync
        real_replace = os_module.replace
        monkeypatch.setattr(
            cache_module.os,
            "fsync",
            lambda fd: order.append("fsync") or real_fsync(fd),
        )
        monkeypatch.setattr(
            cache_module.os,
            "replace",
            lambda src, dst: order.append("replace") or real_replace(src, dst),
        )
        cache = DiskCache(tmp_path)
        cache.store("key", {"artifacts": {"x": b"payload"}, "metrics": {}})
        assert order == ["fsync", "replace"]
        assert cache.fetch("key") is not None


class TestShardExchange:
    """ShardDiskCache read-through/write-local views and merge_from."""

    def test_reads_fall_through_writes_stay_local(self, tmp_path):
        from repro.pipeline import ShardDiskCache

        base = DiskCache(tmp_path / "base")
        base.store("warm", {"artifacts": {"x": 1}, "metrics": {}})
        shard = ShardDiskCache(tmp_path / "delta", base=base.directory)
        assert shard.fetch("warm") == {"artifacts": {"x": 1}, "metrics": {}}
        shard.store("fresh", {"artifacts": {"y": 2}, "metrics": {}})
        assert len(base) == 1  # the base never sees shard writes...
        assert base.fetch("fresh") is None
        assert shard.fetch("fresh") is not None  # ...but the shard sees both

    def test_merge_from_folds_delta_and_removes_it(self, tmp_path):
        from repro.pipeline import ShardDiskCache

        base = DiskCache(tmp_path / "base")
        shard = ShardDiskCache(tmp_path / "delta", base=base.directory)
        shard.store("a", {"artifacts": {}, "metrics": {}})
        shard.store("b", {"artifacts": {}, "metrics": {}})
        assert base.merge_from(shard.directory) == 2
        assert base.fetch("a") is not None and base.fetch("b") is not None
        assert not shard.directory.exists()

    def test_merge_applies_the_budget(self, tmp_path):
        base = DiskCache(tmp_path / "base", max_bytes=500)
        delta = DiskCache(tmp_path / "delta")
        for index in range(10):
            delta.store(
                f"k{index}", {"artifacts": {"x": b"a" * 200}, "metrics": {}}
            )
        base.merge_from(delta.directory)
        assert base.total_bytes() <= 500

    def test_merge_skips_oversized_entries_without_thrashing(self, tmp_path):
        base = DiskCache(tmp_path / "base", max_bytes=2000)
        self._warm = ["w1", "w2", "w3"]
        for name in self._warm:
            base.store(name, {"artifacts": {"x": b"a" * 300}, "metrics": {}})
        survivors = len(base)
        delta = DiskCache(tmp_path / "delta")
        delta.store("huge", {"artifacts": {"x": b"a" * 5000}, "metrics": {}})
        merged = base.merge_from(delta.directory)
        assert merged == 0  # the oversized entry was dropped, not folded in
        assert base.fetch("huge") is None
        assert len(base) == survivors  # the warm set was not sacrificed
        assert not delta.directory.exists()

    def test_fallthrough_hit_refreshes_base_recency(self, tmp_path):
        import os

        from repro.pipeline import ShardDiskCache

        base = DiskCache(tmp_path / "base")
        base.store("warm", {"artifacts": {}, "metrics": {}})
        entry = base._path("warm")
        os.utime(entry, (1, 1))  # ancient mtime: first in line for eviction
        shard = ShardDiskCache(tmp_path / "delta", base=base.directory)
        assert shard.fetch("warm") is not None
        # The shard's use must count as recency on the coordinator's store.
        assert entry.stat().st_mtime > 1

    def test_shard_cache_pickles(self, tmp_path):
        from repro.pipeline import ShardDiskCache

        base = DiskCache(tmp_path / "base")
        base.store("k", {"artifacts": {}, "metrics": {}})
        shard = ShardDiskCache(tmp_path / "delta", base=base.directory)
        clone = pickle.loads(pickle.dumps(shard))
        assert clone.fetch("k") is not None  # read-through survives pickling


class TestMaintenance:
    """Startup hygiene for long-running stores: sweep + verify."""

    def test_verify_drops_corrupt_entries_and_counts(self, tmp_path):
        from repro import obs

        cache = DiskCache(tmp_path)
        cache.store("00good", {"artifacts": {"x": 1}, "metrics": {}})
        cache.store("11trunc", {"artifacts": {"y": 2}, "metrics": {}})
        cache.store("22alien", {"artifacts": {"z": 3}, "metrics": {}})
        # torn write: half a pickle; alien: valid pickle, wrong payload shape
        trunc = cache._path("11trunc")
        trunc.write_bytes(trunc.read_bytes()[:7])
        cache._path("22alien").write_bytes(pickle.dumps([1, 2, 3]))
        with obs.session() as tele:
            dropped = cache.verify()
        assert dropped == 2
        assert len(cache) == 1
        assert cache.fetch("00good") is not None
        assert cache.fetch("11trunc") is None  # a counted miss, not a crash
        assert tele.metrics.snapshot()["counters"]["cache.verify_dropped"] == 2
        kinds = [event["kind"] for event in tele.events.events]
        assert "cache_verified" in kinds

    def test_verify_clean_store_is_a_no_op(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store("00k", {"artifacts": {}, "metrics": {}})
        assert cache.verify() == 0
        assert cache.fetch("00k") is not None

    def test_verify_resyncs_budget_accounting(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=10_000)
        cache.store("00k", {"artifacts": {"x": list(range(50))}, "metrics": {}})
        cache._path("00k").write_bytes(b"garbage")
        cache.verify()
        assert cache._approx_bytes == cache.total_bytes() == 0

    def test_sweep_scratch_removes_stale_but_not_fresh(self, tmp_path):
        import os
        import time as _time

        from repro.pipeline.cache import STALE_SCRATCH_SECONDS

        cache = DiskCache(tmp_path)
        shards = tmp_path / ".shards"
        stale = shards / "batch-dead"
        fresh = shards / "batch-live"
        for scratch in (stale, fresh):
            scratch.mkdir(parents=True)
            (scratch / "shard-0").mkdir()
        old = _time.time() - STALE_SCRATCH_SECONDS - 60
        os.utime(stale, (old, old))
        cache.sweep_scratch()
        assert not stale.exists()  # crashed run's leftovers are gone
        assert fresh.exists()  # a live run's scratch is untouched

    def test_sweep_scratch_without_shards_dir(self, tmp_path):
        DiskCache(tmp_path).sweep_scratch()  # no .shards/: nothing to do
