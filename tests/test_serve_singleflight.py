"""Single-flight coalescing: one producer, many identical subscriber views.

The deterministic core of the coalescing contract (the server-level burst
test rides on top of this): N concurrent joiners of one key trigger
exactly one producer, every subscriber drains the identical item sequence,
and a subscriber arriving mid-stream replays from item zero — never a
partial tail.
"""

import asyncio
import threading
import time

import pytest

from repro.serve.singleflight import InflightStream, SingleFlight


class TestInflightStream:
    def test_full_replay_after_finish(self):
        stream = InflightStream("k")
        for item in ("a", "b", "c"):
            stream.publish(item)
        stream.finish()
        assert list(stream.subscribe()) == ["a", "b", "c"]
        # replay is repeatable: the buffer is never truncated
        assert list(stream.subscribe()) == ["a", "b", "c"]

    def test_publish_after_finish_is_an_error(self):
        stream = InflightStream("k")
        stream.finish()
        with pytest.raises(RuntimeError):
            stream.publish("late")

    def test_error_propagates_to_subscribers(self):
        stream = InflightStream("k")
        stream.publish("one")
        stream.finish(error=ValueError("boom"))
        items = []
        with pytest.raises(ValueError, match="boom"):
            for item in stream.subscribe():
                items.append(item)
        assert items == ["one"]  # everything before the failure arrives

    def test_subscribe_timeout(self):
        stream = InflightStream("k")
        with pytest.raises(TimeoutError):
            list(stream.subscribe(timeout=0.05))

    def test_mid_stream_subscriber_gets_full_replay(self):
        """A subscriber joining mid-production sees items from index 0."""
        stream = InflightStream("k")
        first_half = threading.Event()
        release = threading.Event()

        def produce():
            for i in range(5):
                stream.publish(i)
            first_half.set()
            release.wait(timeout=10)
            for i in range(5, 10):
                stream.publish(i)
            stream.finish()

        producer = threading.Thread(target=produce)
        producer.start()
        assert first_half.wait(timeout=10)
        # join *after* five items are already out
        collected = []
        subscriber_started = threading.Event()

        def subscribe():
            iterator = stream.subscribe(timeout=10)
            collected.append(next(iterator))  # replayed item 0
            subscriber_started.set()
            collected.extend(iterator)

        subscriber = threading.Thread(target=subscribe)
        subscriber.start()
        assert subscriber_started.wait(timeout=10)
        release.set()
        producer.join(timeout=10)
        subscriber.join(timeout=10)
        assert collected == list(range(10))

    def test_async_subscriber_woken_from_producer_thread(self):
        stream = InflightStream("k")

        async def consume():
            items = []
            async for item in stream.asubscribe():
                items.append(item)
            return items

        def produce():
            for i in range(20):
                stream.publish(i)
                time.sleep(0.001)
            stream.finish()

        producer = threading.Thread(target=produce)
        producer.start()
        items = asyncio.run(consume())
        producer.join(timeout=10)
        assert items == list(range(20))


class TestSingleFlight:
    def test_burst_runs_exactly_one_producer(self):
        """N threads join one key: one compile, N identical sequences."""
        flight = SingleFlight()
        produced = []
        gate = threading.Event()

        def start(stream):
            def produce():
                gate.wait(timeout=10)  # hold until every joiner is in
                produced.append(1)
                for i in range(8):
                    stream.publish(f"item-{i}")
                flight.finish(stream.key, stream)

            threading.Thread(target=produce).start()

        n = 12
        results: list[list] = [None] * n
        barrier = threading.Barrier(n)

        def join(slot):
            barrier.wait(timeout=10)
            stream, _leader = flight.join("key", start)
            results[slot] = list(stream.subscribe(timeout=10))

        threads = [threading.Thread(target=join, args=(i,)) for i in range(n)]
        for thread in threads:
            thread.start()
        # release the producer only once every joiner is in the flight —
        # join() returns before subscribe() blocks, so the counters are
        # the ground truth for "everyone coalesced onto this stream"
        for _ in range(200):
            stats = flight.stats()
            if stats["started"] + stats["coalesced"] >= n:
                break
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert sum(produced) == 1  # exactly one compile executed
        expected = [f"item-{i}" for i in range(8)]
        assert all(result == expected for result in results)
        stats = flight.stats()
        assert stats["started"] == 1
        assert stats["coalesced"] == n - 1
        assert stats["inflight"] == 0

    def test_key_retires_after_finish(self):
        flight = SingleFlight()
        streams = []

        def start(stream):
            streams.append(stream)
            flight.finish(stream.key, stream)

        first, leader_a = flight.join("k", start)
        second, leader_b = flight.join("k", start)
        assert leader_a and leader_b  # both led: the key retired in between
        assert first is not second
        assert flight.stats()["started"] == 2

    def test_retire_before_terminal_prevents_stale_coalesce(self):
        """A join after retire() starts fresh, even pre-finish().

        The server retires a key just before publishing the terminal frame:
        a client that sees the terminal and instantly resubmits must never
        coalesce onto the response it just consumed.
        """
        flight = SingleFlight()
        stream, _leader = flight.join("k", lambda s: None)
        stream.publish("body")
        flight.retire("k", stream)
        fresh, leader = flight.join("k", lambda s: None)
        assert leader and fresh is not stream
        stream.publish("terminal")  # the retired stream is still writable
        flight.finish("k", stream)  # idempotent: the fresh flight survives
        assert flight.stats()["inflight"] == 1
        assert list(stream.subscribe(timeout=1)) == ["body", "terminal"]
        flight.finish("k", fresh)
        assert flight.stats()["inflight"] == 0

    def test_failed_start_retires_key_and_raises(self):
        flight = SingleFlight()

        def explode(stream):
            raise RuntimeError("pool is gone")

        with pytest.raises(RuntimeError, match="pool is gone"):
            flight.join("k", explode)
        assert flight.stats()["inflight"] == 0
        # the key is usable again
        ok, leader = flight.join("k", lambda s: flight.finish("k", s))
        assert leader
