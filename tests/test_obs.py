"""The telemetry layer: tracing, metrics, events, and the out-of-band pact.

Pins the tentpole guarantees:

* collection primitives work standalone (span nesting and parent links,
  counter/gauge/histogram registry semantics, per-event-flush logs);
* trace files round-trip (JSONL and Chrome ``trace_event``) and summarize
  into per-pass / per-shard / cache tables;
* the pipeline's pass spans carry the *same* clock reads as
  ``PassContext.timings``, so traces reconcile with timings exactly;
* telemetry provenance survives every runner boundary: session counters
  equal the record-derived sums for serial, thread, process, and sharded
  backends alike, and each compile record brings its spans home;
* **determinism**: canonical records are byte-identical with a telemetry
  session active or not, on the serial and the sharded runner both.
"""

import json
import pickle

import pytest

from repro import obs
from repro.circuits import make_benchmark
from repro.errors import ReproError
from repro.experiments import (
    CompileJob,
    Experiment,
    ShardOutcome,
    ShardTask,
    canonical_json,
    make_runner,
    run_shard,
)
from repro.obs.summarize import (
    load_events,
    load_trace,
    render_summary,
    summarize_trace,
)
from repro.pipeline import DiskCache, MemoryCache, Pipeline, PipelineSettings
from repro.pipeline.context import PassTiming, aggregate_timings, aggregate_timings_split

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
)
CIRCUIT = make_benchmark("qaoa", 4, seed=0)


class TeleToy(Experiment):
    """Compile-only toy sweep with a shared deterministic prefix.

    Two online seeds per circuit reuse one translate/offline-map prefix, so
    cached runs produce hits — the provenance the telemetry tests track.
    """

    name = "tele-toy"
    description = "telemetry provenance probe"

    def build_jobs(self, scale, seed):
        return [
            CompileJob(
                key=f"compile/{family}/{online}",
                meta={"benchmark": family},
                family=family,
                num_qubits=4,
                settings=SETTINGS,
                seed=online,
                circuit_seed=seed,
            )
            for family in ("qaoa", "qft")
            for online in (seed, seed + 1)
        ]

    def render(self, records):
        return f"{len(records)} records"


REFERENCE = TeleToy().run("bench", seed=3)


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_parent_links(self):
        tracer = obs.Tracer()
        with tracer.span("outer", kind="root"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order: inner closes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert outer["attrs"] == {"kind": "root"}
        assert inner["dur"] >= 0.0 and inner["cpu"] >= 0.0
        assert outer["dur"] >= inner["dur"]

    def test_span_ids_unique_across_tracers(self):
        ids = set()
        for _ in range(3):
            tracer = obs.Tracer()
            with tracer.span("a"):
                pass
            ids.add(tracer.spans[0]["id"])
        assert len(ids) == 3

    def test_exception_unwinds_stack(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        with tracer.span("after"):
            pass
        assert tracer.spans[-1]["parent"] is None  # stack fully unwound

    def test_adopt_stamps_root_attrs_only(self):
        child = obs.Tracer()
        with child.span("compile"):
            with child.span("pass:translate"):
                pass
        parent = obs.Tracer()
        adopted = parent.adopt(child.spans, root_attrs={"job": "j1"})
        assert adopted == 2
        by_name = {record["name"]: record for record in parent.spans}
        assert by_name["compile"]["attrs"]["job"] == "j1"
        assert "job" not in by_name["pass:translate"]["attrs"]
        # Adoption copies the stamped roots; the child's records are untouched.
        assert all("job" not in record["attrs"] for record in child.spans)

    def test_add_span_records_given_interval(self):
        tracer = obs.Tracer()
        record = tracer.add_span("run:x", ts=123.0, dur=4.5, attrs={"jobs": 7})
        assert record in tracer.spans
        assert record["ts"] == 123.0 and record["dur"] == 4.5
        assert record["attrs"] == {"jobs": 7}


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = obs.MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.set_gauge("depth", 3)
        registry.observe("sizes", 10.0)
        registry.observe("sizes", 2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 5}
        assert snapshot["gauges"] == {"depth": 3}
        assert snapshot["histograms"]["sizes"] == {
            "count": 2,
            "sum": 12.0,
            "min": 2.0,
            "max": 10.0,
        }

    def test_merge_adds_counters_and_combines_histograms(self):
        ours = obs.MetricsRegistry()
        ours.inc("hits", 2)
        ours.observe("sizes", 5.0)
        theirs = obs.MetricsRegistry()
        theirs.inc("hits", 3)
        theirs.inc("misses")
        theirs.observe("sizes", 1.0)
        ours.merge(theirs.snapshot())
        snapshot = ours.snapshot()
        assert snapshot["counters"] == {"hits": 5, "misses": 1}
        assert snapshot["histograms"]["sizes"] == {
            "count": 2,
            "sum": 6.0,
            "min": 1.0,
            "max": 5.0,
        }

    def test_snapshot_is_picklable(self):
        registry = obs.MetricsRegistry()
        registry.inc("n")
        registry.observe("h", 1.0)
        clone = pickle.loads(pickle.dumps(registry.snapshot()))
        assert clone["counters"] == {"n": 1}


class TestEvents:
    def test_buffer_and_per_event_flush(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = obs.EventLog(str(path))
        log.emit("job_started", job="a")
        # Flushed before close: the file is tail-able mid-run.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "job_started"
        log.emit("job_finished", job="a")
        log.close()
        assert len(log.events) == 2
        assert len(load_events(path)) == 2

    def test_reemit_preserves_original_timestamp(self):
        log = obs.EventLog()
        event = log.emit("cache_hit", _ts=42.0, stage="translate")
        assert event["ts"] == 42.0


# ---------------------------------------------------------------------------
# Sessions and ambient helpers
# ---------------------------------------------------------------------------


class TestSession:
    def test_helpers_are_noops_without_session(self):
        assert obs.active() is None
        obs.count("x")
        obs.gauge("y", 1)
        obs.observe("z", 2.0)
        obs.event("nothing")
        assert obs.span("nothing") is obs.NULL_SPAN

    def test_session_scopes_collection(self):
        with obs.session() as tele:
            assert obs.active() is tele
            obs.count("c", 2)
            obs.event("e")
            with obs.span("s"):
                pass
            assert tele.metrics.snapshot()["counters"] == {"c": 2}
            assert len(tele.events) == 1
            assert [record["name"] for record in tele.tracer.spans] == ["s"]
        assert obs.active() is None

    def test_sessions_nest(self):
        with obs.session() as outer:
            with obs.session() as inner:
                obs.count("c")
                assert obs.active() is inner
            assert obs.active() is outer
            assert outer.metrics.snapshot()["counters"] == {}
            assert inner.metrics.snapshot()["counters"] == {"c": 1}


# ---------------------------------------------------------------------------
# Trace files
# ---------------------------------------------------------------------------


class TestTraceFiles:
    def _session_with_work(self, tmp_path):
        with obs.session() as tele:
            result = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
            tele.adopt_compile(result, circuit=CIRCUIT.name)
            path = tmp_path / "trace.jsonl"
            tele.write_trace(str(path))
        return path

    def test_jsonl_roundtrip(self, tmp_path):
        path = self._session_with_work(tmp_path)
        trace = load_trace(path)
        assert trace["meta"]["schema"] == obs.TRACE_SCHEMA_VERSION
        names = [record["name"] for record in trace["spans"]]
        assert "compile" in names and "pass:translate" in names
        assert "histograms" in trace["metrics"]

    def test_chrome_export(self, tmp_path):
        with obs.session() as tele:
            result = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
            tele.adopt_compile(result)
            path = tmp_path / "trace.json"
            tele.write_trace(str(path), fmt="chrome")
        obj = json.loads(path.read_text())
        assert obj["traceEvents"]
        first = min(event["ts"] for event in obj["traceEvents"])
        assert first == 0.0  # rebased to the earliest span
        assert all(event["ph"] == "X" for event in obj["traceEvents"])

    def test_unknown_format_rejected(self, tmp_path):
        with obs.session() as tele:
            with pytest.raises(ValueError, match="jsonl, chrome"):
                tele.write_trace(str(tmp_path / "t"), fmt="pprof")

    def test_empty_trace_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_trace(path)

    def test_summarize_and_render(self, tmp_path):
        path = self._session_with_work(tmp_path)
        summary = summarize_trace(load_trace(path))
        assert summary["compiles"] == 1
        assert summary["passes"]["translate"]["calls"] == 1
        assert summary["passes"]["translate"]["wall_seconds"] >= 0.0
        text = render_summary(summary)
        assert "per-pass" in text and "translate" in text and "cache" in text


# ---------------------------------------------------------------------------
# Pipeline integration
# ---------------------------------------------------------------------------


class TestPipelineTelemetry:
    def test_untraced_compile_has_no_spans_but_cpu_timings(self):
        result = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        assert result.spans == []
        assert all(t.cpu_seconds is not None for t in result.pass_timings)

    def test_traced_spans_share_timing_clock_reads(self):
        with obs.session():
            result = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        by_name = {record["name"]: record for record in result.spans}
        roots = [r for r in result.spans if r["parent"] is None]
        assert [r["name"] for r in roots] == ["compile"]
        assert roots[0]["attrs"] == {"circuit": CIRCUIT.name, "qubits": 4}
        for timing in result.pass_timings:
            span = by_name[f"pass:{timing.name}"]
            # Identical floats, not approximations: the pipeline feeds
            # record_timing from the span's own clock reads.
            assert span["dur"] == timing.seconds
            assert span["cpu"] == timing.cpu_seconds
            assert span["parent"] == roots[0]["id"]

    def test_results_identical_with_and_without_session(self):
        plain = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        with obs.session():
            traced = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        assert plain.rsl_count == traced.rsl_count
        assert plain.fusion_count == traced.fusion_count
        assert plain.logical_layers == traced.logical_layers
        assert plain.pl_ratio == traced.pl_ratio
        assert plain.metrics == traced.metrics

    def test_bfs_wavefront_histogram_collected(self):
        with obs.session() as tele:
            Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
            histograms = tele.metrics.snapshot()["histograms"]
        assert histograms["online.bfs_nodes"]["count"] > 0
        assert histograms["online.bfs_nodes"]["min"] >= 1


class TestTimingSplit:
    def test_aggregate_timings_split(self):
        timings = [
            PassTiming("a", 1.0, 0.5),
            PassTiming("a", 2.0, 1.5),
            PassTiming("b", 3.0, None),  # pre-split producer
        ]
        split = aggregate_timings_split(timings)
        assert split["a"] == {"wall_seconds": 3.0, "cpu_seconds": 2.0}
        assert split["b"] == {"wall_seconds": 3.0, "cpu_seconds": 0.0}
        # The wall column still matches the legacy aggregate exactly.
        assert {name: row["wall_seconds"] for name, row in split.items()} == (
            aggregate_timings(timings)
        )

    def test_result_exposes_split(self):
        result = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        split = result.timings_split_by_pass
        for name, seconds in result.timings_by_pass.items():
            assert split[name]["wall_seconds"] == seconds
            assert 0.0 <= split[name]["cpu_seconds"]


# ---------------------------------------------------------------------------
# Runner provenance: the cross-boundary contract
# ---------------------------------------------------------------------------


def _runner_for(name, tmp_path):
    if name == "sharded":
        return make_runner("sharded", cache=DiskCache(tmp_path / "cache"), shards=2)
    if name == "serial":
        return make_runner("serial", cache=MemoryCache())
    return make_runner(name, max_workers=2, cache=DiskCache(tmp_path / "cache"))


class TestRunnerProvenance:
    @pytest.mark.parametrize("name", ["serial", "thread", "process", "sharded"])
    def test_counters_reconcile_and_spans_arrive(self, name, tmp_path):
        with obs.session() as tele:
            result = TeleToy().run("bench", seed=3, runner=_runner_for(name, tmp_path))
            counters = tele.metrics.snapshot()["counters"]
            spans = list(tele.tracer.spans)
            events = list(tele.events.events)
        # Records are byte-identical to the no-telemetry serial reference.
        assert canonical_json(result.records) == canonical_json(REFERENCE.records)
        # Session counters == record-derived sums: one source of truth,
        # whatever process the lookups actually happened in.
        hits = sum(r.metrics.get("cache_hits", 0) for r in result.records)
        misses = sum(r.metrics.get("cache_misses", 0) for r in result.records)
        assert counters.get("cache.hits", 0) == hits
        assert counters.get("cache.misses", 0) == misses
        assert misses > 0  # a cold cache actually exercised the channel
        # Every compile job's spans crossed the boundary and were adopted.
        compile_roots = [s for s in spans if s["name"] == "compile"]
        assert len(compile_roots) == len(result.records)
        assert all(s["attrs"].get("job") for s in compile_roots)
        # Run lifecycle: one run span (parent side) and start/finish events.
        assert [s["name"] for s in spans if s["name"].startswith("run:")].count(
            "run:tele-toy"
        ) >= 1
        kinds = {event["kind"] for event in events}
        assert {"run_started", "run_finished", "job_started", "job_finished"} <= kinds
        if name == "sharded":
            assert {"shard_started", "shard_merged"} <= kinds
            assert any(s["name"].startswith("shard:") for s in spans)

    @pytest.mark.parametrize("name", ["serial", "sharded"])
    def test_golden_records_identical_with_session_on_or_off(self, name, tmp_path):
        runner_off = _runner_for(name, tmp_path / "off")
        plain = TeleToy().run("bench", seed=3, runner=runner_off)
        with obs.session():
            traced = TeleToy().run(
                "bench", seed=3, runner=_runner_for(name, tmp_path / "on")
            )
        assert canonical_json(plain.records) == canonical_json(traced.records)
        # Flat rows (the CSV surface, m_ columns included) match too: spans
        # never leak into exports.
        assert [r.flat() for r in plain.records] and all(
            not any(key.startswith("m_spans") or key == "spans" for key in row)
            for row in (r.flat() for r in traced.records)
        )

    def test_warm_cache_counts_hits_across_shards(self, tmp_path):
        cache = DiskCache(tmp_path / "store")
        TeleToy().run("bench", seed=3, runner=make_runner("sharded", cache=cache, shards=2))
        cold = cache.stats()
        with obs.session() as tele:
            warm_runner = make_runner("sharded", cache=cache, shards=3)
            result = TeleToy().run("bench", seed=3, runner=warm_runner)
            counters = tele.metrics.snapshot()["counters"]
        # Satellite fix: shard subprocess counters fold into the runner's
        # cache object, so session totals cover the whole run.
        assert cache.stats()["hits"] > cold["hits"]
        hits = sum(r.metrics.get("cache_hits", 0) for r in result.records)
        assert cache.stats()["hits"] - cold["hits"] == hits
        assert counters.get("cache.hits", 0) == hits

    def test_run_shard_outcome_carries_telemetry(self):
        jobs = tuple(enumerate(TeleToy().build_jobs("bench", 3)))
        task = ShardTask(
            shard_index=0,
            experiment="tele-toy",
            scale="bench",
            seed=3,
            jobs=jobs,
            telemetry=True,
        )
        outcome = run_shard(pickle.loads(pickle.dumps(task)))
        assert isinstance(outcome, ShardOutcome)
        outcome = pickle.loads(pickle.dumps(outcome))  # the return trip
        assert outcome.metrics is not None
        assert outcome.metrics["histograms"]["online.bfs_nodes"]["count"] > 0
        assert any(event["kind"] == "job_finished" for event in outcome.events)
        assert all(record.spans for _index, record in outcome.pairs)

    def test_trace_reconciles_with_record_timings(self, tmp_path):
        with obs.session() as tele:
            result = TeleToy().run("bench", seed=3)
            path = tmp_path / "trace.jsonl"
            tele.write_trace(str(path))
        summary = summarize_trace(load_trace(path))
        for name, row in summary["passes"].items():
            recorded = sum(r.timings.get(name, 0.0) for r in result.records)
            assert row["wall_seconds"] == pytest.approx(recorded)
        assert summary["compiles"] == len(result.records)
