"""Warm worker pools and chunked dispatch: the pool registry contract.

Pins the PR's tentpole guarantees at toy scale:

* the registry hands back *the same* executor for the same ``(kind,
  workers)`` key — pool startup is paid once per process, not per run;
* ``shutdown_pools()`` is idempotent and the registry re-warms after it;
* records are byte-identical across two consecutive runs on one warm
  pool (no state leaks between sweeps) and across any chunk size;
* a poisoned job fails fast — queued chunks are cancelled, the pool is
  retired from the registry — while an abandoned consumer
  (``GeneratorExit``) leaves the shared pool warm;
* ``make_runner``/``compile_many`` validate worker, shard, and chunk
  counts up front instead of silently reinterpreting them.
"""

import time

import pytest

from repro.errors import ReproError
from repro.experiments import (
    CompileJob,
    Experiment,
    FnJob,
    SerialRunner,
    canonical_json,
    make_runner,
    shutdown_pools,
)
from repro.experiments.common import stream_for
from repro.experiments.pool import (
    chunk_size_for,
    chunked,
    discard_pool,
    get_pool,
    resolve_workers,
)
from repro.pipeline import Pipeline, PipelineSettings


def _point(x: int, seed: int) -> dict:
    rng = stream_for("pool-toy", seed).child(x).generator
    return {"x": x, "value": float(rng.integers(0, 1000))}


def _boom() -> dict:
    raise ValueError("kaboom")


def _slow_marker(path: str, x: int) -> dict:
    time.sleep(0.05)
    with open(path, "a") as handle:
        handle.write(f"{x}\n")
    return {"x": x}


class PoolToy(Experiment):
    """Mixed fn/compile toy sweep, same shape as the streaming toy."""

    name = "pool-toy"
    description = "warm pool contract probe"

    def build_jobs(self, scale, seed):
        jobs = [
            FnJob(key=f"fn/{x}", fn=_point, kwargs={"x": x, "seed": seed})
            for x in range(6)
        ]
        settings = PipelineSettings(
            fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
        )
        jobs.append(
            CompileJob(
                key="compile/qaoa4",
                meta={"benchmark": "QAOA-4", "compiler": "oneperc"},
                family="qaoa",
                num_qubits=4,
                settings=settings,
                seed=seed,
            )
        )
        return jobs

    def render(self, records):
        return f"{len(records)} records"


REFERENCE = PoolToy().run("bench", seed=5, runner=SerialRunner())


class TestRegistry:
    def test_same_key_same_pool(self):
        assert get_pool("thread", 2) is get_pool("thread", 2)
        assert get_pool("process", 2) is get_pool("process", 2)

    def test_distinct_keys_distinct_pools(self):
        assert get_pool("thread", 2) is not get_pool("thread", 3)
        assert get_pool("thread", 2) is not get_pool("process", 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="thread, process"):
            get_pool("fiber", 2)

    def test_shutdown_is_idempotent_and_registry_rewarms(self):
        get_pool("thread", 2)
        get_pool("process", 2)
        assert shutdown_pools() >= 2
        assert shutdown_pools() == 0  # nothing left: a clean no-op
        fresh = get_pool("thread", 2)  # the registry simply re-warms
        assert fresh.submit(int, "7").result() == 7

    def test_discard_pool_retires_and_tolerates_repeats(self):
        pool = get_pool("thread", 2)
        discard_pool(pool)
        assert get_pool("thread", 2) is not pool
        discard_pool(pool)  # already gone from the registry: still safe

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1  # all cores, whatever they number
        with pytest.raises(ReproError, match=">= 1"):
            resolve_workers(0)


class TestChunking:
    def test_auto_size_targets_four_chunks_per_worker(self):
        assert chunk_size_for(80, 2) == 10  # 80 / (4*2)
        assert chunk_size_for(3, 8) == 1  # never below one job per chunk

    def test_override_wins_and_is_validated(self):
        assert chunk_size_for(80, 2, override=7) == 7
        with pytest.raises(ReproError, match=">= 1"):
            chunk_size_for(80, 2, override=0)

    def test_chunks_are_contiguous_and_total(self):
        items = list(range(10))
        chunks = list(chunked(items, 3))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]


class TestWarmPoolDeterminism:
    @pytest.mark.parametrize(
        "runner_name,kwargs",
        [
            ("thread", {"max_workers": 2}),
            ("process", {"max_workers": 2}),
            ("sharded", {"shards": 2}),
        ],
    )
    def test_two_consecutive_runs_on_one_warm_pool(self, runner_name, kwargs):
        # The second run reuses the pool the first one warmed; a pool that
        # leaked state between sweeps would show up as a byte diff here.
        first = PoolToy().run(
            "bench", seed=5, runner=make_runner(runner_name, **kwargs)
        )
        second = PoolToy().run(
            "bench", seed=5, runner=make_runner(runner_name, **kwargs)
        )
        reference = canonical_json(REFERENCE.records)
        assert canonical_json(first.records) == reference
        assert canonical_json(second.records) == reference

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, None])
    def test_records_identical_for_any_chunk_size(self, chunk_size):
        runner = make_runner("thread", max_workers=2, chunk_size=chunk_size)
        result = PoolToy().run("bench", seed=5, runner=runner)
        assert canonical_json(result.records) == canonical_json(REFERENCE.records)


class TestFailFast:
    def test_poisoned_job_cancels_queued_chunks_and_retires_pool(self, tmp_path):
        marker = tmp_path / "ran.txt"
        jobs = [FnJob(key="boom/0", fn=_boom, kwargs={})] + [
            FnJob(
                key=f"slow/{x}",
                fn=_slow_marker,
                kwargs={"path": str(marker), "x": x},
            )
            for x in range(1, 12)
        ]
        runner = make_runner("thread", max_workers=1, chunk_size=1)
        healthy = get_pool("thread", 1)
        with pytest.raises(ReproError, match="boom/0"):
            list(
                runner.iter_jobs(jobs, experiment="pool-toy", scale="bench", seed=0)
            )
        # The failure cancelled the queue instead of draining it: with one
        # worker, at most the chunk already picked up when the error
        # surfaced can still run.
        ran = len(marker.read_text().splitlines()) if marker.exists() else 0
        assert ran < len(jobs) - 1
        # ...and the poisoned pool left the registry; the next run warms a
        # fresh one.
        assert get_pool("thread", 1) is not healthy

    def test_poisoned_shard_retires_the_process_pool(self):
        jobs = [FnJob(key="boom/1", fn=_boom, kwargs={})]
        runner = make_runner("sharded", shards=1)
        before = get_pool("process", 1)
        with pytest.raises(ReproError, match="boom/1"):
            runner.run_jobs(jobs, experiment="pool-toy", scale="bench", seed=0)
        assert get_pool("process", 1) is not before

    def test_abandoned_consumer_keeps_the_pool_warm(self):
        # Closing the generator mid-stream is not an error: in-flight work
        # is cancelled but the shared pool stays registered and healthy.
        jobs = PoolToy().build_jobs("bench", 5)
        runner = make_runner("thread", max_workers=2)
        pool = get_pool("thread", 2)
        stream = runner.iter_jobs(jobs, experiment="pool-toy", scale="bench", seed=5)
        next(stream)
        stream.close()
        assert get_pool("thread", 2) is pool
        assert pool.submit(int, "7").result() == 7


class TestValidation:
    def test_make_runner_rejects_nonpositive_counts(self):
        with pytest.raises(ReproError, match=">= 1"):
            make_runner("process", max_workers=0)
        with pytest.raises(ReproError, match=">= 1"):
            make_runner("sharded", max_workers=0)
        with pytest.raises(ReproError, match=">= 1"):
            make_runner("sharded", shards=0)
        with pytest.raises(ReproError, match=">= 1"):
            make_runner("thread", chunk_size=0)

    def test_chunk_size_only_for_pool_runners(self):
        assert make_runner("thread", chunk_size=3).chunk_size == 3
        assert make_runner("process", chunk_size=3).chunk_size == 3
        for name in ("serial", "sharded"):
            with pytest.raises(ReproError, match="thread, process"):
                make_runner(name, chunk_size=3)


SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
)


class TestCompileManyChunks:
    def _circuits(self):
        from repro.circuits.benchmarks import make_benchmark

        return [make_benchmark("qaoa", 4, seed=s) for s in range(3)]

    def test_pool_backends_match_serial_for_any_chunk_size(self):
        pipeline = Pipeline(SETTINGS)
        circuits = self._circuits()
        reference = pipeline.compile_many(circuits, seeds=0)
        for backend in ("thread", "process"):
            for chunk_size in (1, 2, None):
                batch = pipeline.compile_many(
                    circuits,
                    seeds=0,
                    backend=backend,
                    max_workers=2,
                    chunk_size=chunk_size,
                )
                assert [r.rsl_count for r in batch] == [
                    r.rsl_count for r in reference
                ]
                assert [r.fusion_count for r in batch] == [
                    r.fusion_count for r in reference
                ]

    def test_chunk_size_usage_errors(self):
        from repro.errors import CompilationError

        pipeline = Pipeline(SETTINGS)
        circuits = self._circuits()
        with pytest.raises(CompilationError, match=">= 1"):
            pipeline.compile_many(circuits, backend="thread", chunk_size=0)
        with pytest.raises(CompilationError, match="pool backends"):
            pipeline.compile_many(circuits, backend="serial", chunk_size=2)
        with pytest.raises(CompilationError, match="pool backends"):
            pipeline.compile_many(
                circuits, backend="sharded", shards=2, chunk_size=2
            )
        pool = get_pool("thread", 2)
        with pytest.raises(CompilationError, match="executor conflicts"):
            pipeline.compile_many(circuits, executor=pool, chunk_size=2)
