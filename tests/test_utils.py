"""Tests for RNG plumbing, grid geometry and table rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.gridgeom import (
    grid_neighbors4,
    grid_neighbors8,
    in_bounds,
    iter_grid,
    manhattan,
)
from repro.utils.rng import DEFAULT_SEED, RandomStream, derive_seed, ensure_rng
from repro.utils.tables import TextTable, format_cell


class TestRng:
    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_from_int_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_ensure_rng_default_seed(self):
        assert ensure_rng(None).random() == ensure_rng(DEFAULT_SEED).random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_distinct_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_distinct_bases(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_child_streams_independent(self):
        stream = RandomStream(7)
        a = stream.child("x").generator.random(8)
        b = stream.child("y").generator.random(8)
        assert not np.allclose(a, b)

    def test_child_streams_reproducible(self):
        a = RandomStream(7).child("x").generator.random(4)
        b = RandomStream(7).child("x").generator.random(4)
        assert np.allclose(a, b)

    def test_spawn_count_and_distinctness(self):
        streams = RandomStream(3).spawn(4, "replica")
        assert len(streams) == 4
        seeds = {s.seed for s in streams}
        assert len(seeds) == 4


class TestGridGeometry:
    def test_in_bounds_square(self):
        assert in_bounds((0, 0), 3)
        assert in_bounds((2, 2), 3)
        assert not in_bounds((3, 0), 3)
        assert not in_bounds((0, -1), 3)

    def test_in_bounds_rectangle(self):
        assert in_bounds((4, 1), 5, 2)
        assert not in_bounds((4, 2), 5, 2)

    def test_neighbors4_center(self):
        assert sorted(grid_neighbors4((1, 1), 3)) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_neighbors4_corner(self):
        assert sorted(grid_neighbors4((0, 0), 3)) == [(0, 1), (1, 0)]

    def test_neighbors8_center_count(self):
        assert len(list(grid_neighbors8((1, 1), 3))) == 8

    def test_neighbors8_corner_count(self):
        assert len(list(grid_neighbors8((0, 0), 3))) == 3

    def test_manhattan(self):
        assert manhattan((0, 0), (2, 3)) == 5
        assert manhattan((1, 1), (1, 1)) == 0

    def test_iter_grid_row_major(self):
        assert list(iter_grid(2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @given(st.integers(1, 8), st.integers(0, 7), st.integers(0, 7))
    def test_neighbors_are_distance_one(self, size, row, col):
        if not in_bounds((row, col), size):
            return
        for neighbor in grid_neighbors4((row, col), size):
            assert manhattan((row, col), neighbor) == 1
            assert in_bounds(neighbor, size)


class TestTables:
    def test_format_int_thousands(self):
        assert format_cell(1234567) == "1,234,567"

    def test_format_float_sig_figs(self):
        assert format_cell(0.123456) == "0.123"

    def test_format_nan_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_add_row_validates_width(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_all_cells(self):
        table = TextTable(["name", "count"], title="T")
        table.add_row("x", 10)
        table.add_row("longer-name", 2000)
        rendered = table.render()
        assert "T" in rendered
        assert "longer-name" in rendered
        assert "2,000" in rendered

    def test_markdown_render_has_pipes(self):
        table = TextTable(["a"])
        table.add_row(1)
        assert table.render(markdown=True).count("|") >= 4

    def test_extend(self):
        table = TextTable(["a", "b"])
        table.extend([(1, 2), (3, 4)])
        assert len(table.rows) == 2


class TestCsvRendering:
    def test_basic_csv(self):
        table = TextTable(["a", "b"])
        table.add_row(1, "x")
        assert table.render_csv() == "a,b\n1,x"

    def test_csv_escapes_commas_and_quotes(self):
        table = TextTable(["name"])
        table.add_row('he said "1,5"')
        assert table.render_csv().splitlines()[1] == '"he said ""1,5"""'

    def test_csv_row_count(self):
        table = TextTable(["x"])
        table.extend([(i,) for i in range(5)])
        assert len(table.render_csv().splitlines()) == 6
