"""The pass ecosystem: rewrite, device validators, and the front door."""

import dataclasses
import json

import pytest

from repro.circuits.benchmarks import make_benchmark
from repro.circuits.jcz import to_jcz
from repro.errors import ReproError
from repro.mbqc.translate import translate_circuit
from repro.passes import (
    CIRCUIT_IR_FORMAT,
    PASS_REGISTRY,
    ConnectivityValidatorPass,
    Diagnostic,
    PatternSourcePass,
    RewritePass,
    RsgConstraintValidatorPass,
    StripBudgetValidatorPass,
    UnknownPassError,
    ValidationError,
    circuit_from_ir,
    circuit_to_ir,
    compile_program,
    get_pass,
    make_pass_list,
    pass_names,
    pattern_fingerprint,
    program_circuit,
)
from repro.passes.validators import DIAGNOSTICS_SCHEMA_VERSION
from repro.pipeline import MemoryCache, Pipeline, PipelineSettings

SETTINGS = PipelineSettings(
    fusion_success_rate=0.9, resource_state_size=4, node_side=12, max_rsl=10**5
)

CIRCUIT = make_benchmark("qaoa", 4, seed=0)
#: The unsimplified {J, CZ} lowering: the shape where the rewrite pass has
#: real zero-angle pairs to contract.
UNSIMPLIFIED = to_jcz(CIRCUIT, simplify=False)


def _deterministic(result):
    return (result.rsl_count, result.fusion_count, result.logical_layers)


class TestRewritePass:
    def test_contracts_unsimplified_lowering(self):
        pattern = translate_circuit(UNSIMPLIFIED)
        before = pattern.node_count
        ctx = SETTINGS.context_for(UNSIMPLIFIED)
        ctx.put("pattern", pattern)
        RewritePass().run(ctx)
        assert ctx.metrics["rewrite_contracted_pairs"] > 0
        assert ctx.metrics["rewrite_nodes_before"] == before
        assert ctx.metrics["rewrite_nodes_after"] == pattern.node_count
        assert pattern.node_count < before

    def test_noop_on_simplified_lowering(self):
        """The default translate path is already simplified, so the rewrite
        finds nothing — the invariant that keeps golden records identical
        with ``rewrite`` on and off."""
        on = Pipeline(SETTINGS).compile(CIRCUIT, seed=1)
        off = Pipeline(dataclasses.replace(SETTINGS, rewrite="off")).compile(
            CIRCUIT, seed=1
        )
        assert on.metrics["rewrite_contracted_pairs"] == 0
        assert _deterministic(on) == _deterministic(off)

    def test_rewrite_on_off_share_no_cache_entries(self):
        cache = MemoryCache()
        Pipeline(SETTINGS, cache=cache).compile(CIRCUIT, seed=0)
        stored = len(cache)
        off = Pipeline(
            dataclasses.replace(SETTINGS, rewrite="off"), cache=cache
        ).compile(CIRCUIT, seed=0)
        # The off-chain saw a cold cache: the rewrite knob is in every key.
        assert off.metrics.get("cache_hits", 0) == 0
        assert len(cache) > stored

    def test_compile_deterministic_with_rewrite(self):
        a = Pipeline(SETTINGS).compile(UNSIMPLIFIED, seed=3)
        b = Pipeline(SETTINGS).compile(UNSIMPLIFIED, seed=3)
        assert _deterministic(a) == _deterministic(b)
        assert a.metrics == b.metrics


class TestValidators:
    def test_connectivity_width_rejects_oversized_circuit(self):
        settings = dataclasses.replace(SETTINGS, virtual_size=2, rsl_size=24)
        ctx = settings.context_for(make_benchmark("qft", 25, seed=0))
        with pytest.raises(ValidationError) as excinfo:
            ConnectivityValidatorPass().run(ctx)
        (diag,) = [d for d in excinfo.value.diagnostics if d.severity == "error"]
        assert diag.rule == "connectivity/width"
        assert diag.location["qubits"] == 25

    def test_connectivity_degree_rejects_dense_pattern(self):
        config, _ = SETTINGS.hardware_for(4)
        width = config.site_degree + 2
        from repro.circuits.circuit import Circuit
        from repro.circuits.gates import Gate

        dense = Circuit(width, name="dense")
        for wire in range(1, width):
            dense.append(Gate("cz", (0, wire), ()))
        pattern = translate_circuit(dense)
        ctx = SETTINGS.context_for(dense)
        ctx.put("pattern", pattern)
        with pytest.raises(ValidationError) as excinfo:
            ConnectivityValidatorPass().run(ctx)
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert "connectivity/degree" in rules

    def test_strip_width_error_and_alignment_warning(self):
        narrow = dataclasses.replace(SETTINGS, rsl_size=3, virtual_size=2)
        with pytest.raises(ValidationError) as excinfo:
            StripBudgetValidatorPass().run(narrow.context_for(CIRCUIT))
        assert excinfo.value.diagnostics[0].rule == "strip/width"

        misaligned = dataclasses.replace(SETTINGS, rsl_size=25, virtual_size=2)
        ctx = misaligned.context_for(CIRCUIT)
        StripBudgetValidatorPass().run(ctx)  # warning only: no raise
        assert ctx.metrics["validate-strip-budget_warnings"] == 1

    def test_rsl_budget_error_names_the_pattern(self):
        tight = dataclasses.replace(SETTINGS, max_rsl=1)
        ctx = tight.context_for(CIRCUIT)
        ctx.put("pattern", translate_circuit(CIRCUIT))
        with pytest.raises(ValidationError) as excinfo:
            StripBudgetValidatorPass().run(ctx)
        (diag,) = [d for d in excinfo.value.diagnostics if d.severity == "error"]
        assert diag.rule == "strip/rsl-budget"
        assert diag.location["max_rsl"] == 1

    def test_rsg_fusion_rate_floor_and_warning_band(self):
        dead = dataclasses.replace(SETTINGS, fusion_success_rate=0.2)
        with pytest.raises(ValidationError) as excinfo:
            RsgConstraintValidatorPass().run(dead.context_for(CIRCUIT))
        assert any(
            d.rule == "rsg/fusion-rate" and d.severity == "error"
            for d in excinfo.value.diagnostics
        )
        marginal = dataclasses.replace(SETTINGS, fusion_success_rate=0.4)
        ctx = marginal.context_for(CIRCUIT)
        RsgConstraintValidatorPass().run(ctx)  # warning band: no raise
        assert ctx.metrics["validate-rsg_warnings"] >= 1

    def test_validation_error_json_shape(self):
        diag = Diagnostic(
            rule="rsg/degree", severity="error", message="m", location={"k": 1}
        )
        payload = json.loads(ValidationError("validate-rsg", [diag]).to_json())
        assert payload["error"] == "validation"
        assert payload["schema"] == DIAGNOSTICS_SCHEMA_VERSION
        assert payload["validator"] == "validate-rsg"
        assert "rsg/degree" in payload["summary"]
        assert payload["diagnostics"] == [
            {"rule": "rsg/degree", "severity": "error", "message": "m",
             "location": {"k": 1}}
        ]

    def test_validators_are_pure_gates(self):
        """A passing validator changes nothing deterministic about the
        compilation it gates."""
        plain = Pipeline(SETTINGS).compile(CIRCUIT, seed=2)
        gated_pipeline = Pipeline(SETTINGS)
        for cls in (
            ConnectivityValidatorPass, StripBudgetValidatorPass,
            RsgConstraintValidatorPass,
        ):
            gated_pipeline = gated_pipeline.insert_pass(cls(), after="translate")
        gated = gated_pipeline.compile(CIRCUIT, seed=2)
        assert _deterministic(gated) == _deterministic(plain)

    def test_unsupported_program_form_rejected(self):
        ctx = SETTINGS.context_for(CIRCUIT)
        with pytest.raises(ReproError, match="cannot check"):
            ConnectivityValidatorPass().check(42, ctx)


class TestRegistry:
    def test_names_and_lookup(self):
        assert pass_names() == list(PASS_REGISTRY)
        assert get_pass("rewrite") is RewritePass
        assert get_pass("validate-rsg") is RsgConstraintValidatorPass

    def test_unknown_name_lists_registry(self):
        with pytest.raises(UnknownPassError) as excinfo:
            get_pass("nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in pass_names():
            assert name in message


class TestFrontDoor:
    def test_circuit_chain_is_default(self):
        names = [stage.name for stage in make_pass_list(CIRCUIT)]
        assert names == [
            "translate", "rewrite", "offline-map", "lower-ir", "online-reshape",
        ]
        assert "rewrite" not in [
            stage.name for stage in make_pass_list(CIRCUIT, rewrite="off")
        ]

    def test_pattern_chain_replaces_translate(self):
        pattern = translate_circuit(CIRCUIT)
        chain = make_pass_list(pattern)
        assert chain[0].name == "pattern-source"
        assert isinstance(chain[0], PatternSourcePass)
        assert "translate" not in [stage.name for stage in chain]

    def test_unsupported_program_form_rejected(self):
        with pytest.raises(ReproError, match="cannot build a pass list"):
            make_pass_list(3.14)

    def test_circuit_ir_round_trip(self):
        restored = circuit_from_ir(circuit_to_ir(CIRCUIT))
        assert restored.num_qubits == CIRCUIT.num_qubits
        assert restored.gates == CIRCUIT.gates

    def test_malformed_ir_rejected(self):
        with pytest.raises(ReproError, match="unsupported circuit IR format"):
            circuit_from_ir({"format": "other/v9"})
        with pytest.raises(ReproError, match="malformed circuit IR"):
            circuit_from_ir({"format": CIRCUIT_IR_FORMAT, "num_qubits": 2})
        with pytest.raises(ReproError, match="not valid JSON"):
            make_pass_list("{never closed")

    def test_compile_program_equivalent_across_forms(self):
        reference = Pipeline(SETTINGS).compile(CIRCUIT, seed=4)
        via_circuit = compile_program(CIRCUIT, settings=SETTINGS, seed=4)
        via_ir = compile_program(
            json.dumps(circuit_to_ir(CIRCUIT)), settings=SETTINGS, seed=4
        )
        assert _deterministic(via_circuit) == _deterministic(reference)
        assert _deterministic(via_ir) == _deterministic(reference)

    def test_compile_program_from_pattern_leaves_caller_pattern_alone(self):
        pattern = translate_circuit(UNSIMPLIFIED)
        before = pattern.node_count
        result = compile_program(pattern, settings=SETTINGS, seed=0)
        assert result.metrics["rewrite_contracted_pairs"] > 0
        assert pattern.node_count == before  # deep-copied, never mutated

    def test_pattern_identity_keys_the_cache(self):
        """Two different patterns with the same human name must not share
        cache entries: the fingerprint rides in the stand-in circuit."""
        a = translate_circuit(make_benchmark("qaoa", 4, seed=0))
        b = translate_circuit(make_benchmark("vqe", 4, seed=0))
        a.name = b.name = "same-name:pattern"
        assert pattern_fingerprint(a) != pattern_fingerprint(b)
        assert program_circuit(a).name != program_circuit(b).name
        cache = MemoryCache()
        first = compile_program(a, settings=SETTINGS, seed=0, cache=cache)
        cross = compile_program(b, settings=SETTINGS, seed=0, cache=cache)
        again = compile_program(a, settings=SETTINGS, seed=0, cache=cache)
        assert cross.metrics.get("cache_hits", 0) == 0
        assert again.metrics.get("cache_hits", 0) > 0
        assert _deterministic(again) == _deterministic(first)
