"""Tests for the 3D cubic-lattice percolation substrate."""

import numpy as np
import pytest

from repro.errors import RenormalizationError
from repro.online.lattice3d import (
    CUBIC_BOND_THRESHOLD,
    sample_lattice3d,
    spanning_probability_3d,
)


class TestSampling:
    def test_shapes(self):
        lattice = sample_lattice3d(4, 0.5, rng=0)
        assert lattice.sites.shape == (4, 4, 4)
        assert lattice.bonds_x.shape == (3, 4, 4)
        assert lattice.bonds_y.shape == (4, 3, 4)
        assert lattice.bonds_z.shape == (4, 4, 3)

    def test_validation(self):
        with pytest.raises(RenormalizationError):
            sample_lattice3d(0, 0.5)
        with pytest.raises(RenormalizationError):
            sample_lattice3d(3, -0.1)

    def test_full_lattice_connected(self):
        lattice = sample_lattice3d(3, 1.0, rng=0)
        assert lattice.largest_cluster_fraction() == 1.0
        assert lattice.spans_z()

    def test_empty_lattice_isolated(self):
        lattice = sample_lattice3d(3, 0.0, rng=0)
        assert lattice.largest_cluster_fraction() == pytest.approx(1 / 27)
        assert not lattice.spans_z()

    def test_dead_sites_respected(self):
        alive = np.ones((3, 3, 3), dtype=bool)
        alive[:, :, 1] = False  # kill the whole middle slab
        lattice = sample_lattice3d(3, 1.0, rng=0, site_alive=alive)
        assert not lattice.spans_z()


class TestThreshold:
    def test_threshold_bracketing(self):
        """Spanning is rare below p_c ~ 0.2488 and common above [Fig. 7(b)'s
        comfortable margin at hardware rates]."""
        low = spanning_probability_3d(8, 0.15, trials=20, rng=1)
        high = spanning_probability_3d(8, 0.40, trials=20, rng=1)
        assert low < 0.3
        assert high > 0.7

    def test_practical_rate_is_deep_in_supercritical(self):
        """At the practical fusion rate 0.75 the 3D resource is essentially
        fully long-range connected — the paper's starting point."""
        lattice = sample_lattice3d(8, 0.75, rng=2)
        assert lattice.largest_cluster_fraction() > 0.9
        assert 0.75 > 2 * CUBIC_BOND_THRESHOLD

    def test_monotone_in_probability(self):
        low = spanning_probability_3d(6, 0.2, trials=20, rng=3)
        high = spanning_probability_3d(6, 0.3, trials=20, rng=3)
        assert high >= low
