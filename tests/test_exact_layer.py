"""Tests proving the lattice abstraction faithful to real graph states."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.graphstate import ResourceStateSpec
from repro.hardware import FusionDevice, HardwareConfig
from repro.online.exact_layer import (
    MAX_EXACT_SIDE,
    bond_consistency,
    build_exact_layer,
)


def config_for(size: int, stars: int, rate: float = 0.75) -> HardwareConfig:
    return HardwareConfig(
        rsl_size=size,
        resource_state=ResourceStateSpec(stars),
        fusion_success_rate=rate,
    )


class TestExactLayer:
    def test_size_cap(self):
        with pytest.raises(HardwareError):
            build_exact_layer(config_for(MAX_EXACT_SIDE + 1, 7))

    def test_perfect_fusions_form_full_lattice(self):
        config = config_for(4, 7, rate=1.0)
        layer = build_exact_layer(config, FusionDevice(1.0, rng=0))
        assert all(layer.site_alive(c) for c in layer.sites)
        assert all(layer.bonds.values())
        # Every adjacent root pair is edge-connected in the real state.
        for key in layer.bonds:
            a, b = tuple(key)
            assert layer.roots_connected(a, b)

    def test_merged_stars_reach_full_degree(self):
        """Three perfect 4-qubit stars merge to a degree-7 site (Fig. 7(c))."""
        config = config_for(2, 4, rate=1.0)
        layer = build_exact_layer(config, FusionDevice(1.0, rng=0))
        # Degree 7 minus the spatial bonds actually used.
        site = layer.sites[(0, 0)]
        used = sum(
            1
            for key, open_ in layer.bonds.items()
            if open_ and (0, 0) in key
        )
        assert layer.graph.degree(site.root) == 7 - used + used  # = 7
        # (the root keeps degree 7: each successful bond swaps a leaf for a
        # neighbour-root edge)

    @pytest.mark.parametrize("stars", [4, 5, 7])
    def test_heralded_bonds_match_real_connectivity(self, stars):
        """The core soundness claim: bond map == root connectivity, always."""
        for seed in range(5):
            config = config_for(4, stars, rate=0.7)
            layer = build_exact_layer(config, FusionDevice(0.7, rng=seed))
            assert bond_consistency(layer) == 1.0

    def test_failed_merges_record_lc_cleanups(self):
        """At a low rate, Fig. 8 cleanups happen and land in the ledger."""
        config = config_for(6, 4, rate=0.4)
        layer = build_exact_layer(config, FusionDevice(0.4, rng=3))
        cleanups = sum(site.lc_cleanups for site in layer.sites.values())
        assert cleanups > 0
        assert len(layer.ledger) > 0

    def test_dead_sites_have_no_bonds(self):
        config = config_for(6, 4, rate=0.3)
        layer = build_exact_layer(config, FusionDevice(0.3, rng=1))
        dead = [c for c in layer.sites if not layer.site_alive(c)]
        assert dead, "a 0.3 rate should kill some sites"
        for coord in dead:
            for key, open_ in layer.bonds.items():
                if coord in key:
                    assert not open_

    def test_bond_rate_tracks_fusion_rate(self):
        """Empirical open-bond fraction ~ the device rate (7-qubit stars,
        no merging, no retries in the exact builder)."""
        config = config_for(8, 7, rate=0.75)
        opened = 0
        total = 0
        for seed in range(4):
            layer = build_exact_layer(config, FusionDevice(0.75, rng=seed))
            opened += sum(layer.bonds.values())
            total += len(layer.bonds)
        assert abs(opened / total - 0.75) < 0.08

    def test_abstraction_and_exact_agree_statistically(self):
        """The percolation abstraction's cluster structure matches the
        exact layer's root-graph clusters on the same outcomes."""
        from repro.online.percolation import PercolatedLattice

        config = config_for(6, 7, rate=0.8)
        layer = build_exact_layer(config, FusionDevice(0.8, rng=9))
        n = config.rsl_size
        sites = np.array(
            [[layer.site_alive((r, c)) for c in range(n)] for r in range(n)]
        )
        horizontal = np.zeros((n, n - 1), dtype=bool)
        vertical = np.zeros((n - 1, n), dtype=bool)
        for key, open_ in layer.bonds.items():
            a, b = sorted(key)
            if a[0] == b[0]:
                horizontal[a[0], a[1]] = open_
            else:
                vertical[a[0], a[1]] = open_
        abstract = PercolatedLattice(
            sites=sites, horizontal=horizontal, vertical=vertical
        )
        # Abstract cluster fraction equals the real root-graph's component
        # fraction over roots.
        roots = {
            site.root for site in layer.sites.values() if site.root is not None
        }
        components = layer.graph.connected_components()
        best_root_cluster = max(
            (len(component & roots) for component in components), default=0
        )
        assert abstract.largest_cluster_fraction() == pytest.approx(
            best_root_cluster / (n * n)
        )
