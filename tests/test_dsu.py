"""Unit and property tests for the disjoint-set union."""

from hypothesis import given, strategies as st

from repro.utils.dsu import DisjointSet


class TestBasics:
    def test_starts_empty(self):
        dsu = DisjointSet()
        assert len(dsu) == 0
        assert dsu.component_count == 0

    def test_add_returns_true_once(self):
        dsu = DisjointSet()
        assert dsu.add("a") is True
        assert dsu.add("a") is False
        assert len(dsu) == 1

    def test_constructor_seeds_elements(self):
        dsu = DisjointSet(["a", "b", "c"])
        assert len(dsu) == 3
        assert dsu.component_count == 3

    def test_find_adds_missing_element(self):
        dsu = DisjointSet()
        assert dsu.find(7) == 7
        assert 7 in dsu

    def test_union_merges(self):
        dsu = DisjointSet()
        assert dsu.union(1, 2) is True
        assert dsu.connected(1, 2)
        assert dsu.component_count == 1

    def test_union_idempotent(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        assert dsu.union(2, 1) is False

    def test_transitive_connectivity(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        dsu.union(2, 3)
        assert dsu.connected(1, 3)
        assert not dsu.connected(1, 4)

    def test_component_size(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        dsu.union(2, 3)
        dsu.add(4)
        assert dsu.component_size(1) == 3
        assert dsu.component_size(4) == 1

    def test_components_grouping(self):
        dsu = DisjointSet()
        dsu.union("a", "b")
        dsu.add("c")
        groups = dsu.components()
        sizes = sorted(len(group) for group in groups.values())
        assert sizes == [1, 2]

    def test_largest_component(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        dsu.union(2, 3)
        dsu.union(10, 11)
        assert sorted(dsu.largest_component()) == [1, 2, 3]

    def test_largest_component_empty(self):
        assert DisjointSet().largest_component() == []

    def test_iteration_covers_elements(self):
        dsu = DisjointSet([1, 2, 3])
        assert sorted(dsu) == [1, 2, 3]

    def test_tuple_elements(self):
        dsu = DisjointSet()
        dsu.union((0, 0), (0, 1))
        assert dsu.connected((0, 0), (0, 1))


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30))))
def test_component_count_invariant(pairs):
    """component_count always equals the number of distinct roots."""
    dsu = DisjointSet()
    for a, b in pairs:
        dsu.union(a, b)
    roots = {dsu.find(element) for element in dsu}
    assert dsu.component_count == len(roots)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1))
def test_union_matches_reference_partition(pairs):
    """Connectivity agrees with a brute-force reference partition."""
    dsu = DisjointSet()
    reference: list[set[int]] = []

    def ref_find(x: int) -> set[int] | None:
        for group in reference:
            if x in group:
                return group
        return None

    for a, b in pairs:
        dsu.union(a, b)
        ga, gb = ref_find(a), ref_find(b)
        if ga is None and gb is None:
            reference.append({a, b})
        elif ga is None:
            gb.add(a)
        elif gb is None:
            ga.add(b)
        elif ga is not gb:
            ga |= gb
            reference.remove(gb)
    for a, _ in pairs:
        for b, _ in pairs:
            assert dsu.connected(a, b) == (ref_find(a) is ref_find(b))


@given(st.sets(st.integers(0, 100), min_size=1))
def test_sizes_sum_to_total(elements):
    dsu = DisjointSet(elements)
    ordered = sorted(elements)
    for a, b in zip(ordered, ordered[1:]):
        if (a + b) % 3 == 0:
            dsu.union(a, b)
    assert sum(len(g) for g in dsu.components().values()) == len(elements)
