"""Streaming and sharded execution: the runner contract, end to end.

Pins the tentpole guarantees at toy scale (bench-scale golden coverage
lives in benchmarks/test_sharded_determinism.py):

* ``iter_jobs`` yields records in canonical order, byte-identical to
  ``run_jobs``, for every backend and for varying worker/shard counts;
* records really stream — the serial generator yields record N before job
  N+1 runs, and pool generators drain through the reorder buffer;
* the sharded runner's artifact exchange works: per-shard delta
  directories merge into one base store that makes re-runs fully warm;
* ``Experiment.iter_records`` + ``ExperimentResult.from_stream`` rebuild
  the exact result of a blocking ``run``;
* the incremental stream writers flush per record (CSV fixed-header
  semantics, JSONL losslessness).
"""

import json
import pickle

import pytest

from repro.errors import ReproError
from repro.experiments import (
    CompileJob,
    Experiment,
    ExperimentResult,
    FnJob,
    SerialRunner,
    ShardedRunner,
    ShardTask,
    canonical_json,
    make_runner,
    run_shard,
    shard_for,
)
from repro.experiments.common import stream_for
from repro.experiments.streams import (
    CsvStreamWriter,
    JsonlStreamWriter,
    make_stream_writer,
)
from repro.pipeline import DiskCache, MemoryCache, PipelineSettings

#: Jobs append their key here as they *execute*; tests that prove records
#: stream before the sweep finishes read it mid-iteration (serial runner
#: only — pool workers append to their own copy).
EXECUTED: list[str] = []


def _point(x: int, seed: int) -> dict:
    EXECUTED.append(f"fn/{x}")
    rng = stream_for("stream-toy", seed).child(x).generator
    return {"x": x, "value": float(rng.integers(0, 1000))}


def _boom() -> dict:
    raise ValueError("kaboom")


class StreamToy(Experiment):
    """Mixed fn/compile toy sweep: enough shape to exercise every backend."""

    name = "stream-toy"
    description = "streaming contract probe"

    def build_jobs(self, scale, seed):
        jobs = [
            FnJob(key=f"fn/{x}", fn=_point, kwargs={"x": x, "seed": seed})
            for x in range(6)
        ]
        settings = PipelineSettings(
            fusion_success_rate=0.9, rsl_size=24, virtual_size=2, max_rsl=10**5
        )
        jobs.append(
            CompileJob(
                key="compile/qaoa4",
                meta={"benchmark": "QAOA-4", "compiler": "oneperc"},
                family="qaoa",
                num_qubits=4,
                settings=settings,
                seed=seed,
            )
        )
        return jobs

    def render(self, records):
        return f"{len(records)} records"


REFERENCE = StreamToy().run("bench", seed=5, runner=SerialRunner())


class TestIterJobs:
    """iter_jobs == run_jobs, for every backend and width."""

    @pytest.mark.parametrize(
        "runner_name,kwargs",
        [
            ("serial", {}),
            ("thread", {"max_workers": 2}),
            ("thread", {"max_workers": 4}),
            ("process", {"max_workers": 2}),
            ("sharded", {"shards": 1}),
            ("sharded", {"shards": 2}),
            ("sharded", {"shards": 3}),
            ("sharded", {"shards": 5, "max_workers": 2}),
        ],
    )
    def test_stream_matches_blocking_canonical_order(self, runner_name, kwargs):
        runner = make_runner(runner_name, **kwargs)
        jobs = StreamToy().build_jobs("bench", 5)
        streamed = list(
            runner.iter_jobs(jobs, experiment="stream-toy", scale="bench", seed=5)
        )
        assert [record.job for record in streamed] == [job.key for job in jobs]
        assert canonical_json(streamed) == canonical_json(REFERENCE.records)

    def test_serial_yields_before_later_jobs_run(self):
        EXECUTED.clear()
        jobs = StreamToy().build_jobs("bench", 5)
        stream = SerialRunner().iter_jobs(
            jobs, experiment="stream-toy", scale="bench", seed=5
        )
        first = next(stream)
        assert first.job == "fn/0"
        assert EXECUTED == ["fn/0"]  # nothing past the first yield has run
        rest = list(stream)
        assert len(rest) == len(jobs) - 1
        assert len(EXECUTED) == 6  # every fn job ran exactly once

    def test_pool_stream_restores_canonical_order(self):
        # Thread workers finish out of order; the reorder buffer must hide
        # that entirely.
        jobs = StreamToy().build_jobs("bench", 5)
        runner = make_runner("thread", max_workers=4)
        keys = [
            record.job
            for record in runner.iter_jobs(
                jobs, experiment="stream-toy", scale="bench", seed=5
            )
        ]
        assert keys == [job.key for job in jobs]

    def test_failures_name_the_job(self):
        jobs = [FnJob(key="boom/1", fn=_boom, kwargs={})]
        for runner in (SerialRunner(), make_runner("sharded", shards=2)):
            with pytest.raises(ReproError, match="boom/1"):
                list(
                    runner.iter_jobs(
                        jobs, experiment="stream-toy", scale="bench", seed=0
                    )
                )


class TestShardedRunner:
    def test_partition_is_stable_and_total(self):
        keys = [f"job/{i}" for i in range(40)]
        for shards in (1, 2, 3, 7):
            assignment = [shard_for(key, shards) for key in keys]
            assert assignment == [shard_for(key, shards) for key in keys]
            assert all(0 <= shard < shards for shard in assignment)
        # More than one shard actually gets work for a realistic key set.
        assert len({shard_for(key, 4) for key in keys}) > 1

    def test_shard_task_is_picklable_contract(self):
        jobs = tuple(enumerate(StreamToy().build_jobs("bench", 5)))
        task = ShardTask(
            shard_index=0,
            experiment="stream-toy",
            scale="bench",
            seed=5,
            jobs=jobs,
        )
        clone = pickle.loads(pickle.dumps(task))
        outcome = run_shard(clone)
        # The outcome itself must make the return trip intact.
        outcome = pickle.loads(pickle.dumps(outcome))
        assert [index for index, _record in outcome.pairs] == list(range(len(jobs)))
        records = [record for _index, record in outcome.pairs]
        assert canonical_json(records) == canonical_json(REFERENCE.records)
        # No cache and no telemetry were asked for; the outcome says so.
        assert outcome.cache is None
        assert outcome.metrics is None
        assert outcome.events == []

    def test_artifact_exchange_warms_across_runs_and_shard_counts(self, tmp_path):
        cache = DiskCache(tmp_path)
        cold = StreamToy().run(
            "bench", seed=5, runner=ShardedRunner(cache=cache, shards=3)
        )
        assert canonical_json(cold.records) == canonical_json(REFERENCE.records)
        assert cold.cache_stats()["misses"] > 0
        warm = StreamToy().run(
            "bench", seed=5, runner=ShardedRunner(cache=cache, shards=2)
        )
        assert canonical_json(warm.records) == canonical_json(REFERENCE.records)
        assert warm.cache_stats() == {"hits": 4, "misses": 0, "hit_rate": 1.0}
        # Scratch deltas were merged and removed; the store holds entries only.
        assert not any((tmp_path / ".shards").iterdir())

    def test_memory_cache_rejected(self):
        with pytest.raises(ReproError, match="DiskCache"):
            ShardedRunner(cache=MemoryCache())

    def test_shards_flag_rejected_elsewhere(self):
        with pytest.raises(ReproError, match="sharded"):
            make_runner("thread", shards=2)
        with pytest.raises(ReproError, match=">= 1"):
            ShardedRunner(shards=0)


class TestStreamedResults:
    def test_iter_records_plus_from_stream_equals_run(self):
        experiment = StreamToy()
        stream = experiment.iter_records("bench", seed=5, runner="serial")
        result = ExperimentResult.from_stream(experiment, stream, runner="serial")
        assert canonical_json(result.records) == canonical_json(REFERENCE.records)
        assert result.text == REFERENCE.text
        assert result.runner == REFERENCE.runner == "serial"
        assert (result.experiment, result.scale, result.seed) == (
            REFERENCE.experiment,
            REFERENCE.scale,
            REFERENCE.seed,
        )

    def test_from_stream_accepts_runner_object_and_rejects_empty(self):
        experiment = StreamToy()
        records = list(experiment.iter_records("bench", seed=5))
        result = ExperimentResult.from_stream(
            experiment, records, runner=ShardedRunner(shards=2)
        )
        assert result.runner == "sharded"
        with pytest.raises(ReproError, match="no records"):
            ExperimentResult.from_stream(experiment, [])

    def test_iter_records_validates_eagerly(self):
        # Usage errors surface at the call site, not at the first next().
        with pytest.raises(ValueError):
            StreamToy().iter_records("huge", seed=0)
        with pytest.raises(ReproError):
            StreamToy().iter_records("bench", seed=0, runner="bogus")


class TestStreamWriters:
    def test_jsonl_is_lossless_and_flushes_per_record(self, tmp_path):
        path = tmp_path / "records.jsonl"
        writer = make_stream_writer(str(path))
        assert isinstance(writer, JsonlStreamWriter)
        with writer:
            for count, record in enumerate(REFERENCE.records, start=1):
                writer.write(record)
                # Per-record flush: the file holds every record so far.
                assert len(path.read_text().splitlines()) == count
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["job"] for line in lines] == [
            record.job for record in REFERENCE.records
        ]
        assert [line["fields"] for line in lines] == [
            record.fields for record in REFERENCE.records
        ]
        assert all("timings" in line and "metrics" in line for line in lines)

    def test_csv_homogeneous_rows_match_to_csv(self, tmp_path):
        # All-fn experiments share one schema, so the streamed CSV is the
        # exact bytes of the blocking exporter.
        records = REFERENCE.records[:-1]  # drop the compile job
        homogeneous = ExperimentResult.from_stream(StreamToy(), records)
        path = tmp_path / "records.csv"
        with make_stream_writer(str(path)) as writer:
            for record in records:
                writer.write(record)
            assert not writer.dropped_keys
        # read_bytes: read_text would fold the CSV dialect's \r\n away.
        assert path.read_bytes().decode() == homogeneous.to_csv()

    def test_csv_mixed_schema_drops_and_counts_novel_columns(self, tmp_path):
        path = tmp_path / "records.csv"
        with make_stream_writer(str(path)) as writer:
            assert isinstance(writer, CsvStreamWriter)
            for record in REFERENCE.records:  # fn rows first, compile row last
                writer.write(record)
            assert "rsl_count" in writer.dropped_keys
        header = path.read_text().splitlines()[0].split(",")
        assert "x" in header and "rsl_count" not in header
        assert len(path.read_text().splitlines()) == len(REFERENCE.records) + 1

    def test_csv_zero_records_still_writes_a_header(self, tmp_path):
        # A sweep that dies before its first record (or filters everything
        # out) must not leave a headerless CSV behind — to_csv never does.
        path = tmp_path / "empty.csv"
        with make_stream_writer(str(path)):
            pass
        lines = path.read_text().splitlines()
        assert lines == ["experiment,scale,seed,job"]

    def test_csv_zero_records_header_honors_fieldnames_hint(self, tmp_path):
        path = tmp_path / "empty.csv"
        hint = ["experiment", "scale", "seed", "job", "x", "value"]
        with make_stream_writer(str(path), fieldnames=hint):
            pass
        assert path.read_text().splitlines() == [",".join(hint)]

    def test_csv_fieldnames_hint_fixes_the_header_for_real_rows(self, tmp_path):
        path = tmp_path / "records.csv"
        hint = list(REFERENCE.records[0].flat())
        with make_stream_writer(str(path), fieldnames=hint) as writer:
            writer.write(REFERENCE.records[0])
        assert path.read_text().splitlines()[0] == ",".join(hint)

    def test_construction_failure_closes_the_handle(self, tmp_path, monkeypatch):
        from repro.experiments import streams

        opened = []
        real_open = open

        def spy_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        class Exploding(CsvStreamWriter):
            def __init__(self, handle, fieldnames=None):
                raise RuntimeError("writer construction failed")

        monkeypatch.setattr(streams, "open", spy_open, raising=False)
        monkeypatch.setattr(streams, "CsvStreamWriter", Exploding)
        with pytest.raises(RuntimeError, match="construction failed"):
            streams.make_stream_writer(str(tmp_path / "leak.csv"))
        assert len(opened) == 1
        assert opened[0].closed  # the handle did not leak
