"""Tests for the composable compiler-pass pipeline.

Covers the golden parity between ``Pipeline`` and the legacy
``OnePercCompiler`` facade, the pass ordering / artifact contract, batch
compilation determinism under thread workers, per-pass timings, and the
vectorized ``components()`` hot path against its union-find reference.
"""

import numpy as np
import pytest

from repro.circuits import make_benchmark
from repro.compiler import OnePercCompiler
from repro.errors import CompilationError
from repro.online.percolation import sample_lattice
from repro.pipeline import (
    CompilerPass,
    OfflineMapPass,
    OnlineReshapePass,
    PassContext,
    Pipeline,
    PipelineSettings,
    TranslatePass,
    default_passes,
)

SETTINGS = PipelineSettings(fusion_success_rate=0.75, max_rsl=10**5)


class TestGoldenParity:
    """Pipeline and facade must agree bit-for-bit for the same seed."""

    @pytest.mark.parametrize("family", ["qaoa", "qft", "vqe"])
    def test_compile_metrics_identical(self, family):
        circuit = make_benchmark(family, 4, seed=1)
        via_pipeline = Pipeline(SETTINGS, seed=9).compile(circuit)
        via_facade = OnePercCompiler(
            fusion_success_rate=0.75, seed=9, max_rsl=10**5
        ).compile(circuit)
        assert via_pipeline.rsl_count == via_facade.rsl_count
        assert via_pipeline.fusion_count == via_facade.fusion_count
        assert via_pipeline.pl_ratio == via_facade.pl_ratio
        assert via_pipeline.logical_layers == via_facade.logical_layers

    def test_baseline_metrics_identical(self):
        circuit = make_benchmark("vqe", 4, seed=1)
        settings = PipelineSettings(fusion_success_rate=0.9, max_rsl=10**4)
        via_pipeline = Pipeline(settings, seed=3).compile_baseline(circuit)
        via_facade = OnePercCompiler(
            fusion_success_rate=0.9, seed=3, max_rsl=10**4
        ).compile_baseline(circuit)
        assert via_pipeline.rsl_count == via_facade.rsl_count
        assert via_pipeline.fusion_count == via_facade.fusion_count
        assert via_pipeline.restarts == via_facade.restarts


class TestFacadeCompatibility:
    def test_legacy_attributes_still_readable(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.9, rsl_size=24, refresh_every=5, seed=1
        )
        assert compiler.fusion_success_rate == 0.9
        assert compiler.rsl_size == 24
        assert compiler.refresh_every == 5
        assert compiler.virtual_size is None
        assert compiler.occupancy_limit == 0.25
        assert compiler.photon_loss_rate == 0.0
        assert compiler.emit_instructions is False
        assert compiler.max_rsl > 0
        with pytest.raises(AttributeError):
            compiler.not_a_knob


class TestPassContracts:
    def test_default_pass_order(self):
        names = [stage.name for stage in default_passes()]
        assert names == [
            "translate", "rewrite", "offline-map", "lower-ir", "online-reshape",
        ]

    def test_default_passes_rewrite_off(self):
        names = [stage.name for stage in default_passes("off")]
        assert names == ["translate", "offline-map", "lower-ir", "online-reshape"]
        with pytest.raises(CompilationError, match="rewrite"):
            default_passes("sometimes")

    def test_missing_artifact_rejected_before_pass_runs(self):
        """Reordered stages fail loudly at the contract check."""
        pipeline = Pipeline(SETTINGS, passes=(OnlineReshapePass(), TranslatePass()))
        with pytest.raises(CompilationError, match="requires artifacts"):
            pipeline.run_circuit(make_benchmark("qaoa", 4, seed=0), seed=0)

    def test_broken_promise_rejected(self):
        class LyingPass(CompilerPass):
            name = "liar"
            provides = ("unicorn",)

            def run(self, ctx: PassContext) -> None:
                pass

        pipeline = Pipeline(SETTINGS, passes=(LyingPass(),))
        with pytest.raises(CompilationError, match="promised artifact"):
            pipeline.run_circuit(make_benchmark("qaoa", 4, seed=0), seed=0)

    def test_artifacts_flow_between_passes(self):
        captured = {}

        class ProbePass(CompilerPass):
            name = "probe"
            requires = ("pattern", "mapping")

            def run(self, ctx: PassContext) -> None:
                captured["pattern"] = ctx.require("pattern")
                captured["mapping"] = ctx.require("mapping")

        pipeline = Pipeline(
            SETTINGS, passes=(TranslatePass(), OfflineMapPass(), ProbePass())
        )
        ctx = pipeline.run_circuit(make_benchmark("qaoa", 4, seed=0), seed=0)
        assert captured["pattern"] is ctx.artifacts["pattern"]
        assert captured["mapping"] is ctx.artifacts["mapping"]
        assert captured["mapping"].layer_count > 0

    def test_ablated_pipeline_runs_offline_only(self):
        pipeline = Pipeline(SETTINGS, passes=(TranslatePass(), OfflineMapPass()))
        ctx = pipeline.run_circuit(make_benchmark("qaoa", 4, seed=0), seed=0)
        assert "mapping" in ctx.artifacts
        assert "reshape" not in ctx.artifacts

    def test_instructions_gated_by_option(self):
        with_ir = Pipeline(
            PipelineSettings(max_rsl=10**5, emit_instructions=True), seed=1
        ).compile(make_benchmark("qaoa", 4, seed=1))
        without = Pipeline(
            PipelineSettings(max_rsl=10**5), seed=1
        ).compile(make_benchmark("qaoa", 4, seed=1))
        assert len(with_ir.instructions) > 0
        assert without.instructions == []
        assert with_ir.rsl_count == without.rsl_count  # lowering never perturbs RNG


class TestTimings:
    def test_every_pass_timed(self):
        result = Pipeline(SETTINGS, seed=2).compile(make_benchmark("qaoa", 4, seed=2))
        names = [timing.name for timing in result.pass_timings]
        assert names == [
            "translate", "rewrite", "offline-map", "lower-ir", "online-reshape",
        ]
        assert all(timing.seconds >= 0.0 for timing in result.pass_timings)
        assert result.offline_seconds == result.timings_by_pass["offline-map"]
        assert result.online_seconds == result.timings_by_pass["online-reshape"]
        assert result.online_seconds > 0


class TestCompileMany:
    CIRCUITS = [
        make_benchmark("qaoa", 4, seed=5),
        make_benchmark("qft", 4, seed=5),
        make_benchmark("vqe", 4, seed=5),
        make_benchmark("rca", 4, seed=5),
    ]

    @staticmethod
    def _metrics(results):
        return [(r.rsl_count, r.fusion_count, r.logical_layers) for r in results]

    def test_workers_do_not_change_results(self):
        pipeline = Pipeline(SETTINGS, seed=5)
        sequential = pipeline.compile_many(self.CIRCUITS)
        threaded = pipeline.compile_many(self.CIRCUITS, max_workers=4)
        assert self._metrics(sequential) == self._metrics(threaded)

    def test_matches_single_compiles(self):
        pipeline = Pipeline(SETTINGS, seed=5)
        batch = pipeline.compile_many(self.CIRCUITS, max_workers=3)
        singles = [pipeline.compile(circuit) for circuit in self.CIRCUITS]
        assert self._metrics(batch) == self._metrics(singles)

    def test_per_circuit_seeds(self):
        pipeline = Pipeline(SETTINGS)
        seeded = pipeline.compile_many(self.CIRCUITS[:2], seeds=[1, 2], max_workers=2)
        assert self._metrics(seeded) == self._metrics(
            [pipeline.compile(c, seed=s) for c, s in zip(self.CIRCUITS[:2], (1, 2))]
        )

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(CompilationError, match="seeds"):
            Pipeline(SETTINGS).compile_many(self.CIRCUITS, seeds=[1])

    def test_failures_name_the_job(self):
        # max_rsl=1 cannot satisfy any demand; the error must say which
        # circuit of the batch died.
        pipeline = Pipeline(PipelineSettings(max_rsl=1), seed=0)
        with pytest.raises(CompilationError, match="qaoa-4"):
            pipeline.compile_many(self.CIRCUITS[:1])

    def test_baseline_batch(self):
        pipeline = Pipeline(
            PipelineSettings(fusion_success_rate=0.9, max_rsl=10**4), seed=0
        )
        results = pipeline.compile_many(
            self.CIRCUITS[:2], max_workers=2, baseline=True
        )
        assert all(r.rsl_count > 0 for r in results)

    def test_process_backend_matches_serial(self):
        pipeline = Pipeline(SETTINGS, seed=5)
        serial = pipeline.compile_many(self.CIRCUITS, backend="serial")
        processed = pipeline.compile_many(
            self.CIRCUITS, backend="process", max_workers=2
        )
        assert self._metrics(serial) == self._metrics(processed)

    def test_thread_backend_explicit(self):
        pipeline = Pipeline(SETTINGS, seed=5)
        threaded = pipeline.compile_many(
            self.CIRCUITS, backend="thread", max_workers=1
        )
        assert self._metrics(threaded) == self._metrics(
            pipeline.compile_many(self.CIRCUITS)
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(CompilationError, match="backend"):
            Pipeline(SETTINGS).compile_many(self.CIRCUITS[:1], backend="gpu")

    def test_caller_owned_executor_and_futures(self):
        from concurrent.futures import ThreadPoolExecutor

        pipeline = Pipeline(SETTINGS, seed=5)
        serial = pipeline.compile_many(self.CIRCUITS)
        with ThreadPoolExecutor(max_workers=2) as pool:
            shared = pipeline.compile_many(self.CIRCUITS, executor=pool)
            futures = pipeline.compile_many(
                self.CIRCUITS, executor=pool, as_futures=True
            )
            gathered = [future.result() for future in futures]
        assert self._metrics(serial) == self._metrics(shared)
        assert self._metrics(serial) == self._metrics(gathered)

    def test_as_futures_requires_executor(self):
        with pytest.raises(CompilationError, match="executor"):
            Pipeline(SETTINGS).compile_many(self.CIRCUITS[:1], as_futures=True)

    def test_executor_conflicts_with_backend_knobs(self):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            with pytest.raises(CompilationError, match="conflicts"):
                Pipeline(SETTINGS).compile_many(
                    self.CIRCUITS[:1], executor=pool, backend="process"
                )
            with pytest.raises(CompilationError, match="conflicts"):
                Pipeline(SETTINGS).compile_many(
                    self.CIRCUITS[:1], executor=pool, max_workers=8
                )

    def test_process_backend_failures_name_the_job(self):
        pipeline = Pipeline(PipelineSettings(max_rsl=1), seed=0)
        with pytest.raises(CompilationError, match="qaoa-4"):
            pipeline.compile_many(
                self.CIRCUITS[:1], backend="process", max_workers=2
            )

    def test_jobs_and_results_are_picklable(self):
        # The process backend's contract: pipelines, circuits, and both
        # result types round-trip through pickle unchanged where it counts.
        import pickle

        pipeline = Pipeline(SETTINGS, seed=5)
        clone = pickle.loads(pickle.dumps(pipeline))
        circuit = pickle.loads(pickle.dumps(self.CIRCUITS[0]))
        original = pipeline.compile(self.CIRCUITS[0])
        from_clone = clone.compile(circuit)
        assert self._metrics([original]) == self._metrics([from_clone])
        restored = pickle.loads(pickle.dumps(original))
        assert restored.rsl_count == original.rsl_count
        baseline = Pipeline(
            PipelineSettings(fusion_success_rate=0.9, max_rsl=10**4), seed=0
        ).compile_baseline(self.CIRCUITS[0])
        assert pickle.loads(pickle.dumps(baseline)).rsl_count == baseline.rsl_count


class TestVectorizedComponents:
    """The numpy flood fill must agree exactly with the union-find oracle."""

    @pytest.mark.parametrize("trial", range(10))
    def test_partition_parity_random_lattices(self, trial):
        rng = np.random.default_rng(trial)
        size = int(rng.integers(1, 24))
        alive = rng.random((size, size)) < 0.85
        lattice = sample_lattice(size, float(rng.random()), rng, site_alive=alive)
        fast = lattice.components()
        slow = lattice.components_dsu()
        assert len(fast) == len(slow)
        assert fast.component_count == slow.component_count
        fast_parts = {frozenset(sites) for sites in fast.components().values()}
        slow_parts = {frozenset(sites) for sites in slow.components().values()}
        assert fast_parts == slow_parts
        assert sorted(map(len, (fast.largest_component(),))) == sorted(
            map(len, (slow.largest_component(),))
        )

    def test_connected_queries(self):
        lattice = sample_lattice(8, 1.0, rng=0)
        components = lattice.components()
        assert components.connected((0, 0), (7, 7))
        lattice.remove_site((0, 1))
        lattice.remove_site((1, 0))
        isolated = lattice.components()
        assert not isolated.connected((0, 0), (7, 7))
        assert isolated.component_size((7, 7)) == 61  # 64 - 2 dead - isolated corner

    def test_dead_site_queries(self):
        alive = np.ones((3, 3), dtype=bool)
        alive[1, 1] = False
        lattice = sample_lattice(3, 1.0, rng=0, site_alive=alive)
        components = lattice.components()
        assert (1, 1) not in components
        with pytest.raises(KeyError):
            components.find((1, 1))

    def test_spans_rows_matches_pairwise_definition(self):
        for seed in range(12):
            lattice = sample_lattice(10, 0.5, rng=seed)
            dsu = lattice.components_dsu()
            top = [(0, c) for c in range(10) if lattice.sites[0, c]]
            bottom = [(9, c) for c in range(10) if lattice.sites[9, c]]
            brute = any(dsu.connected(a, b) for a in top for b in bottom)
            assert lattice.spans_rows() == brute
