"""Property tests of the stabilizer tableau itself (beyond rule-checking).

These pin down the tableau as a trustworthy oracle: graph-state round trips,
Clifford group identities, measurement statistics, and extraction stability
under random Clifford noise that should not change the graph.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphstate import GraphState, PauliProduct, Tableau, graph_from_adjacency


def random_graph(num_nodes: int, edge_bits: int) -> GraphState:
    graph = GraphState()
    for node in range(num_nodes):
        graph.add_node(node)
    index = 0
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (edge_bits >> index) & 1:
                graph.add_edge(i, j)
            index += 1
    return graph


graph_params = st.tuples(st.integers(2, 7), st.integers(0, 2**21 - 1))


class TestRoundTrips:
    @given(graph_params)
    @settings(max_examples=60, deadline=None)
    def test_graph_extraction_is_inverse_of_preparation(self, params):
        size, bits = params
        graph = random_graph(size, bits)
        tableau, _index = Tableau.from_graph(graph)
        adjacency, ops = tableau.extract_graph(list(range(size)))
        assert graph_from_adjacency(adjacency) == graph
        # A genuine graph state needs no Hadamard corrections.
        assert all(op != "H" for op, _q in ops)

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_pauli_noise_does_not_change_the_graph(self, params):
        """Pauli corrections are sign-only: extraction is blind to them."""
        size, bits = params
        graph = random_graph(size, bits)
        tableau, _ = Tableau.from_graph(graph)
        rng = np.random.default_rng(bits % 1000)
        for qubit in range(size):
            if rng.random() < 0.5:
                tableau.pauli_x(qubit)
            if rng.random() < 0.5:
                tableau.pauli_z(qubit)
        adjacency, _ = tableau.extract_graph(list(range(size)))
        assert graph_from_adjacency(adjacency) == graph

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_s_gates_do_not_change_the_graph(self, params):
        """S is diagonal: the canonical extraction lands on the same graph."""
        size, bits = params
        graph = random_graph(size, bits)
        tableau, _ = Tableau.from_graph(graph)
        for qubit in range(size):
            if (bits >> qubit) & 1:
                tableau.phase_gate(qubit)
        adjacency, _ = tableau.extract_graph(list(range(size)))
        assert graph_from_adjacency(adjacency) == graph


class TestCliffordIdentities:
    def test_h_squared_is_identity(self):
        graph = random_graph(4, 0b101010)
        tableau, _ = Tableau.from_graph(graph)
        tableau.hadamard(1)
        tableau.hadamard(1)
        adjacency, _ = tableau.extract_graph([0, 1, 2, 3])
        assert graph_from_adjacency(adjacency) == graph

    def test_s_fourth_power_is_identity_on_signs(self):
        tableau = Tableau(1)
        tableau.hadamard(0)  # |+>
        for _ in range(4):
            tableau.phase_gate(0)
        assert tableau.measure_letter(0, "X") == 0  # still exactly |+>

    def test_sdg_inverts_s(self):
        tableau = Tableau(1)
        tableau.hadamard(0)
        tableau.phase_gate(0)
        tableau.phase_gate_dagger(0)
        assert tableau.measure_letter(0, "X") == 0

    def test_cnot_from_cz_and_h(self):
        """CZ = H CNOT H on the target, and vice versa."""
        a = Tableau(2)
        a.hadamard(0)
        a.cnot(0, 1)  # Bell state
        # Z0 Z1 and X0 X1 stabilize it: both deterministic 0.
        zz = PauliProduct.from_letters(2, {0: "Z", 1: "Z"})
        xx = PauliProduct.from_letters(2, {0: "X", 1: "X"})
        assert a.measure_pauli(zz) == 0
        assert a.measure_pauli(xx) == 0

    def test_sqrt_x_squares_to_x(self):
        """(sqrt X)^2 acts as X: flips a |0> to |1>."""
        tableau = Tableau(1)
        tableau.sqrt_x(0)
        tableau.sqrt_x(0)
        assert tableau.measure_letter(0, "Z") == 1


class TestMeasurementStatistics:
    def test_plus_state_z_measurement_unbiased(self):
        rng = np.random.default_rng(7)
        ones = 0
        for _ in range(300):
            tableau = Tableau(1)
            tableau.hadamard(0)
            ones += tableau.measure_letter(0, "Z", rng=rng)
        assert 100 < ones < 200

    def test_repeated_measurement_is_stable(self):
        rng = np.random.default_rng(3)
        tableau = Tableau(1)
        tableau.hadamard(0)
        first = tableau.measure_letter(0, "Z", rng=rng)
        for _ in range(5):
            assert tableau.measure_letter(0, "Z", rng=rng) == first

    def test_bell_correlations(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            tableau = Tableau(2)
            tableau.hadamard(0)
            tableau.cnot(0, 1)
            a = tableau.measure_letter(0, "Z", rng=rng)
            b = tableau.measure_letter(1, "Z", rng=rng)
            assert a == b

    def test_graph_state_stabilizer_deterministic(self):
        """Every generator X_i Z_N(i) measures 0 on |G> (the definition)."""
        graph = random_graph(5, 0b1011011)
        tableau, index = Tableau.from_graph(graph)
        for node in graph.nodes():
            letters = {index[node]: "X"}
            for neighbor in graph.neighbors(node):
                letters[index[neighbor]] = "Z"
            product = PauliProduct.from_letters(5, letters)
            assert tableau.measure_pauli(product) == 0
