"""Property tests of the renormalization carving invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.online import renormalize, sample_lattice


@st.composite
def carving_cases(draw):
    size = draw(st.integers(8, 28))
    target = draw(st.integers(1, max(1, size // 6)))
    probability = draw(st.sampled_from([0.6, 0.72, 0.85, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, target, probability, seed


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_same_orientation_paths_are_disjoint(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    for paths in (result.vertical_paths, result.horizontal_paths):
        seen: set = set()
        for path in paths:
            assert not (seen & set(path)), "parallel paths must not share sites"
            seen |= set(path)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_paths_are_connected_walks(case):
    size, target, probability, seed = case
    snapshot = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(snapshot.copy(), target)
    for path in result.vertical_paths + result.horizontal_paths:
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert snapshot.has_bond(a, b)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_success_implies_complete_node_grid(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    if result.success:
        assert len(result.node_sites) == target * target
        assert len(result.vertical_paths) == target
        assert len(result.horizontal_paths) == target
        for (v_index, h_index), coord in result.node_sites.items():
            assert coord in result.vertical_paths[v_index]
            assert coord in result.horizontal_paths[h_index]
    else:
        assert result.lattice_size < target


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_paths_confined_to_their_strips(case):
    """Strip confinement is the tangling guard: every vertical path stays in
    its column strip, every horizontal path in its row band."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)

    def strip_range(index: int) -> tuple[int, int]:
        return (index * size) // target, ((index + 1) * size) // target

    for index, path in enumerate(result.vertical_paths):
        low, high = strip_range(index)
        assert all(low <= col < high for _row, col in path)
    for index, path in enumerate(result.horizontal_paths):
        low, high = strip_range(index)
        assert all(low <= row < high for row, _col in path)


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_visited_work_scales_with_lattice(case):
    """The Fig. 14 cost proxy is positive and bounded by a small multiple of
    the lattice area (the O(N^2) claim of Section 5.1)."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    assert result.visited_sites > 0
    assert result.visited_sites <= 6 * size * size * max(1, target)
