"""Property tests of the renormalization carving invariants, and the
vectorized strip pre-check against its scalar DSU oracle."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.online import renormalize, sample_lattice
from repro.online.renormalize import strip_spans, strip_spans_dsu


@st.composite
def carving_cases(draw):
    size = draw(st.integers(8, 28))
    target = draw(st.integers(1, max(1, size // 6)))
    probability = draw(st.sampled_from([0.6, 0.72, 0.85, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, target, probability, seed


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_same_orientation_paths_are_disjoint(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    for paths in (result.vertical_paths, result.horizontal_paths):
        seen: set = set()
        for path in paths:
            assert not (seen & set(path)), "parallel paths must not share sites"
            seen |= set(path)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_paths_are_connected_walks(case):
    size, target, probability, seed = case
    snapshot = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(snapshot.copy(), target)
    for path in result.vertical_paths + result.horizontal_paths:
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert snapshot.has_bond(a, b)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_success_implies_complete_node_grid(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    if result.success:
        assert len(result.node_sites) == target * target
        assert len(result.vertical_paths) == target
        assert len(result.horizontal_paths) == target
        for (v_index, h_index), coord in result.node_sites.items():
            assert coord in result.vertical_paths[v_index]
            assert coord in result.horizontal_paths[h_index]
    else:
        assert result.lattice_size < target


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_paths_confined_to_their_strips(case):
    """Strip confinement is the tangling guard: every vertical path stays in
    its column strip, every horizontal path in its row band."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)

    def strip_range(index: int) -> tuple[int, int]:
        return (index * size) // target, ((index + 1) * size) // target

    for index, path in enumerate(result.vertical_paths):
        low, high = strip_range(index)
        assert all(low <= col < high for _row, col in path)
    for index, path in enumerate(result.horizontal_paths):
        low, high = strip_range(index)
        assert all(low <= row < high for row, _col in path)


@st.composite
def strip_cases(draw):
    """Randomized lattices with site loss, plus a strip partition to check.

    Loss rate 0 exercises full lattices; rates near 1 produce effectively
    empty strips; tiny sizes produce width-1 and single-row degenerates.
    """
    size = draw(st.integers(1, 26))
    bond_probability = draw(st.floats(0.0, 1.0))
    loss = draw(st.sampled_from([0.0, 0.05, 0.3, 0.7, 0.97]))
    count = draw(st.integers(1, size))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, bond_probability, loss, count, seed


def _lattice_with_loss(size, bond_probability, loss, seed):
    rng = np.random.default_rng(seed)
    alive = rng.random((size, size)) >= loss
    return sample_lattice(size, bond_probability, rng, site_alive=alive)


@given(strip_cases())
@settings(max_examples=60, deadline=None)
def test_vectorized_precheck_matches_dsu_oracle(case):
    """The numpy label-propagation pre-check and the scalar union-find must
    answer identically for every strip/band of every lattice."""
    size, bond_probability, loss, count, seed = case
    lattice = _lattice_with_loss(size, bond_probability, loss, seed)
    for vertical in (True, False):
        for index in range(count):
            low = (index * size) // count
            high = ((index + 1) * size) // count
            assert strip_spans(lattice, vertical, low, high) == strip_spans_dsu(
                lattice, vertical, low, high
            ), (size, vertical, low, high)


def test_precheck_degenerate_strips():
    """Hand-picked degenerates: empty width, fully dead, fully alive."""
    full = sample_lattice(6, 1.0, rng=np.random.default_rng(0))
    for vertical in (True, False):
        assert strip_spans(full, vertical, 0, 6) is True
        assert strip_spans(full, vertical, 2, 3) is True  # width-1 strip
        # Empty range: both implementations report "no path".
        assert strip_spans(full, vertical, 3, 3) is False
        assert strip_spans_dsu(full, vertical, 3, 3) is False
    dead = sample_lattice(
        5, 1.0, rng=np.random.default_rng(0), site_alive=np.zeros((5, 5), dtype=bool)
    )
    for vertical in (True, False):
        assert strip_spans(dead, vertical, 0, 5) is False
        assert strip_spans_dsu(dead, vertical, 0, 5) is False
    single = sample_lattice(1, 0.5, rng=np.random.default_rng(1))
    assert strip_spans(single, True, 0, 1) is strip_spans_dsu(single, True, 0, 1) is True


@given(carving_cases())
@settings(max_examples=25, deadline=None)
def test_full_renormalize_identical_for_either_precheck(case):
    """Swapping pre-check implementations must not perturb *anything*:
    success, paths, node grid, and the Fig. 14 visited-sites cost proxy."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    fast = renormalize(lattice.copy(), target, precheck="vector")
    slow = renormalize(lattice.copy(), target, precheck="dsu")
    assert fast.success == slow.success
    assert fast.lattice_size == slow.lattice_size
    assert fast.visited_sites == slow.visited_sites
    assert fast.node_sites == slow.node_sites
    assert fast.vertical_paths == slow.vertical_paths
    assert fast.horizontal_paths == slow.horizontal_paths


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_visited_work_scales_with_lattice(case):
    """The Fig. 14 cost proxy is positive and bounded by a small multiple of
    the lattice area (the O(N^2) claim of Section 5.1)."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    assert result.visited_sites > 0
    assert result.visited_sites <= 6 * size * size * max(1, target)
