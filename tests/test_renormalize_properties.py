"""Property tests of the renormalization carving invariants, the vectorized
strip pre-check against its scalar DSU oracle, and the vectorized wavefront
path search against the scalar deque-BFS oracle."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.online import percolation, renormalize, sample_lattice
from repro.online.renormalize import (
    PATHFINDS,
    PRECHECKS,
    _intersections,
    strip_spans,
    strip_spans_dsu,
)


@st.composite
def carving_cases(draw):
    size = draw(st.integers(8, 28))
    target = draw(st.integers(1, max(1, size // 6)))
    probability = draw(st.sampled_from([0.6, 0.72, 0.85, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, target, probability, seed


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_same_orientation_paths_are_disjoint(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    for paths in (result.vertical_paths, result.horizontal_paths):
        seen: set = set()
        for path in paths:
            assert not (seen & set(path)), "parallel paths must not share sites"
            seen |= set(path)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_paths_are_connected_walks(case):
    size, target, probability, seed = case
    snapshot = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(snapshot.copy(), target)
    for path in result.vertical_paths + result.horizontal_paths:
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert snapshot.has_bond(a, b)


@given(carving_cases())
@settings(max_examples=40, deadline=None)
def test_success_implies_complete_node_grid(case):
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    if result.success:
        assert len(result.node_sites) == target * target
        assert len(result.vertical_paths) == target
        assert len(result.horizontal_paths) == target
        for (v_index, h_index), coord in result.node_sites.items():
            assert coord in result.vertical_paths[v_index]
            assert coord in result.horizontal_paths[h_index]
    else:
        assert result.lattice_size < target


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_paths_confined_to_their_strips(case):
    """Strip confinement is the tangling guard: every vertical path stays in
    its column strip, every horizontal path in its row band."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)

    def strip_range(index: int) -> tuple[int, int]:
        return (index * size) // target, ((index + 1) * size) // target

    for index, path in enumerate(result.vertical_paths):
        low, high = strip_range(index)
        assert all(low <= col < high for _row, col in path)
    for index, path in enumerate(result.horizontal_paths):
        low, high = strip_range(index)
        assert all(low <= row < high for row, _col in path)


@st.composite
def strip_cases(draw):
    """Randomized lattices with site loss, plus a strip partition to check.

    Loss rate 0 exercises full lattices; rates near 1 produce effectively
    empty strips; tiny sizes produce width-1 and single-row degenerates.
    """
    size = draw(st.integers(1, 26))
    bond_probability = draw(st.floats(0.0, 1.0))
    loss = draw(st.sampled_from([0.0, 0.05, 0.3, 0.7, 0.97]))
    count = draw(st.integers(1, size))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, bond_probability, loss, count, seed


def _lattice_with_loss(size, bond_probability, loss, seed):
    rng = np.random.default_rng(seed)
    alive = rng.random((size, size)) >= loss
    return sample_lattice(size, bond_probability, rng, site_alive=alive)


@given(strip_cases())
@settings(max_examples=60, deadline=None)
def test_vectorized_precheck_matches_dsu_oracle(case):
    """The numpy label-propagation pre-check and the scalar union-find must
    answer identically for every strip/band of every lattice."""
    size, bond_probability, loss, count, seed = case
    lattice = _lattice_with_loss(size, bond_probability, loss, seed)
    for vertical in (True, False):
        for index in range(count):
            low = (index * size) // count
            high = ((index + 1) * size) // count
            assert strip_spans(lattice, vertical, low, high) == strip_spans_dsu(
                lattice, vertical, low, high
            ), (size, vertical, low, high)


def test_precheck_degenerate_strips():
    """Hand-picked degenerates: empty width, fully dead, fully alive."""
    full = sample_lattice(6, 1.0, rng=np.random.default_rng(0))
    for vertical in (True, False):
        assert strip_spans(full, vertical, 0, 6) is True
        assert strip_spans(full, vertical, 2, 3) is True  # width-1 strip
        # Empty range: both implementations report "no path".
        assert strip_spans(full, vertical, 3, 3) is False
        assert strip_spans_dsu(full, vertical, 3, 3) is False
    dead = sample_lattice(
        5, 1.0, rng=np.random.default_rng(0), site_alive=np.zeros((5, 5), dtype=bool)
    )
    for vertical in (True, False):
        assert strip_spans(dead, vertical, 0, 5) is False
        assert strip_spans_dsu(dead, vertical, 0, 5) is False
    single = sample_lattice(1, 0.5, rng=np.random.default_rng(1))
    assert strip_spans(single, True, 0, 1) is strip_spans_dsu(single, True, 0, 1) is True


@given(carving_cases())
@settings(max_examples=25, deadline=None)
def test_full_renormalize_identical_for_either_precheck(case):
    """Swapping pre-check implementations must not perturb *anything*:
    success, paths, node grid, and the Fig. 14 visited-sites cost proxy."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    fast = renormalize(lattice.copy(), target, precheck="vector")
    slow = renormalize(lattice.copy(), target, precheck="dsu")
    assert fast.success == slow.success
    assert fast.lattice_size == slow.lattice_size
    assert fast.visited_sites == slow.visited_sites
    assert fast.node_sites == slow.node_sites
    assert fast.vertical_paths == slow.vertical_paths
    assert fast.horizontal_paths == slow.horizontal_paths


def _result_tuple(result):
    """The full deterministic portion of a RenormalizationResult."""
    return (
        result.success,
        result.target_size,
        result.lattice_size,
        result.visited_sites,
        result.node_sites,
        result.vertical_paths,
        result.horizontal_paths,
    )


@st.composite
def pathfind_cases(draw):
    """Randomized lattices (with loss), targets, and work budgets.

    Sizes start at 1 to cover the degenerate single-row/owned-lane start
    branches; the optional budget exercises mid-carve truncation, whose
    cut point depends on exact visited-site accounting.
    """
    size = draw(st.integers(1, 24))
    target = draw(st.integers(1, size))
    bond_probability = draw(st.sampled_from([0.5, 0.6, 0.72, 0.85, 1.0]))
    loss = draw(st.sampled_from([0.0, 0.0, 0.05, 0.3]))
    budget = draw(st.one_of(st.none(), st.integers(1, 4 * size * size)))
    seed = draw(st.integers(0, 2**31 - 1))
    return size, target, bond_probability, loss, budget, seed


@given(pathfind_cases())
@settings(max_examples=50, deadline=None)
def test_pathfind_precheck_sweep_full_result_identity(case):
    """Every pathfind x precheck combination must agree on *everything*:
    success, paths, node grid, visited-site count, and where a work budget
    truncates the carve."""
    size, target, bond_probability, loss, budget, seed = case
    lattice = _lattice_with_loss(size, bond_probability, loss, seed)
    reference = None
    for pathfind in PATHFINDS:
        for precheck in PRECHECKS:
            result = renormalize(
                lattice.copy(),
                target,
                work_budget=budget,
                precheck=precheck,
                pathfind=pathfind,
            )
            if reference is None:
                reference = _result_tuple(result)
            else:
                assert _result_tuple(result) == reference, (pathfind, precheck)


@given(pathfind_cases())
@settings(max_examples=20, deadline=None)
def test_pure_python_frontier_engine_is_identical(case):
    """With scipy unavailable, the pure-python frontier fallback must
    reproduce the compiled engine's results byte-for-byte."""
    size, target, bond_probability, loss, budget, seed = case
    lattice = _lattice_with_loss(size, bond_probability, loss, seed)
    compiled = renormalize(lattice.copy(), target, work_budget=budget)
    original = percolation._FRONTIER_ENGINE
    percolation._FRONTIER_ENGINE = False  # simulate a missing scipy
    try:
        fallback = renormalize(lattice.copy(), target, work_budget=budget)
    finally:
        percolation._FRONTIER_ENGINE = original
    assert _result_tuple(fallback) == _result_tuple(compiled)


@given(st.integers(0, 2**31 - 1), st.integers(1, 40), st.floats(0.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_frontier_bfs_engines_agree_on_random_graphs(seed, nodes, degree):
    """scipy's breadth_first_order and the pure-python twin must emit the
    same pop order and the same first-discoverer predecessors — the
    tie-break contract the path search's byte-identity rests on."""
    rng = np.random.default_rng(seed)
    edge_count = int(degree * nodes)
    sources = rng.integers(0, nodes, edge_count)
    targets = rng.integers(0, nodes, edge_count)
    indptr, indices = percolation.frontier_adjacency(sources, targets, nodes)
    source = int(rng.integers(0, nodes))
    python_order, python_pred = percolation._frontier_bfs_python(
        indptr, indices, source
    )
    order, pred = percolation.frontier_bfs(indptr, indices, source)
    assert np.array_equal(order, python_order)
    assert np.array_equal(pred, python_pred)


def _intersections_quadratic(vertical_paths, horizontal_paths):
    """The pre-optimization reference: rescan every horizontal path against
    every vertical path's site set."""
    nodes = {}
    vertical_sets = [set(path) for path in vertical_paths]
    for h_index, h_path in enumerate(horizontal_paths):
        for v_index, v_sites in enumerate(vertical_sets):
            for coord in h_path:
                if coord in v_sites:
                    nodes[(v_index, h_index)] = coord
                    break
    return nodes


@given(carving_cases())
@settings(max_examples=25, deadline=None)
def test_intersections_map_matches_quadratic_reference(case):
    """The coord->v_index intersection map must pin the exact node_sites of
    the old quadratic scan — values *and* insertion order."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    expected = _intersections_quadratic(
        result.vertical_paths, result.horizontal_paths
    )
    actual = _intersections(result.vertical_paths, result.horizontal_paths)
    assert actual == expected
    assert list(actual) == list(expected)


def test_intersections_first_site_along_horizontal_path():
    """"First shared site" means first along the *horizontal* path, even
    when that path walks high-index verticals before low-index ones."""
    v0 = [(0, 1), (1, 1), (2, 1)]
    v1 = [(0, 3), (1, 3), (2, 3)]
    h0 = [(1, 4), (1, 3), (1, 2), (1, 1)]  # meets v1 before v0
    nodes = _intersections([v0, v1], [h0])
    assert nodes == {(0, 0): (1, 1), (1, 0): (1, 3)}
    assert list(nodes) == [(0, 0), (1, 0)]


@given(carving_cases())
@settings(max_examples=30, deadline=None)
def test_visited_work_scales_with_lattice(case):
    """The Fig. 14 cost proxy is positive and bounded by a small multiple of
    the lattice area (the O(N^2) claim of Section 5.1)."""
    size, target, probability, seed = case
    lattice = sample_lattice(size, probability, rng=np.random.default_rng(seed))
    result = renormalize(lattice, target)
    assert result.visited_sites > 0
    assert result.visited_sites <= 6 * size * size * max(1, target)
