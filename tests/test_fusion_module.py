"""Tests for fusion classification/semantics and star resource states."""

import numpy as np
import pytest

from repro.errors import GraphStateError, HardwareError
from repro.graphstate import (
    GraphState,
    ResourceStateSpec,
    apply_fusion,
    apply_fusion_sampled,
    classify_fusion,
    emit_star,
    make_star,
)


def two_stars():
    graph = GraphState()
    for leaf in (1, 2, 3):
        graph.add_edge(0, leaf)
    for leaf in (5, 6, 7):
        graph.add_edge(4, leaf)
    return graph


class TestClassification:
    def test_leaf_leaf(self):
        assert classify_fusion(two_stars(), 1, 5) == "leaf-leaf"

    def test_root_leaf(self):
        assert classify_fusion(two_stars(), 0, 5) == "root-leaf"

    def test_root_root(self):
        assert classify_fusion(two_stars(), 0, 4) == "root-root"


class TestApplyFusion:
    def test_both_qubits_consumed(self):
        graph = two_stars()
        apply_fusion(graph, 1, 5, True)
        assert 1 not in graph and 5 not in graph

    def test_self_fusion_rejected(self):
        with pytest.raises(GraphStateError):
            apply_fusion(two_stars(), 1, 1, True)

    def test_adjacent_fusion_rejected(self):
        with pytest.raises(GraphStateError):
            apply_fusion(two_stars(), 0, 1, True)

    def test_success_records_outcome(self):
        outcome = apply_fusion(two_stars(), 1, 5, True)
        assert outcome.success and outcome.kind == "leaf-leaf"

    def test_sampled_probability_zero_always_fails(self):
        rng = np.random.default_rng(0)
        graph = two_stars()
        outcome = apply_fusion_sampled(graph, 1, 5, 0.0, rng)
        assert not outcome.success

    def test_sampled_probability_one_always_succeeds(self):
        rng = np.random.default_rng(0)
        outcome = apply_fusion_sampled(two_stars(), 1, 5, 1.0, rng)
        assert outcome.success

    def test_sampled_probability_out_of_range(self):
        with pytest.raises(GraphStateError):
            apply_fusion_sampled(two_stars(), 1, 5, 1.5, np.random.default_rng(0))

    def test_sampled_rate_is_about_right(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(400):
            graph = two_stars()
            hits += apply_fusion_sampled(graph, 1, 5, 0.75, rng).success
        assert 0.65 < hits / 400 < 0.85


class TestResourceStateSpec:
    def test_default_size(self):
        spec = ResourceStateSpec()
        assert spec.size == 4
        assert spec.leaf_count == 3
        assert spec.max_degree == 3

    def test_too_small_rejected(self):
        with pytest.raises(HardwareError):
            ResourceStateSpec(1)

    def test_sufficiency_for_lattices(self):
        assert ResourceStateSpec(7).sufficient_for_lattice(6)
        assert not ResourceStateSpec(4).sufficient_for_lattice(6)
        assert ResourceStateSpec(5).sufficient_for_lattice(4)

    def test_merges_needed_matches_fig7c(self):
        # Two 4-degree (5-qubit) stars merge to a 7-degree state: one merge
        # suffices for a 3D lattice.
        assert ResourceStateSpec(5).merges_needed_for_degree(6) == 2
        # 4-qubit stars (degree 3): 3 -> 5 -> 7, so three stars.
        assert ResourceStateSpec(4).merges_needed_for_degree(6) == 3
        # 7-qubit stars natively suffice.
        assert ResourceStateSpec(7).merges_needed_for_degree(6) == 1

    def test_merged_degree_arithmetic(self):
        """A successful root-leaf fusion of degree-da and degree-db stars
        yields degree da + db - 1 (paper: 4 + 4 -> 7)."""
        graph = GraphState()
        make_star(graph, "rootA", [f"a{k}" for k in range(4)])
        make_star(graph, "rootB", [f"b{k}" for k in range(4)])
        apply_fusion(graph, "a0", "rootB", True)
        assert graph.degree("rootA") == 7


class TestStarBuilders:
    def test_make_star_structure(self):
        graph = GraphState()
        star = make_star(graph, "r", ["l1", "l2"])
        assert graph.degree("r") == 2
        assert star.size == 3
        assert star.qubits == ["r", "l1", "l2"]

    def test_make_star_needs_leaves(self):
        with pytest.raises(HardwareError):
            make_star(GraphState(), "r", [])

    def test_emit_star_node_ids(self):
        graph = GraphState()
        star = emit_star(graph, ResourceStateSpec(4), tag=(0, 1, 2))
        assert star.root == ((0, 1, 2), 0)
        assert len(star.leaves) == 3
        assert graph.node_count == 4
