"""Tests for the hardware model: config, fusion device, delay lines, RSGs."""

import pytest

from repro.errors import HardwareError
from repro.graphstate import ResourceStateSpec
from repro.hardware import (
    DelayLineBank,
    FusionDevice,
    FusionTally,
    HardwareConfig,
    RSGArray,
)


class TestHardwareConfig:
    def test_defaults(self):
        config = HardwareConfig()
        assert config.rsl_size == 48
        assert config.fusion_success_rate == 0.75
        assert config.photon_lifetime == 5000

    def test_validation(self):
        with pytest.raises(HardwareError):
            HardwareConfig(rsl_size=1)
        with pytest.raises(HardwareError):
            HardwareConfig(fusion_success_rate=0.0)
        with pytest.raises(HardwareError):
            HardwareConfig(photon_loss_rate=1.0)
        with pytest.raises(HardwareError):
            HardwareConfig(photon_lifetime=0)

    def test_effective_rate_with_loss(self):
        config = HardwareConfig(fusion_success_rate=0.8, photon_loss_rate=0.1)
        assert config.effective_fusion_rate == pytest.approx(0.8 * 0.81)

    def test_merging_plan_4_qubit_stars(self):
        config = HardwareConfig(resource_state=ResourceStateSpec(4))
        assert config.merged_rsls_per_layer == 3
        assert config.site_degree == 7
        assert config.redundant_degree == 1

    def test_merging_plan_7_qubit_stars(self):
        config = HardwareConfig(resource_state=ResourceStateSpec(7))
        assert config.merged_rsls_per_layer == 1
        assert config.site_degree == 6
        assert config.redundant_degree == 0

    def test_sites_per_rsl(self):
        assert HardwareConfig(rsl_size=10).sites_per_rsl == 100


class TestFusionDevice:
    def test_rate_validation(self):
        with pytest.raises(HardwareError):
            FusionDevice(0.0)

    def test_attempt_counts(self):
        device = FusionDevice(1.0, rng=0)
        assert device.attempt() is True
        assert device.tally.attempted == 1
        assert device.tally.succeeded == 1

    def test_batch_shape_and_tally(self):
        device = FusionDevice(0.5, rng=0)
        outcomes = device.attempt_batch(100, "temporal")
        assert outcomes.shape == (100,)
        assert device.tally.by_kind["temporal"] == 100

    def test_grid_sampling(self):
        device = FusionDevice(0.5, rng=0)
        outcomes = device.attempt_grid((8, 9), "leaf-leaf")
        assert outcomes.shape == (8, 9)
        assert device.tally.attempted == 72

    def test_negative_batch_rejected(self):
        with pytest.raises(HardwareError):
            FusionDevice(0.5).attempt_batch(-1)

    def test_empirical_rate(self):
        device = FusionDevice(0.75, rng=3)
        device.attempt_batch(4000)
        assert abs(device.tally.observed_rate - 0.75) < 0.03

    def test_retries(self):
        device = FusionDevice(1.0, rng=0)
        success, attempts = device.attempt_with_retries(3, "leaf-leaf")
        assert success and attempts == 1
        always_fail = FusionDevice(1e-12, rng=0)
        success, attempts = always_fail.attempt_with_retries(2, "leaf-leaf")
        assert not success and attempts == 3

    def test_tally_merge(self):
        a = FusionTally()
        a.record("x", 10, 7)
        b = FusionTally()
        b.record("x", 5, 5)
        b.record("y", 1, 0)
        a.merge(b)
        assert a.attempted == 16
        assert a.by_kind == {"x": 15, "y": 1}
        assert a.failed == 4

    def test_empty_tally_rate_is_nan(self):
        assert FusionTally().observed_rate != FusionTally().observed_rate


class TestDelayLines:
    def test_store_and_retrieve(self):
        bank = DelayLineBank(photon_lifetime=10)
        bank.store("node", qubit_count=4)
        assert bank.stored_qubits == 4
        entry = bank.retrieve("node")
        assert entry.qubit_count == 4
        assert len(bank) == 0

    def test_double_store_rejected(self):
        bank = DelayLineBank(10)
        bank.store("a")
        with pytest.raises(HardwareError):
            bank.store("a")

    def test_retrieve_missing_rejected(self):
        with pytest.raises(HardwareError):
            DelayLineBank(10).retrieve("ghost")

    def test_capacity(self):
        bank = DelayLineBank(10, capacity=3)
        bank.store("a", qubit_count=2)
        with pytest.raises(HardwareError):
            bank.store("b", qubit_count=2)

    def test_lifetime_expiry(self):
        bank = DelayLineBank(photon_lifetime=5)
        bank.store("a")
        expired = bank.advance(6)
        assert [entry.key for entry in expired] == ["a"]
        assert "a" not in bank

    def test_retrieve_expired_raises(self):
        bank = DelayLineBank(photon_lifetime=5)
        bank.store("a")
        bank.cycle += 6  # advance without sweeping
        with pytest.raises(HardwareError):
            bank.retrieve("a")

    def test_advance_backwards_rejected(self):
        with pytest.raises(HardwareError):
            DelayLineBank(10).advance(-1)

    def test_keys_order(self):
        bank = DelayLineBank(10)
        bank.store("x")
        bank.store("y")
        assert bank.keys() == ["x", "y"]


class TestRSGArray:
    def test_emit_layers_sequential(self):
        array = RSGArray(HardwareConfig(rsl_size=4))
        assert array.emit_layer().index == 0
        assert array.emit_layer().index == 1

    def test_layer_graph_build(self):
        config = HardwareConfig(rsl_size=2, resource_state=ResourceStateSpec(4))
        layer = RSGArray(config).emit_layer()
        graph, stars = layer.build_graph()
        assert len(stars) == 4
        assert graph.node_count == 16  # 4 sites x 4 qubits

    def test_merge_no_op_for_7_qubit_stars(self):
        config = HardwareConfig(rsl_size=4, resource_state=ResourceStateSpec(7))
        device = FusionDevice(0.75, rng=0)
        result = RSGArray(config).merge_layers(device)
        assert result.merge_fusions == 0
        assert result.alive.all()
        assert (result.degrees == 6).all()

    def test_merge_perfect_fusions(self):
        config = HardwareConfig(rsl_size=3, resource_state=ResourceStateSpec(4))
        device = FusionDevice(1.0, rng=0)
        result = RSGArray(config).merge_layers(device)
        assert result.alive.all()
        # 3 -> 3-1+3=5 -> 5-1+3=7, with exactly 2 fusions per site.
        assert (result.degrees == 7).all()
        assert result.merge_fusions == 2 * 9

    def test_merge_with_failures_kills_some_sites(self):
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(4))
        device = FusionDevice(0.5, rng=1)
        result = RSGArray(config).merge_layers(device)
        assert not result.alive.all()
        assert result.alive.any()
        assert (result.degrees[result.alive] >= 1).all()
