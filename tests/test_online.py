"""Tests for the online passes: percolation, renormalization, modularity,
fusion strategy, and the time-like reshaper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HardwareError, RenormalizationError
from repro.graphstate import ResourceStateSpec
from repro.hardware import FusionDevice, HardwareConfig
from repro.online import (
    LayerDemand,
    OnlineReshaper,
    effective_bond_probability,
    form_layer,
    modular_renormalize,
    renormalize,
    sample_lattice,
    spanning_probability,
)
from repro.online.modular import ModularLayout


class TestPercolatedLattice:
    def test_sampling_shapes(self):
        lattice = sample_lattice(5, 0.5, rng=0)
        assert lattice.size == 5
        assert lattice.horizontal.shape == (5, 4)
        assert lattice.vertical.shape == (4, 5)

    def test_probability_bounds(self):
        with pytest.raises(RenormalizationError):
            sample_lattice(5, 1.5)
        with pytest.raises(RenormalizationError):
            sample_lattice(0, 0.5)

    def test_full_probability_fully_connected(self):
        lattice = sample_lattice(4, 1.0, rng=0)
        assert lattice.largest_cluster_fraction() == 1.0

    def test_zero_probability_isolated(self):
        lattice = sample_lattice(4, 0.0, rng=0)
        assert lattice.largest_cluster_fraction() == pytest.approx(1 / 16)

    def test_dead_sites_break_bonds(self):
        alive = np.ones((3, 3), dtype=bool)
        alive[1, 1] = False
        lattice = sample_lattice(3, 1.0, rng=0, site_alive=alive)
        assert not lattice.has_bond((1, 0), (1, 1))
        assert list(lattice.neighbors((1, 1))) == []

    def test_non_adjacent_bond_query_raises(self):
        lattice = sample_lattice(3, 1.0, rng=0)
        with pytest.raises(RenormalizationError):
            lattice.has_bond((0, 0), (2, 2))

    def test_remove_site(self):
        lattice = sample_lattice(3, 1.0, rng=0)
        lattice.remove_site((0, 0))
        assert not lattice.sites[0, 0]

    def test_copy_independent(self):
        lattice = sample_lattice(3, 1.0, rng=0)
        clone = lattice.copy()
        clone.remove_site((0, 0))
        assert lattice.sites[0, 0]

    @given(st.integers(2, 8), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_cluster_fraction_in_unit_interval(self, size, probability):
        lattice = sample_lattice(size, probability, rng=1)
        assert 0.0 <= lattice.largest_cluster_fraction() <= 1.0

    def test_percolation_threshold_bracketing(self):
        """Spanning probability is small below p=1/2 and large above [40]."""
        low = spanning_probability(16, 0.30, trials=40, rng=2)
        high = spanning_probability(16, 0.70, trials=40, rng=2)
        assert low < 0.25
        assert high > 0.75


class TestRenormalize:
    def test_perfect_lattice_always_succeeds(self):
        lattice = sample_lattice(12, 1.0, rng=0)
        result = renormalize(lattice, 3)
        assert result.success
        assert result.lattice_size == 3
        assert len(result.node_sites) == 9
        assert len(result.vertical_paths) == 3
        assert len(result.horizontal_paths) == 3

    def test_dead_lattice_fails(self):
        lattice = sample_lattice(12, 0.0, rng=0)
        result = renormalize(lattice, 3)
        assert not result.success

    def test_target_validation(self):
        lattice = sample_lattice(6, 1.0, rng=0)
        with pytest.raises(RenormalizationError):
            renormalize(lattice, 0)
        with pytest.raises(RenormalizationError):
            renormalize(lattice, 7)

    def test_paths_span_the_lattice(self):
        lattice = sample_lattice(16, 0.9, rng=1)
        result = renormalize(lattice, 2)
        assert result.success
        for path in result.vertical_paths:
            rows = {coord[0] for coord in path}
            assert 0 in rows and 15 in rows
        for path in result.horizontal_paths:
            cols = {coord[1] for coord in path}
            assert 0 in cols and 15 in cols

    def test_paths_use_open_bonds_only(self):
        lattice = sample_lattice(16, 0.85, rng=3)
        snapshot = lattice.copy()
        result = renormalize(lattice, 2)
        if not result.success:
            pytest.skip("unlucky sample")
        for path in result.vertical_paths + result.horizontal_paths:
            for a, b in zip(path, path[1:]):
                assert snapshot.has_bond(a, b)

    def test_intersections_lie_on_both_paths(self):
        lattice = sample_lattice(16, 0.9, rng=5)
        result = renormalize(lattice, 2)
        if not result.success:
            pytest.skip("unlucky sample")
        for (v_index, h_index), coord in result.node_sites.items():
            assert coord in result.vertical_paths[v_index]
            assert coord in result.horizontal_paths[h_index]

    def test_success_monotone_in_node_size(self):
        """Coarser nodes succeed at least as often (statistically)."""
        rng = np.random.default_rng(7)
        fine = sum(
            renormalize(sample_lattice(24, 0.72, rng), 6).success for _ in range(20)
        )
        coarse = sum(
            renormalize(sample_lattice(24, 0.72, rng), 2).success for _ in range(20)
        )
        assert coarse >= fine

    def test_work_budget_truncates(self):
        lattice = sample_lattice(24, 0.9, rng=0)
        result = renormalize(lattice, 4, work_budget=10)
        assert not result.success
        assert result.visited_sites >= 10

    def test_average_node_size(self):
        lattice = sample_lattice(12, 1.0, rng=0)
        result = renormalize(lattice, 3)
        assert result.average_node_size == pytest.approx(4.0)


class TestModular:
    def test_layout_fit(self):
        layout = ModularLayout.fit(96, 4, 7.0)
        assert layout.modules_per_side == 2
        assert layout.num_modules == 4
        assert 2 * layout.module_size + layout.interval <= 96
        assert layout.module_size / max(1, layout.interval) == pytest.approx(
            7.0, rel=0.5
        )

    def test_layout_rejects_non_square(self):
        with pytest.raises(RenormalizationError):
            ModularLayout.fit(96, 5, 7.0)

    def test_layout_rejects_bad_ratio(self):
        with pytest.raises(RenormalizationError):
            ModularLayout.fit(96, 4, 0.0)

    def test_single_module_layout(self):
        layout = ModularLayout.fit(48, 1, 7.0)
        assert layout.module_size == 48
        assert layout.interval == 0

    def test_perfect_lattice_modular(self):
        lattice = sample_lattice(48, 1.0, rng=0)
        result = modular_renormalize(lattice, node_size=6, num_modules=4, mi_ratio=7.0)
        assert result.success
        assert result.surviving_rows == result.surviving_cols
        assert result.node_count == result.surviving_rows**2

    def test_modular_wall_less_than_total(self):
        lattice = sample_lattice(48, 0.8, rng=1)
        result = modular_renormalize(lattice, node_size=8, num_modules=4, mi_ratio=7.0)
        assert result.wall_visited_sites <= result.total_visited_sites

    def test_modular_yield_below_non_modular(self):
        """Interval overhead: the modular lattice is smaller on average."""
        rng = np.random.default_rng(4)
        modular_nodes = 0.0
        full_nodes = 0.0
        for _ in range(5):
            lattice = sample_lattice(60, 0.85, rng)
            full = renormalize(lattice.copy(), 60 // 10)
            full_nodes += full.lattice_size**2
            modular = modular_renormalize(lattice, 10, 4, 7.0)
            modular_nodes += modular.node_count
        assert modular_nodes < full_nodes


class TestFusionStrategy:
    def test_form_layer_accounting(self):
        config = HardwareConfig(rsl_size=8, resource_state=ResourceStateSpec(7))
        device = FusionDevice(1.0, rng=0)
        formation = form_layer(config, device)
        assert formation.rsls_used == 1
        assert formation.merge_fusions == 0
        assert formation.spatial_fusions == 2 * 8 * 7
        assert formation.lattice.largest_cluster_fraction() == 1.0
        # 7-qubit stars: 6 degrees, 4 spatial + 2 temporal, no redundancy.
        assert (formation.temporal_budget == 2).all()

    def test_form_layer_with_merging(self):
        config = HardwareConfig(rsl_size=8, resource_state=ResourceStateSpec(4))
        device = FusionDevice(1.0, rng=0)
        formation = form_layer(config, device)
        assert formation.rsls_used == 3
        assert formation.merge_fusions == 2 * 64
        # Degree 7 = 4 spatial + 2 temporal + 1 redundant.
        assert (formation.temporal_budget == 3).all()

    def test_retries_consume_redundancy(self):
        config = HardwareConfig(rsl_size=16, resource_state=ResourceStateSpec(4))
        device = FusionDevice(0.5, rng=2)
        formation = form_layer(config, device)
        assert formation.spatial_retries > 0
        assert formation.spatial_fusions > 2 * 16 * 15  # retries add attempts

    def test_effective_bond_probability(self):
        with_redundancy = HardwareConfig(resource_state=ResourceStateSpec(4))
        assert effective_bond_probability(with_redundancy) == pytest.approx(
            1 - 0.25**2
        )
        without = HardwareConfig(resource_state=ResourceStateSpec(7))
        assert effective_bond_probability(without) == pytest.approx(0.75)

    def test_retry_improves_connectivity(self):
        """Empirical bond rate with redundancy beats the raw fusion rate."""
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(5))
        device = FusionDevice(0.75, rng=5)
        formation = form_layer(config, device)
        open_bonds = formation.lattice.horizontal.sum() + formation.lattice.vertical.sum()
        total_bonds = 2 * 24 * 23
        assert open_bonds / total_bonds > 0.8  # ~0.94 expected


class TestOnlineReshaper:
    def test_validation(self):
        config = HardwareConfig(rsl_size=8)
        with pytest.raises(HardwareError):
            OnlineReshaper(config, virtual_size=0)
        with pytest.raises(HardwareError):
            OnlineReshaper(config, virtual_size=9)

    def test_produces_requested_layers(self):
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(7))
        reshaper = OnlineReshaper(config, virtual_size=2, rng=0)
        metrics = reshaper.run([LayerDemand(1, 0)] * 4)
        assert metrics.logical_layers == 4
        assert metrics.rsl_consumed >= 4
        assert metrics.fusions > 0
        assert metrics.rsl_consumed == metrics.logical_layers + metrics.routing_layers

    def test_pl_ratio_at_least_merge_factor(self):
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(4))
        reshaper = OnlineReshaper(config, virtual_size=2, rng=1)
        metrics = reshaper.run([LayerDemand(1, 1)] * 3)
        assert metrics.pl_ratio >= config.merged_rsls_per_layer

    def test_demand_too_large_raises(self):
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(7))
        reshaper = OnlineReshaper(config, virtual_size=2, rng=0)
        with pytest.raises(HardwareError):
            reshaper.run([LayerDemand(adjacent_connections=5)])

    def test_max_rsl_cap(self):
        config = HardwareConfig(
            rsl_size=8, resource_state=ResourceStateSpec(7), fusion_success_rate=0.4
        )
        reshaper = OnlineReshaper(config, virtual_size=4, rng=0, max_rsl=20)
        with pytest.raises(HardwareError):
            reshaper.run([LayerDemand(0, 0)])

    def test_empty_demand_list(self):
        config = HardwareConfig(rsl_size=16)
        metrics = OnlineReshaper(config, virtual_size=2, rng=0).run([])
        assert metrics.rsl_consumed == 0
        assert metrics.pl_ratio != metrics.pl_ratio  # NaN
