"""Tests for the graph state structure and its rewrite rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphStateError
from repro.graphstate import GraphState


def star(leaves=3, offset=0):
    graph = GraphState()
    for leaf in range(1, leaves + 1):
        graph.add_edge(offset, offset + leaf)
    return graph


def random_graph(num_nodes: int, edge_bits: int) -> GraphState:
    """Deterministic graph from a bitmask over the edge list."""
    graph = GraphState()
    for node in range(num_nodes):
        graph.add_node(node)
    index = 0
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (edge_bits >> index) & 1:
                graph.add_edge(i, j)
            index += 1
    return graph


graphs = st.builds(
    random_graph, st.integers(2, 7), st.integers(0, 2**21 - 1)
)


class TestStructure:
    def test_empty(self):
        graph = GraphState()
        assert graph.node_count == 0
        assert graph.edge_count == 0

    def test_add_edge_creates_nodes(self):
        graph = GraphState()
        graph.add_edge("a", "b")
        assert graph.node_count == 2
        assert graph.has_edge("a", "b")

    def test_add_edge_idempotent(self):
        graph = GraphState([("a", "b"), ("a", "b")])
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphStateError):
            GraphState([("a", "a")])

    def test_toggle_edge(self):
        graph = GraphState()
        graph.add_node(1)
        graph.add_node(2)
        graph.toggle_edge(1, 2)
        assert graph.has_edge(1, 2)
        graph.toggle_edge(1, 2)
        assert not graph.has_edge(1, 2)

    def test_remove_edge_missing_raises(self):
        graph = GraphState()
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(GraphStateError):
            graph.remove_edge(1, 2)

    def test_neighbors_copy_isolated(self):
        graph = star()
        nbrs = graph.neighbors(0)
        nbrs.add("junk")
        assert "junk" not in graph.neighbors(0)

    def test_degree(self):
        graph = star(4)
        assert graph.degree(0) == 4
        assert graph.degree(1) == 1

    def test_unknown_node_raises(self):
        with pytest.raises(GraphStateError):
            GraphState().degree("missing")

    def test_remove_node_cleans_edges(self):
        graph = star(3)
        graph.remove_node(0)
        assert graph.node_count == 3
        assert graph.edge_count == 0

    def test_edges_reported_once(self):
        graph = GraphState([(1, 2), (2, 3), (3, 1)])
        assert len(graph.edges()) == 3

    def test_copy_is_independent(self):
        graph = star()
        clone = graph.copy()
        clone.remove_node(0)
        assert graph.node_count == 4

    def test_relabeled(self):
        graph = GraphState([(0, 1)])
        relabeled = graph.relabeled({0: "x", 1: "y"})
        assert relabeled.has_edge("x", "y")

    def test_relabeled_collision_raises(self):
        graph = GraphState([(0, 1)])
        with pytest.raises(GraphStateError):
            graph.relabeled({0: "x", 1: "x"})

    def test_equality(self):
        assert GraphState([(0, 1)]) == GraphState([(1, 0)])
        assert GraphState([(0, 1)]) != GraphState([(0, 2)])

    def test_subgraph(self):
        graph = GraphState([(0, 1), (1, 2), (2, 0)])
        sub = graph.subgraph([0, 1])
        assert sub.node_count == 2
        assert sub.has_edge(0, 1)

    def test_subgraph_unknown_node(self):
        with pytest.raises(GraphStateError):
            GraphState([(0, 1)]).subgraph([5])

    def test_connected_components_sorted_by_size(self):
        graph = GraphState([(0, 1), (1, 2), (10, 11)])
        components = graph.connected_components()
        assert len(components[0]) == 3
        assert len(components[1]) == 2

    def test_largest_component_includes_isolated(self):
        graph = GraphState()
        graph.add_node("solo")
        assert graph.largest_component() == {"solo"}


class TestRewriteRules:
    def test_local_complement_star_becomes_clique_plus_star(self):
        graph = star(3)
        graph.local_complement(0)
        # Neighbours of the root become fully connected.
        for a in (1, 2, 3):
            for b in (1, 2, 3):
                if a != b:
                    assert graph.has_edge(a, b)
        # Root edges are untouched.
        for leaf in (1, 2, 3):
            assert graph.has_edge(0, leaf)

    def test_local_complement_on_leaf_is_trivial(self):
        graph = star(3)
        before = graph.copy()
        graph.local_complement(1)
        assert graph == before

    def test_measure_z_removes_node(self):
        graph = star(3)
        graph.measure_z(0)
        assert 0 not in graph
        assert graph.edge_count == 0

    def test_measure_y_is_lc_then_delete(self):
        graph = star(3)
        reference = graph.copy()
        reference.local_complement(0)
        reference.remove_node(0)
        graph.measure_y(0)
        assert graph == reference

    def test_measure_x_isolated_node(self):
        graph = GraphState()
        graph.add_node("q")
        graph.measure_x("q")
        assert "q" not in graph

    def test_measure_x_invalid_special_neighbor(self):
        graph = star(3)
        with pytest.raises(GraphStateError):
            graph.measure_x(0, special_neighbor=99)

    def test_measure_x_on_wire_contracts(self):
        """X-measuring the middle of a 3-chain leaves the ends connected."""
        graph = GraphState([(0, 1), (1, 2)])
        graph.measure_x(1)
        assert graph.has_edge(0, 2)
        assert graph.node_count == 2

    @given(graphs, st.integers(0, 6))
    @settings(max_examples=80, deadline=None)
    def test_local_complement_is_involution(self, graph, node):
        if node not in graph:
            return
        reference = graph.copy()
        graph.local_complement(node)
        graph.local_complement(node)
        assert graph == reference

    @given(graphs, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_measurements_only_shrink(self, graph, node):
        if node not in graph:
            return
        before = graph.node_count
        graph.measure_y(node)
        assert graph.node_count == before - 1

    @given(graphs, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_local_complement_preserves_degree_of_target(self, graph, node):
        """tau_v never changes v's own neighbourhood."""
        if node not in graph:
            return
        before = graph.neighbors(node)
        graph.local_complement(node)
        assert graph.neighbors(node) == before
