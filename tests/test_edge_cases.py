"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.circuits import Circuit, qaoa
from repro.compiler import OnePercCompiler
from repro.errors import (
    CircuitError,
    GraphStateError,
    HardwareError,
    RenormalizationError,
)
from repro.graphstate import GraphState, ResourceStateSpec, Tableau
from repro.hardware import FusionDevice, HardwareConfig
from repro.mbqc import translate_circuit
from repro.online import (
    LayerDemand,
    OnlineReshaper,
    PercolatedLattice,
    modular_renormalize,
    renormalize,
    sample_lattice,
)
from repro.online.modular import ModularLayout


class TestDegenerateLattices:
    def test_one_by_one_lattice(self):
        lattice = sample_lattice(1, 0.5, rng=0)
        assert lattice.size == 1
        assert lattice.largest_cluster_fraction() == 1.0
        result = renormalize(lattice, 1)
        assert result.success  # the single site is its own coarse node

    def test_two_by_two_all_open(self):
        lattice = sample_lattice(2, 1.0, rng=0)
        result = renormalize(lattice, 1)
        assert result.success
        assert len(result.node_sites) == 1

    def test_malformed_lattice_shapes_rejected(self):
        with pytest.raises(RenormalizationError):
            PercolatedLattice(
                sites=np.ones((3, 3), dtype=bool),
                horizontal=np.ones((3, 3), dtype=bool),  # wrong: should be (3,2)
                vertical=np.ones((2, 3), dtype=bool),
            )

    def test_single_row_of_dead_sites_blocks_vertical(self):
        lattice = sample_lattice(6, 1.0, rng=0)
        lattice.sites[3, :] = False  # a dead wall across the lattice
        result = renormalize(lattice, 2)
        assert not result.success


class TestModularEdges:
    def test_one_module_equals_whole_lattice(self):
        layout = ModularLayout.fit(30, 1, 5.0)
        assert layout.module_size == 30

    def test_too_many_modules_rejected(self):
        with pytest.raises(RenormalizationError):
            ModularLayout.fit(8, 16, 7.0)  # modules would be ~1 site wide

    def test_modular_on_dead_lattice(self):
        lattice = sample_lattice(48, 0.0, rng=0)
        result = modular_renormalize(lattice, 6, 4, 7.0)
        assert not result.success
        assert result.node_count == 0


class TestReshaperFailureInjection:
    def test_all_fusions_fail(self):
        config = HardwareConfig(
            rsl_size=8,
            resource_state=ResourceStateSpec(7),
            fusion_success_rate=1e-9,
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=0, max_rsl=30)
        with pytest.raises(HardwareError):
            reshaper.run([LayerDemand(0, 0)])

    def test_perfect_fusions_minimal_consumption(self):
        config = HardwareConfig(
            rsl_size=12, resource_state=ResourceStateSpec(7), fusion_success_rate=1.0
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=0)
        metrics = reshaper.run([LayerDemand(1, 0)] * 3)
        assert metrics.rsl_consumed == 3  # one RSL per logical layer
        assert metrics.routing_layers == 0

    def test_merged_stars_consume_multiple_rsls_each(self):
        config = HardwareConfig(
            rsl_size=12, resource_state=ResourceStateSpec(4), fusion_success_rate=1.0
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=0)
        metrics = reshaper.run([LayerDemand(0, 0)] * 2)
        assert metrics.rsl_consumed == 6  # 3 merged RSLs per layer


class TestCompilerConfigErrors:
    def test_zero_rate_rejected_at_hardware_level(self):
        compiler = OnePercCompiler(fusion_success_rate=0.0)
        with pytest.raises(HardwareError):
            compiler.compile(qaoa(4, seed=0))

    def test_virtual_bigger_than_rsl_rejected(self):
        compiler = OnePercCompiler(rsl_size=4, virtual_size=8)
        with pytest.raises(HardwareError):
            compiler.compile(qaoa(4, seed=0))

    def test_single_gate_program(self):
        circuit = Circuit(2, name="tiny")
        circuit.cz(0, 1)
        compiler = OnePercCompiler(
            fusion_success_rate=0.9, rsl_size=24, virtual_size=2, seed=0
        )
        result = compiler.compile(circuit)
        assert result.rsl_count >= result.logical_layers >= 1


class TestPatternEdges:
    def test_identity_circuit_pattern(self):
        """A circuit with no gates: inputs are the outputs, nothing measured."""
        pattern = translate_circuit(Circuit(2, name="idle"))
        assert pattern.inputs == pattern.outputs
        assert pattern.measured_count == 0
        assert pattern.flow_order() == []

    def test_cz_only_circuit(self):
        circuit = Circuit(2)
        circuit.cz(0, 1)
        pattern = translate_circuit(circuit)
        assert pattern.graph.edge_count == 1
        assert pattern.measured_count == 0


class TestGraphStateEdges:
    def test_fusion_on_missing_qubits(self):
        from repro.graphstate import apply_fusion

        graph = GraphState()
        graph.add_node("a")
        with pytest.raises(GraphStateError):
            apply_fusion(graph, "a", "ghost", True)

    def test_tableau_single_qubit(self):
        tableau = Tableau(1)
        assert tableau.measure_letter(0, "Z") == 0  # |0> is Z-definite

    def test_tableau_zero_qubits_rejected(self):
        with pytest.raises(GraphStateError):
            Tableau(0)

    def test_circuit_gate_on_missing_wire(self):
        with pytest.raises(CircuitError):
            Circuit(1).cz(0, 1)


class TestFusionDeviceDeterminism:
    def test_same_seed_same_outcomes(self):
        a = FusionDevice(0.6, rng=9).attempt_batch(50)
        b = FusionDevice(0.6, rng=9).attempt_batch(50)
        assert (a == b).all()

    def test_different_kinds_share_stream(self):
        device = FusionDevice(0.6, rng=9)
        device.attempt_batch(10, "leaf-leaf")
        device.attempt_batch(10, "temporal")
        assert device.tally.attempted == 20
        assert set(device.tally.by_kind) == {"leaf-leaf", "temporal"}
