"""CLI surface of the pass ecosystem: --rewrite, --passes, and exit codes."""

import json

import pytest

from repro.cli import main
from repro.passes import pass_names
from repro.passes.validators import DIAGNOSTICS_SCHEMA_VERSION

COMPILE = ["compile", "--benchmark", "qaoa", "--qubits", "4", "--json"]


class TestRewriteFlag:
    def test_invalid_rewrite_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "--benchmark", "qaoa", "--qubits", "4",
                  "--rewrite", "sometimes"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--rewrite" in err
        assert "on" in err and "off" in err

    def test_rewrite_off_drops_the_pass(self, capsys):
        assert main(COMPILE + ["--rewrite", "off"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert "rewrite" not in record["pass_timings"]
        assert main(COMPILE) == 0
        default = json.loads(capsys.readouterr().out)
        assert "rewrite" in default["pass_timings"]

    def test_rewrite_off_matches_on_deterministically(self, capsys):
        """The golden-workload contract at CLI level: the default translate
        path is pre-simplified, so the rewrite finds nothing and both modes
        produce the same deterministic outcome."""
        assert main(COMPILE + ["--rewrite", "on"]) == 0
        on = json.loads(capsys.readouterr().out)
        assert main(COMPILE + ["--rewrite", "off"]) == 0
        off = json.loads(capsys.readouterr().out)
        for key in ("rsl_count", "fusion_count", "logical_layers"):
            assert on[key] == off[key]

    def test_experiment_rewrite_off_records_identical(self, capsys):
        code = main(["experiment", "--name", "fig14", "--json"])
        assert code == 0
        default = json.loads(capsys.readouterr().out)
        code = main(
            ["experiment", "--name", "fig14", "--json", "--rewrite", "off"]
        )
        assert code == 0
        off = json.loads(capsys.readouterr().out)
        assert [entry["fields"] for entry in default["records"]] == [
            entry["fields"] for entry in off["records"]
        ]


class TestPassesFlag:
    def test_unknown_pass_lists_registry_and_exits_2(self, capsys):
        code = main(COMPILE + ["--passes", "nope"])
        captured = capsys.readouterr()
        assert code == 2
        assert "nope" in captured.err
        for name in pass_names():
            assert name in captured.err

    def test_passing_validators_leave_compilation_unchanged(self, capsys):
        assert main(COMPILE) == 0
        plain = json.loads(capsys.readouterr().out)
        code = main(
            COMPILE + ["--passes", "validate-connectivity,validate-rsg"]
        )
        assert code == 0
        gated = json.loads(capsys.readouterr().out)
        assert gated["rsl_count"] == plain["rsl_count"]
        assert gated["fusion_count"] == plain["fusion_count"]

    def test_validator_rejection_prints_diagnostics_json(self, capsys):
        code = main(
            ["compile", "--benchmark", "qft", "--qubits", "25",
             "--virtual-size", "2", "--passes", "validate-connectivity"]
        )
        captured = capsys.readouterr()
        assert code == 2
        payload = json.loads(captured.out)
        assert payload["error"] == "validation"
        assert payload["schema"] == DIAGNOSTICS_SCHEMA_VERSION
        assert payload["validator"] == "validate-connectivity"
        rules = [d["rule"] for d in payload["diagnostics"]]
        assert "connectivity/width" in rules
        assert "rejected the program" in captured.err

    def test_baseline_runs_validators_too(self, capsys):
        code = main(
            ["baseline", "--benchmark", "qft", "--qubits", "25",
             "--virtual-size", "2", "--passes", "validate-connectivity"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert json.loads(captured.out)["error"] == "validation"

    def test_diagnostics_json_passes_schema_checker(self, capsys, tmp_path):
        """The CLI's failure output is exactly what CI's schema gate pins."""
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            from passes_schema import validate_diagnostics
        finally:
            sys.path.remove(str(bench_dir))
        code = main(
            ["compile", "--benchmark", "qft", "--qubits", "25",
             "--virtual-size", "2", "--passes", "validate-connectivity"]
        )
        assert code == 2
        capture = tmp_path / "diag.json"
        capture.write_text(capsys.readouterr().out)
        assert validate_diagnostics(capture) == []
