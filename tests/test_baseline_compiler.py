"""Tests for the OneQ baseline and the end-to-end OnePerc compiler."""

import pytest

from repro.baseline import (
    OneQLayerPlan,
    OneQPlan,
    RepeatUntilSuccessExecutor,
    expected_rsl,
    plan_oneq,
    plan_width_for,
)
from repro.circuits import make_benchmark, qaoa
from repro.compiler import (
    OnePercCompiler,
    rsl_size_for,
    virtual_size_for,
)
from repro.graphstate import ResourceStateSpec
from repro.hardware import HardwareConfig
from repro.mbqc import translate_circuit


def tiny_plan(intra=3, inter=1, depth=4):
    return OneQPlan(
        layers=[OneQLayerPlan(intra, inter) for _ in range(depth)],
        plan_width=4,
        node_count=depth,
    )


class TestOneQPlanner:
    def test_plan_width_scales_with_rsl(self):
        assert plan_width_for(HardwareConfig(rsl_size=12)) == 4
        assert plan_width_for(HardwareConfig(rsl_size=240)) == 12

    def test_plan_counts(self):
        pattern = translate_circuit(qaoa(4, seed=0))
        config = HardwareConfig(rsl_size=24, resource_state=ResourceStateSpec(4))
        plan = plan_oneq(pattern, config)
        assert plan.depth >= 1
        assert plan.total_fusions > 0
        # Merging contributes (m-1) root-leaf fusions per occupied site.
        assert sum(layer.intra_fusions for layer in plan.layers) >= 2 * plan.node_count

    def test_plan_has_inter_layer_fusions(self):
        pattern = translate_circuit(qaoa(4, seed=0))
        config = HardwareConfig(rsl_size=24)
        plan = plan_oneq(pattern, config)
        assert sum(layer.inter_fusions for layer in plan.layers) > 0


class TestRetryExecutor:
    def test_perfect_fusions_one_pass(self):
        executor = RepeatUntilSuccessExecutor(1.0, rng=0)
        result = executor.run(tiny_plan())
        assert result.rsl_count == 4
        assert result.restarts == 0
        assert not result.capped

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            RepeatUntilSuccessExecutor(0.0)

    def test_cap_reported(self):
        plan = tiny_plan(intra=5000, depth=1)  # p^5000 underflows to 0
        executor = RepeatUntilSuccessExecutor(0.75, rsl_cap=100, rng=0)
        result = executor.run(plan)
        assert result.capped
        assert result.rsl_count >= 100

    def test_cap_raises_when_requested(self):
        from repro.errors import BaselineExploded

        plan = tiny_plan(intra=5000, depth=1)
        executor = RepeatUntilSuccessExecutor(0.75, rsl_cap=100, rng=0)
        with pytest.raises(BaselineExploded):
            executor.run(plan, raise_on_cap=True)

    def test_monte_carlo_matches_expectation(self):
        plan = tiny_plan(intra=4, inter=1, depth=3)
        p = 0.9
        expectation = expected_rsl(plan, p)
        executor = RepeatUntilSuccessExecutor(p, rng=1)
        samples = [executor.run(plan).rsl_count for _ in range(400)]
        mean = sum(samples) / len(samples)
        assert abs(mean - expectation) / expectation < 0.25

    def test_expected_rsl_explodes_gracefully(self):
        plan = tiny_plan(intra=3000, depth=1)
        assert expected_rsl(plan, 0.75) > 10**12  # astronomically infeasible

    def test_lower_rate_consumes_more(self):
        plan = tiny_plan(intra=6, inter=1, depth=3)
        high = RepeatUntilSuccessExecutor(0.95, rng=2).run(plan).rsl_count
        low = RepeatUntilSuccessExecutor(0.75, rng=2).run(plan).rsl_count
        assert low > high


class TestSizing:
    def test_virtual_size_table1(self):
        assert virtual_size_for(4) == 2
        assert virtual_size_for(9) == 3
        assert virtual_size_for(25) == 5
        assert virtual_size_for(64) == 8
        assert virtual_size_for(100) == 10

    def test_virtual_size_non_square(self):
        assert virtual_size_for(10) == 4

    def test_rsl_size_table1(self):
        # Table 1: 4 qubits -> 24x24 at 0.90 and 48x48 at 0.75.
        assert rsl_size_for(4, 0.90) == 24
        assert rsl_size_for(4, 0.75) == 48
        assert rsl_size_for(25, 0.75) == 120
        assert rsl_size_for(100, 0.75) == 240


class TestOnePercCompiler:
    @pytest.fixture(scope="class")
    def result(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.75, resource_state_size=4, seed=3, max_rsl=10**5
        )
        return compiler.compile(make_benchmark("qaoa", 4, seed=1))

    def test_produces_positive_metrics(self, result):
        assert result.rsl_count > 0
        assert result.fusion_count > 0
        assert result.logical_layers == result.mapping.layer_count

    def test_pl_ratio_consistency(self, result):
        assert result.pl_ratio == pytest.approx(
            result.rsl_count / result.logical_layers
        )

    def test_online_time_per_rsl(self, result):
        assert result.online_seconds_per_rsl > 0

    def test_compile_baseline_runs(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.9, resource_state_size=4, seed=3, max_rsl=10**4
        )
        baseline = compiler.compile_baseline(make_benchmark("vqe", 4, seed=1))
        assert baseline.rsl_count > 0

    def test_oneq_explodes_at_practical_rate(self):
        """The paper's headline: OneQ hits the cap at p = 0.75."""
        compiler = OnePercCompiler(
            fusion_success_rate=0.75, resource_state_size=4, seed=0, max_rsl=5000
        )
        baseline = compiler.compile_baseline(make_benchmark("qft", 4))
        assert baseline.capped

    def test_oneperc_survives_practical_rate(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.75, resource_state_size=4, seed=0, max_rsl=10**5
        )
        result = compiler.compile(make_benchmark("qft", 4))
        assert result.rsl_count < 2000

    def test_instructions_emitted_on_request(self):
        compiler = OnePercCompiler(
            fusion_success_rate=0.9,
            resource_state_size=4,
            seed=1,
            max_rsl=10**5,
            emit_instructions=True,
        )
        result = compiler.compile(make_benchmark("qaoa", 4, seed=1))
        assert len(result.instructions) > 0

    def test_seeded_compilations_reproducible(self):
        def run():
            compiler = OnePercCompiler(
                fusion_success_rate=0.75, resource_state_size=4, seed=11, max_rsl=10**5
            )
            return compiler.compile(make_benchmark("qaoa", 4, seed=2))

        first, second = run(), run()
        assert first.rsl_count == second.rsl_count
        assert first.fusion_count == second.fusion_count
