"""Tests for the CLI ``experiment`` subcommand (moved out of
tests/test_viz_cli.py and extended).

Covers the registry-backed surface (--list, unknown names), the structured
outputs (--json, --out CSV/JSON round-trips against the in-memory records),
and the artifact-cache flags (--cache/--cache-dir, hit-rate reporting).
fig15 is the workhorse: it is the fastest registered experiment but has no
compile jobs, so cache-flag tests use fig14 (compile jobs on tiny RSLs).
"""

import csv
import json

import pytest

from repro.cli import main
from repro.experiments import run_experiment


class TestRegistrySurface:
    def test_list_names_registry(self, capsys):
        code = main(["experiment", "--list"])
        output = capsys.readouterr().out
        assert code == 0
        for name in ("table2", "fig12", "fig16", "loss"):
            assert name in output

    def test_unknown_name_lists_registry(self, capsys):
        code = main(["experiment", "--name", "fig99"])
        err = capsys.readouterr().err
        assert code == 2
        assert "fig99" in err
        for name in ("table2", "table3", "fig12", "fig13", "fig14", "fig15",
                     "fig16", "loss"):
            assert name in err

    def test_name_required_without_list(self, capsys):
        code = main(["experiment"])
        assert code == 2
        assert "--list" in capsys.readouterr().err


class TestStructuredOutputs:
    def test_json_records(self, capsys):
        code = main(
            ["experiment", "--name", "fig15", "--json", "--runner", "thread",
             "--workers", "2"]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["experiment"] == "fig15"
        assert record["runner"] == "thread"
        assert record["records"][0]["fields"]["logical_layers"] > 0
        assert record["cache"] == {"hits": 0, "misses": 0, "hit_rate": 0.0}

    def test_out_csv_round_trip(self, capsys, tmp_path):
        out = tmp_path / "fig15.csv"
        code = main(["experiment", "--name", "fig15", "--out", str(out)])
        assert code == 0
        assert "Fig. 15" in capsys.readouterr().out  # rendered table still prints
        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        reference = run_experiment("fig15", "bench", seed=0)
        assert len(rows) == len(reference.records)
        for row, record in zip(rows, reference.records):
            assert row["experiment"] == "fig15"
            assert row["job"] == record.job
            assert int(row["logical_layers"]) == record.fields["logical_layers"]

    def test_out_json_round_trip(self, tmp_path):
        out = tmp_path / "fig15.json"
        code = main(["experiment", "--name", "fig15", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        reference = run_experiment("fig15", "bench", seed=0)
        assert payload["experiment"] == "fig15"
        assert [entry["job"] for entry in payload["records"]] == [
            record.job for record in reference.records
        ]
        assert [entry["fields"] for entry in payload["records"]] == [
            record.fields for record in reference.records
        ]


class TestCacheFlags:
    def test_memory_cache_counts_in_json(self, capsys):
        code = main(["experiment", "--name", "fig14", "--json", "--cache", "memory"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        cache = payload["cache"]
        assert cache["misses"] > 0
        # The seed axis is flat within one run, but the 14(a) compile group
        # shares settings; at minimum the accounting must balance.
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
        compile_records = [
            entry for entry in payload["records"] if entry["metrics"]
        ]
        assert compile_records, "compile jobs must carry cache metrics"
        assert all(
            "cache_hits" in entry["metrics"] or "cache_misses" in entry["metrics"]
            for entry in compile_records
        )

    def test_disk_cache_warms_across_runs(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "artifacts")
        code = main(
            ["experiment", "--name", "fig14", "--json", "--cache", "disk",
             "--cache-dir", cache_dir]
        )
        cold = json.loads(capsys.readouterr().out)
        assert code == 0
        assert cold["cache"]["hits"] == 0
        assert cold["cache"]["misses"] > 0
        # --cache-dir alone implies --cache disk.
        code = main(
            ["experiment", "--name", "fig14", "--json", "--cache-dir", cache_dir]
        )
        warm = json.loads(capsys.readouterr().out)
        assert code == 0
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hits"] == cold["cache"]["misses"]
        assert warm["cache"]["hit_rate"] == 1.0
        # Deterministic fields are byte-identical either way.
        assert [entry["fields"] for entry in warm["records"]] == [
            entry["fields"] for entry in cold["records"]
        ]

    def test_hit_rate_reported_on_human_path(self, capsys):
        code = main(["experiment", "--name", "fig14", "--cache", "memory"])
        captured = capsys.readouterr()
        assert code == 0
        assert "cache (memory):" in captured.err
        assert "hit rate" in captured.err

    def test_disk_cache_requires_directory(self):
        with pytest.raises(SystemExit, match="--cache-dir"):
            main(["experiment", "--name", "fig15", "--cache", "disk"])


class TestStreamingFlags:
    def test_stream_jsonl_out_matches_blocking_records(self, capsys, tmp_path):
        out = tmp_path / "fig15.jsonl"
        code = main(["experiment", "--name", "fig15", "--stream", "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fig. 15" in captured.out  # rendered table still prints
        assert "streamed" in captured.err  # per-record progress on stderr
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        reference = run_experiment("fig15", "bench", seed=0)
        assert [line["job"] for line in lines] == [
            record.job for record in reference.records
        ]
        assert [line["fields"] for line in lines] == [
            record.fields for record in reference.records
        ]

    def test_stream_csv_out_matches_blocking_rows(self, tmp_path):
        out = tmp_path / "fig15.csv"
        code = main(["experiment", "--name", "fig15", "--stream", "--out", str(out)])
        assert code == 0
        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        reference = run_experiment("fig15", "bench", seed=0)
        assert len(rows) == len(reference.records)
        for row, record in zip(rows, reference.records):
            assert row["job"] == record.job
            assert int(row["logical_layers"]) == record.fields["logical_layers"]

    def test_stream_json_still_prints_full_result(self, capsys):
        code = main(["experiment", "--name", "fig15", "--stream", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["experiment"] == "fig15"
        assert payload["records"][0]["fields"]["logical_layers"] > 0


class TestPathfindFlag:
    def test_invalid_pathfind_on_experiment_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "--name", "fig14", "--pathfind", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--pathfind" in err
        assert "vector" in err and "scalar" in err

    def test_invalid_pathfind_on_compile_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["compile", "--benchmark", "qaoa", "--qubits", "4",
                 "--pathfind", "bogus"]
            )
        assert excinfo.value.code == 2
        assert "--pathfind" in capsys.readouterr().err

    def test_scalar_pathfind_records_identical_to_vector(self, capsys):
        code = main(
            ["experiment", "--name", "fig14", "--json", "--pathfind", "scalar"]
        )
        scalar = json.loads(capsys.readouterr().out)
        assert code == 0
        code = main(
            ["experiment", "--name", "fig14", "--json", "--pathfind", "vector"]
        )
        vector = json.loads(capsys.readouterr().out)
        assert code == 0
        # The deterministic record portion (including the visited-sites cost
        # proxy) is byte-identical; only wall-clock timings may differ.
        assert [entry["job"] for entry in scalar["records"]] == [
            entry["job"] for entry in vector["records"]
        ]
        assert [entry["fields"] for entry in scalar["records"]] == [
            entry["fields"] for entry in vector["records"]
        ]

    def test_compile_scalar_pathfind_matches_vector(self, capsys):
        base = ["compile", "--benchmark", "qaoa", "--qubits", "4", "--json"]
        assert main(base + ["--pathfind", "scalar"]) == 0
        scalar = json.loads(capsys.readouterr().out)
        assert main(base + ["--pathfind", "vector"]) == 0
        vector = json.loads(capsys.readouterr().out)
        for field in ("rsl_count", "fusion_count", "logical_layers", "pl_ratio"):
            assert scalar[field] == vector[field], field


class TestShardedFlags:
    def test_sharded_runner_json_fields_match_serial(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "artifacts")
        code = main(
            ["experiment", "--name", "fig14", "--json", "--runner", "sharded",
             "--shards", "3", "--cache-dir", cache_dir]
        )
        cold = json.loads(capsys.readouterr().out)
        assert code == 0
        assert cold["runner"] == "sharded"
        assert cold["cache"]["hits"] == 0 and cold["cache"]["misses"] > 0
        # Warm re-run at a different shard count: the merged shard deltas
        # serve every lookup, and the deterministic fields are unchanged.
        code = main(
            ["experiment", "--name", "fig14", "--json", "--runner", "sharded",
             "--shards", "2", "--cache-dir", cache_dir]
        )
        warm = json.loads(capsys.readouterr().out)
        assert code == 0
        assert warm["cache"]["hit_rate"] == 1.0
        assert [entry["fields"] for entry in warm["records"]] == [
            entry["fields"] for entry in cold["records"]
        ]

    def test_shards_with_other_runner_is_usage_error(self, capsys):
        code = main(["experiment", "--name", "fig15", "--shards", "2"])
        assert code == 2
        assert "sharded" in capsys.readouterr().err

    def test_chunk_size_records_identical_to_serial(self, capsys):
        code = main(["experiment", "--name", "fig14", "--json"])
        serial = json.loads(capsys.readouterr().out)
        assert code == 0
        code = main(
            ["experiment", "--name", "fig14", "--json", "--runner", "thread",
             "--workers", "2", "--chunk-size", "2"]
        )
        chunked = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [entry["fields"] for entry in chunked["records"]] == [
            entry["fields"] for entry in serial["records"]
        ]

    def test_chunk_size_with_serial_runner_is_usage_error(self, capsys):
        code = main(["experiment", "--name", "fig15", "--chunk-size", "2"])
        assert code == 2
        assert "thread, process" in capsys.readouterr().err

    def test_nonpositive_counts_are_usage_errors(self, capsys):
        for flags in (
            ["--runner", "process", "--workers", "0"],
            ["--runner", "sharded", "--shards", "0"],
            ["--runner", "thread", "--chunk-size", "0"],
        ):
            code = main(["experiment", "--name", "fig15", *flags])
            assert code == 2
            assert ">= 1" in capsys.readouterr().err

    def test_memory_cache_with_sharded_runner_is_usage_error(self, capsys):
        code = main(
            ["experiment", "--name", "fig15", "--runner", "sharded",
             "--cache", "memory"]
        )
        assert code == 2
        assert "DiskCache" in capsys.readouterr().err

    def test_sharded_session_totals_fold_into_cache_session(self, capsys, tmp_path):
        # Satellite fix: the per-shard subprocess hit/miss counts used to be
        # dropped after merge_from; now cache_session reports the whole run.
        cache_dir = str(tmp_path / "artifacts")
        code = main(
            ["experiment", "--name", "fig14", "--json", "--runner", "sharded",
             "--shards", "2", "--cache-dir", cache_dir]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        session = payload["cache_session"]
        assert session["backend"] == "disk"
        assert session["hits"] == payload["cache"]["hits"]
        assert session["misses"] == payload["cache"]["misses"]
        assert session["misses"] > 0
        assert "evictions" in session


class TestTelemetryFlags:
    def test_compile_trace_out_writes_valid_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["compile", "--benchmark", "qaoa", "--qubits", "4", "--json",
             "--trace-out", str(trace)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"wrote {trace}" in captured.err
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        names = [line["name"] for line in lines if line["type"] == "span"]
        assert "compile" in names and "pass:online-reshape" in names
        # The compile record itself is unchanged by tracing.
        traced = json.loads(captured.out)
        assert main(["compile", "--benchmark", "qaoa", "--qubits", "4",
                     "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        for field in ("rsl_count", "fusion_count", "logical_layers", "pl_ratio"):
            assert traced[field] == plain[field], field

    def test_compile_chrome_trace_format(self, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(
            ["compile", "--benchmark", "qaoa", "--qubits", "4", "--json",
             "--trace-out", str(trace), "--trace-format", "chrome"]
        )
        assert code == 0
        obj = json.loads(trace.read_text())
        assert obj["traceEvents"] and obj["traceEvents"][0]["ph"] == "X"

    def test_experiment_telemetry_and_summarize(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        events = tmp_path / "events.jsonl"
        code = main(
            ["experiment", "--name", "fig14", "--json",
             "--trace-out", str(trace), "--events-out", str(events)]
        )
        traced = json.loads(capsys.readouterr().out)
        assert code == 0
        event_kinds = {
            json.loads(line)["kind"] for line in events.read_text().splitlines()
        }
        assert {"run_started", "job_finished", "run_finished"} <= event_kinds
        code = main(
            ["telemetry", "summarize", "--trace", str(trace),
             "--events", str(events), "--json"]
        )
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        # The summary reconciles with the run's own records: per-pass wall
        # seconds match the summed t_ timings, compile count matches the
        # compile-job count.
        compile_entries = [
            entry
            for entry in traced["records"]
            if "cpu_seconds_total" in entry["metrics"]
        ]
        assert summary["compiles"] == len(compile_entries)
        for name, row in summary["passes"].items():
            recorded = sum(
                entry["timings"].get(name, 0.0) for entry in compile_entries
            )
            assert abs(row["wall_seconds"] - recorded) < 1e-9
        assert summary["runs"]["fig14"]["jobs"] == len(traced["records"])
        assert summary["events"]["job_finished"] == len(traced["records"])
        # Human-readable rendering works on the same files.
        code = main(["telemetry", "summarize", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-pass" in out and "cache" in out

    def test_summarize_missing_trace_is_an_error(self, capsys, tmp_path):
        code = main(
            ["telemetry", "summarize", "--trace", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "telemetry:" in capsys.readouterr().err

    def test_experiment_records_identical_with_trace_out(self, capsys, tmp_path):
        code = main(["experiment", "--name", "fig14", "--json"])
        plain = json.loads(capsys.readouterr().out)
        assert code == 0
        code = main(
            ["experiment", "--name", "fig14", "--json",
             "--trace-out", str(tmp_path / "t.jsonl")]
        )
        traced = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [entry["fields"] for entry in traced["records"]] == [
            entry["fields"] for entry in plain["records"]
        ]
