"""Tests for photon-loss sensitivity and delay-line lifetime enforcement."""

import pytest

from repro.circuits import qaoa
from repro.errors import HardwareError
from repro.experiments.loss import effective_rate
from repro.graphstate import ResourceStateSpec
from repro.hardware import HardwareConfig
from repro.mbqc import translate_circuit
from repro.offline import OfflineMapper
from repro.online import LayerDemand, OnlineReshaper


class TestEffectiveRate:
    def test_no_loss_identity(self):
        assert effective_rate(0.0, 0.78) == pytest.approx(0.78)

    def test_loss_squares(self):
        """Both photons must arrive, so loss enters quadratically."""
        assert effective_rate(0.1, 0.78) == pytest.approx(0.78 * 0.81)

    def test_reshaper_degrades_with_loss(self):
        """More loss -> lower effective rate -> more routing layers."""

        def rsl_for(loss: float) -> int:
            config = HardwareConfig(
                rsl_size=36,
                resource_state=ResourceStateSpec(7),
                fusion_success_rate=0.75,
                photon_loss_rate=loss,
            )
            reshaper = OnlineReshaper(config, virtual_size=2, rng=4, max_rsl=10**5)
            return reshaper.run([LayerDemand(1, 0)] * 8).rsl_consumed

        assert rsl_for(0.08) >= rsl_for(0.0)


class TestLayerDemandGaps:
    def test_gap_count_must_match(self):
        with pytest.raises(HardwareError):
            LayerDemand(adjacent_connections=0, cross_connections=2, cross_gaps=(3,))

    def test_mapper_emits_gaps(self):
        pattern = translate_circuit(qaoa(4, seed=0))
        result = OfflineMapper(width=2).map_pattern(pattern)
        for demand in result.demands:
            assert len(demand.cross_gaps) == demand.cross_connections
            assert all(gap >= 2 for gap in demand.cross_gaps)


class TestLifetimeEnforcement:
    def test_generous_lifetime_passes(self):
        config = HardwareConfig(
            rsl_size=32, resource_state=ResourceStateSpec(7), fusion_success_rate=0.8
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=1)
        demands = [
            LayerDemand(0, 0),
            LayerDemand(0, 0),
            LayerDemand(0, 1, (2,)),
        ]
        metrics = reshaper.run(demands)
        assert metrics.max_storage_cycles > 0

    def test_tiny_lifetime_raises(self):
        config = HardwareConfig(
            rsl_size=32,
            resource_state=ResourceStateSpec(7),
            fusion_success_rate=0.8,
            photon_lifetime=1,  # photons die after one cycle
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=1)
        demands = [
            LayerDemand(0, 0),
            LayerDemand(0, 0),
            LayerDemand(0, 1, (2,)),  # waits >= 2 RSLs: must exceed lifetime
        ]
        with pytest.raises(HardwareError):
            reshaper.run(demands)

    def test_storage_cycles_reported(self):
        config = HardwareConfig(
            rsl_size=32, resource_state=ResourceStateSpec(7), fusion_success_rate=0.8
        )
        reshaper = OnlineReshaper(config, virtual_size=2, rng=2)
        metrics = reshaper.run([LayerDemand(0, 0)] * 3 + [LayerDemand(0, 1, (3,))])
        # The connection waited across at least 3 logical layers' RSLs.
        assert metrics.max_storage_cycles >= 3


class TestLossExperiment:
    def test_bench_scale_runs_and_degrades(self):
        from repro.experiments import run_experiment

        result = run_experiment("loss", "bench")
        assert "Loss rate" in result.text
        by_benchmark: dict[str, list[tuple[float, int]]] = {}
        for record in result.records:
            by_benchmark.setdefault(record.fields["benchmark"], []).append(
                (record.fields["loss_rate"], record.fields["rsl_count"])
            )
        for series in by_benchmark.values():
            series.sort()
            lossless = series[0][1]
            lossy = series[-1][1]
            assert lossy >= lossless * 0.8  # monotone up to Monte-Carlo noise
