"""The serve wire protocol: frame round-trips and request validation."""

import pytest

from repro.experiments.api import ExperimentRecord
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    TERMINAL_FRAMES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    hello_frame,
    record_frame,
    record_from_payload,
    summary_frame,
    validate_request,
)


def _record(**overrides):
    base = dict(
        experiment="fig15",
        scale="bench",
        seed=0,
        job="compile:qaoa-4",
        fields={"benchmark": "qaoa-4", "num_qubits": 4},
        timings={"translate": 0.01},
        metrics={"cache_hits": 1, "cache_misses": 3},
    )
    base.update(overrides)
    return ExperimentRecord(**base)


class TestFrames:
    def test_encode_decode_round_trip(self):
        frame = hello_frame()
        assert decode_frame(encode_frame(frame)) == frame

    def test_encoding_is_canonical_one_line(self):
        line = encode_frame(summary_frame(
            "experiment", records=3, elapsed_s=1.0,
            cache={"hits": 0, "misses": 3, "hit_rate": 0.0},
        ))
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        # sorted keys: encoding is a pure function of content
        assert line == encode_frame(decode_frame(line))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            decode_frame(b'{"frame":"nope"}\n')

    def test_record_frame_round_trips_through_payload(self):
        record = _record()
        frame = decode_frame(encode_frame(record_frame(7, record)))
        assert frame["seq"] == 7
        back = record_from_payload(frame["record"])
        assert back == record

    def test_record_payload_matches_jsonl_writer_shape(self):
        # The record frame carries exactly the JsonlStreamWriter line
        # payload, so server streams and local --stream files line up.
        record = _record()
        payload = record_frame(0, record)["record"]
        assert payload == {
            **record.canonical(),
            "timings": dict(record.timings),
            "metrics": dict(record.metrics),
        }

    def test_malformed_record_payload(self):
        with pytest.raises(ProtocolError):
            record_from_payload({"experiment": "fig15"})

    def test_terminal_frames_cover_every_stream_ending(self):
        assert set(TERMINAL_FRAMES) == {"summary", "error", "stats"}
        assert error_frame("boom")["frame"] in TERMINAL_FRAMES


class TestValidateRequest:
    def test_experiment_defaults_filled(self):
        request = validate_request({"op": "experiment", "name": "fig15"})
        assert request["scale"] == "bench"
        assert request["seed"] == 0
        assert request["runner"] == "serial"
        assert request["workers"] is None
        assert request["v"] == PROTOCOL_VERSION

    def test_normalization_makes_defaults_explicit(self):
        # Omitting a default and spelling it out normalize identically —
        # the property the single-flight key depends on.
        short = validate_request({"op": "experiment", "name": "fig15"})
        spelled = validate_request(
            {"op": "experiment", "name": "fig15", "scale": "bench", "seed": 0}
        )
        assert short == spelled

    def test_compile_requires_benchmark_and_qubits(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_request({"op": "compile", "benchmark": "qaoa"})
        request = validate_request(
            {"op": "compile", "benchmark": "qaoa", "qubits": 4}
        )
        assert request["rate"] == 0.75
        assert request["pathfind"] == "vector"

    def test_unknown_op_and_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode"})
        with pytest.raises(ProtocolError, match="unknown fields"):
            validate_request(
                {"op": "experiment", "name": "fig15", "bogus": 1}
            )

    def test_type_errors_are_loud(self):
        with pytest.raises(ProtocolError, match="expected"):
            validate_request({"op": "experiment", "name": 42})
        # bools are not numbers (JSON's true would otherwise pass as int)
        with pytest.raises(ProtocolError, match="bool"):
            validate_request(
                {"op": "compile", "benchmark": "qaoa", "qubits": True}
            )

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="protocol version"):
            validate_request(
                {"op": "experiment", "name": "fig15", "v": PROTOCOL_VERSION + 1}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request(["op", "experiment"])
