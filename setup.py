"""Legacy setup shim: lets `pip install -e .` / `setup.py develop` work offline
on environments whose setuptools lacks the `wheel` package (PEP 660 editable
installs need bdist_wheel; `develop` does not)."""
from setuptools import setup

setup()
