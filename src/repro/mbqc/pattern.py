"""Measurement patterns: the MBQC form of a program.

A measurement pattern is a program graph state plus, for every non-output
node, an equatorial measurement angle and a *flow* successor (the node that
inherits the wire after the measurement).  Outcome-dependent corrections
follow the standard flow rule: measuring ``i`` with outcome 1 applies ``X``
on ``f(i)`` and ``Z`` on every other neighbour of ``f(i)`` — the real-time
feed-forward of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.graphstate.graph import GraphState


@dataclass
class PatternNode:
    """One qubit of the program graph state.

    ``angle`` is the ``J`` parameter whose gadget measures this node (the
    measurement basis has ket phase ``exp(-i angle)``); ``None`` marks an
    output node, which is not measured by the pattern.
    """

    node_id: int
    wire: int
    angle: float | None = None
    successor: int | None = None

    @property
    def is_output(self) -> bool:
        return self.angle is None


@dataclass
class MeasurementPattern:
    """A program graph state with measurement/flow annotations."""

    graph: GraphState
    nodes: dict[int, PatternNode]
    inputs: list[int]
    outputs: list[int]
    name: str = "pattern"
    _order_cache: list[int] | None = field(default=None, repr=False)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def measured_count(self) -> int:
        return sum(1 for node in self.nodes.values() if not node.is_output)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TranslationError`."""
        graph_nodes = set(self.graph.nodes())
        if graph_nodes != set(self.nodes):
            raise TranslationError("pattern nodes and graph nodes disagree")
        if len(self.inputs) != len(self.outputs):
            raise TranslationError("pattern must have one output per input wire")
        for node_id, node in self.nodes.items():
            if node.node_id != node_id:
                raise TranslationError(f"node {node_id} has mismatched id")
            if node.is_output:
                if node.successor is not None:
                    raise TranslationError(f"output node {node_id} has a successor")
                if node_id not in self.outputs:
                    raise TranslationError(f"unmeasured node {node_id} not an output")
            else:
                if node.successor is None:
                    raise TranslationError(f"measured node {node_id} lacks a successor")
                if not self.graph.has_edge(node_id, node.successor):
                    raise TranslationError(
                        f"flow edge {node_id} -> {node.successor} missing in graph"
                    )

    def flow_order(self) -> list[int]:
        """A measurement order compatible with the flow conditions.

        The flow theorem requires ``i`` to be measured before ``f(i)`` and
        before every other neighbour of ``f(i)`` (otherwise a correction
        would target an already-measured qubit).  Returns a topological order
        of the non-output nodes under those constraints.
        """
        if self._order_cache is not None:
            return list(self._order_cache)
        successors_of: dict[int, list[int]] = {node_id: [] for node_id in self.nodes}
        indegree = {node_id: 0 for node_id in self.nodes}
        for node_id, node in self.nodes.items():
            if node.is_output:
                continue
            constraints = {node.successor}
            constraints.update(
                neighbor
                for neighbor in self.graph.neighbors(node.successor)
                if neighbor != node_id
            )
            for later in constraints:
                successors_of[node_id].append(later)
                indegree[later] += 1
        ready = sorted(node_id for node_id, count in indegree.items() if count == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            if not self.nodes[current].is_output:
                order.append(current)
            for later in successors_of[current]:
                indegree[later] -= 1
                if indegree[later] == 0:
                    ready.append(later)
            ready.sort()
        if len(order) != self.measured_count:
            raise TranslationError(
                "pattern has no causal flow order (dependency cycle)"
            )
        self._order_cache = order
        return list(order)
