"""MBQC layer: measurement patterns, translation, dependencies, validation."""

from repro.mbqc.pattern import MeasurementPattern, PatternNode
from repro.mbqc.translate import pattern_size_summary, translate_circuit
from repro.mbqc.dependency import DependencyDAG
from repro.mbqc.simulator import run_pattern
from repro.mbqc.optimize import OptimizationReport, merge_zero_pairs, optimize_pattern

__all__ = [
    "MeasurementPattern",
    "PatternNode",
    "translate_circuit",
    "pattern_size_summary",
    "DependencyDAG",
    "run_pattern",
    "OptimizationReport",
    "merge_zero_pairs",
    "optimize_pattern",
]
