"""Pattern-level optimization passes.

The translation pipeline can leave identity structure in the program graph
state — most commonly ``J(0) J(0)`` pairs that a circuit-level peephole
missed because other gates interleaved textually (but not on the wire).  At
the pattern level these are two consecutive zero-angle nodes on a wire with
no other entanglement: both are measured in the X basis, each teleporting an
``H``, so the pair is the identity and the wire can be contracted.

Shorter patterns mean fewer nodes for the offline mapper to place, fewer
layers, and fewer RSLs — the same motivation as the paper's use of PyZX on
the frontend.  Every rewrite here is validated against dense simulation in
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mbqc.pattern import MeasurementPattern

#: Angles within this tolerance of 0 count as zero-angle (X-basis) nodes.
_ZERO_TOLERANCE = 1e-12


@dataclass(frozen=True)
class OptimizationReport:
    """What an optimization pass did."""

    nodes_before: int
    nodes_after: int
    contracted_pairs: int

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


def _is_zero(angle: float | None) -> bool:
    return angle is not None and abs(angle) <= _ZERO_TOLERANCE


def _predecessors(pattern: MeasurementPattern) -> dict[int, int]:
    """Map each node to its wire predecessor (absent for inputs)."""
    return {
        node.successor: node_id
        for node_id, node in pattern.nodes.items()
        if node.successor is not None
    }


def merge_zero_pairs(pattern: MeasurementPattern) -> OptimizationReport:
    """Contract ``J(0) J(0)`` wire segments in place.

    A pair (i, j = f(i)) contracts when both are zero-angle measured nodes
    whose only edges are the wire edges around them (predecessor - i - j -
    successor).  The predecessor's flow then points straight at j's
    successor.  Inputs and outputs are never removed.
    """
    before = pattern.node_count
    contracted = 0
    changed = True
    while changed:
        changed = False
        predecessor_of = _predecessors(pattern)
        for node_id in list(pattern.nodes):
            node = pattern.nodes.get(node_id)
            if node is None or node.is_output or not _is_zero(node.angle):
                continue
            j = node.successor
            partner = pattern.nodes.get(j)
            if partner is None or partner.is_output or not _is_zero(partner.angle):
                continue
            p = predecessor_of.get(node_id)
            if p is None:
                continue  # contracting an input would change the interface
            s = partner.successor
            # Both nodes must carry only their wire edges.
            if pattern.graph.neighbors(node_id) != {p, j}:
                continue
            if pattern.graph.neighbors(j) != {node_id, s}:
                continue
            pattern.graph.remove_node(node_id)
            pattern.graph.remove_node(j)
            if not pattern.graph.has_edge(p, s):
                pattern.graph.add_edge(p, s)
            pattern.nodes[p].successor = s
            del pattern.nodes[node_id]
            del pattern.nodes[j]
            contracted += 1
            changed = True
            break  # predecessor map is stale; rebuild
    pattern._order_cache = None
    pattern.validate()
    return OptimizationReport(
        nodes_before=before,
        nodes_after=pattern.node_count,
        contracted_pairs=contracted,
    )


def optimize_pattern(pattern: MeasurementPattern) -> OptimizationReport:
    """Run all pattern optimization passes (currently zero-pair merging)."""
    return merge_zero_pairs(pattern)
