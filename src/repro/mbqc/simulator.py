"""Dense MBQC execution with feed-forward (validation oracle).

Runs a measurement pattern the way the hardware would: activate graph-state
qubits lazily, measure them in a flow-compatible order in equatorial bases,
and apply the outcome-dependent ``X``/``Z`` corrections of the flow theorem.
The test-suite checks that this reproduces the original circuit's statevector
for random outcomes — validating the translation *and* the feed-forward rules
the online pass relies on.

This simulator is exponential in the active width and exists only for
validation; the compiler never simulates amplitudes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TranslationError
from repro.mbqc.pattern import MeasurementPattern
from repro.utils.rng import ensure_rng

_SQRT1_2 = 1 / math.sqrt(2)

#: Cap on simultaneously-active qubits (dense state of 2^width amplitudes).
MAX_ACTIVE_WIDTH = 16


class _ActiveState:
    """Dense state over a dynamic set of active graph nodes."""

    def __init__(self) -> None:
        self.order: list[int] = []  # node ids, axis order of the tensor
        self.state = np.ones(1, dtype=complex)

    @property
    def width(self) -> int:
        return len(self.order)

    def axis(self, node: int) -> int:
        return self.order.index(node)

    def add_plus(self, node: int) -> None:
        if self.width + 1 > MAX_ACTIVE_WIDTH:
            raise TranslationError(
                f"active width exceeded {MAX_ACTIVE_WIDTH}; pattern too wide "
                "for dense validation"
            )
        plus = np.array([_SQRT1_2, _SQRT1_2], dtype=complex)
        self.state = np.kron(self.state, plus)
        self.order.append(node)

    def add_register(self, nodes: list[int], register_state: np.ndarray) -> None:
        if self.width + len(nodes) > MAX_ACTIVE_WIDTH:
            raise TranslationError("active width exceeded in register injection")
        self.state = np.kron(self.state, register_state.astype(complex))
        self.order.extend(nodes)

    def _reshape(self) -> np.ndarray:
        return self.state.reshape([2] * self.width)

    def apply_cz(self, node_a: int, node_b: int) -> None:
        tensor = self._reshape()
        index_a, index_b = self.axis(node_a), self.axis(node_b)
        slicer = [slice(None)] * self.width
        slicer[index_a] = 1
        slicer[index_b] = 1
        tensor[tuple(slicer)] *= -1
        self.state = tensor.reshape(-1)

    def apply_pauli(self, node: int, x_bit: int, z_bit: int) -> None:
        if not (x_bit or z_bit):
            return
        tensor = np.moveaxis(self._reshape(), self.axis(node), 0)
        if x_bit:
            tensor = tensor[::-1].copy()
        if z_bit:
            tensor[1] *= -1
        self.state = np.moveaxis(tensor, 0, self.axis(node)).reshape(-1)

    def measure_equatorial(self, node: int, angle: float, rng, postselect=None) -> int:
        """Measure ``node`` in basis ``(|0> +/- e^{i angle}|1>)/sqrt(2)``.

        Removes the qubit; returns the outcome bit.
        """
        tensor = np.moveaxis(self._reshape(), self.axis(node), 0)
        phase = np.exp(-1j * angle)  # bra phase for outcome 0
        branch0 = (tensor[0] + phase * tensor[1]) * _SQRT1_2
        branch1 = (tensor[0] - phase * tensor[1]) * _SQRT1_2
        p0 = float(np.sum(np.abs(branch0) ** 2))
        p1 = float(np.sum(np.abs(branch1) ** 2))
        total = p0 + p1
        if postselect is not None:
            outcome = int(postselect)
        else:
            outcome = int(rng.random() * total >= p0)
        chosen = branch1 if outcome else branch0
        norm = math.sqrt(p1 if outcome else p0)
        if norm < 1e-12:
            raise TranslationError(f"measured a zero-probability branch on {node}")
        self.order.remove(node)
        self.state = (chosen / norm).reshape(-1)
        return outcome

    def extract(self, nodes: list[int]) -> np.ndarray:
        """The state re-ordered so ``nodes`` are the (only) axes, in order."""
        if set(nodes) != set(self.order):
            raise TranslationError("extract() must cover exactly the active nodes")
        tensor = self._reshape()
        permutation = [self.axis(node) for node in nodes]
        return np.transpose(tensor, permutation).reshape(-1)


def run_pattern(
    pattern: MeasurementPattern,
    input_state: np.ndarray | None = None,
    rng=None,
    postselect_zeros: bool = False,
) -> tuple[np.ndarray, dict[int, int]]:
    """Execute ``pattern``; returns (output statevector, measurement outcomes).

    ``input_state`` is the joint state of the input wires (default
    ``|+...+>``, matching bare graph-state preparation).  The output vector is
    over the output nodes in wire order.  With ``postselect_zeros`` every
    outcome is forced to 0 (the correction-free branch).
    """
    rng = ensure_rng(rng)
    graph = pattern.graph
    state = _ActiveState()
    pending: dict[int, list[int]] = {}  # node -> [x_bit, z_bit]
    activated: set[int] = set()
    edges_done: set[frozenset[int]] = set()

    def pauli_frame(node: int) -> list[int]:
        return pending.setdefault(node, [0, 0])

    def activate(node: int) -> None:
        if node in activated:
            return
        state.add_plus(node)
        activated.add(node)
        _link(node)

    def _link(node: int) -> None:
        for neighbor in graph.neighbors(node):
            if neighbor in activated:
                key = frozenset((node, neighbor))
                if key not in edges_done:
                    state.apply_cz(node, neighbor)
                    edges_done.add(key)

    # Inject the input register jointly (inputs may be mutually entangled).
    if input_state is None:
        for node in pattern.inputs:
            activate(node)
    else:
        dimension = 2 ** len(pattern.inputs)
        vector = np.asarray(input_state, dtype=complex)
        if vector.shape != (dimension,):
            raise TranslationError(
                f"input state must have shape ({dimension},), got {vector.shape}"
            )
        state.add_register(list(pattern.inputs), vector)
        activated.update(pattern.inputs)
        for node in pattern.inputs:
            _link(node)

    outcomes: dict[int, int] = {}
    for node_id in pattern.flow_order():
        node = pattern.nodes[node_id]
        activate(node_id)
        for neighbor in graph.neighbors(node_id):
            activate(neighbor)
        frame = pending.pop(node_id, [0, 0])
        state.apply_pauli(node_id, frame[0], frame[1])
        outcome = state.measure_equatorial(
            node_id,
            -node.angle,  # J(alpha) gadget measures at -alpha
            rng,
            postselect=0 if postselect_zeros else None,
        )
        outcomes[node_id] = outcome
        if outcome:
            successor = node.successor
            pauli_frame(successor)[0] ^= 1
            for neighbor in graph.neighbors(successor):
                if neighbor != node_id:
                    pauli_frame(neighbor)[1] ^= 1

    for node in pattern.outputs:
        activate(node)
    for node in pattern.outputs:
        frame = pending.pop(node, [0, 0])
        state.apply_pauli(node, frame[0], frame[1])
    leftovers = [node for node, frame in pending.items() if frame != [0, 0]]
    if leftovers:
        raise TranslationError(f"corrections left on measured nodes: {leftovers}")
    return state.extract(list(pattern.outputs)), outcomes
