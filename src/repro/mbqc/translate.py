"""Circuit -> measurement pattern translation (Fig. 3 of the paper).

The standard Broadbent–Kashefi construction: each wire starts at an input
node; a ``J(alpha)`` gate appends a fresh node, connects it to the wire's
current node, and marks the current node for an equatorial measurement with
the gadget angle ``alpha``; a ``CZ`` gate toggles an edge between the two
wires' current nodes.  The wire-ends at the end of the circuit are the output
nodes.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.jcz import to_jcz
from repro.errors import TranslationError
from repro.graphstate.graph import GraphState
from repro.mbqc.pattern import MeasurementPattern, PatternNode


def translate_circuit(circuit: Circuit, simplify: bool = True) -> MeasurementPattern:
    """Translate ``circuit`` into a measurement pattern on a program graph state.

    Non-``{J, CZ}`` circuits are lowered first.  Node ids are dense integers
    in creation order; the returned pattern validates cleanly and has a causal
    flow order by construction.
    """
    jcz = circuit if circuit.is_jcz() else to_jcz(circuit, simplify=simplify)
    graph = GraphState()
    nodes: dict[int, PatternNode] = {}
    current: list[int] = []
    next_id = 0

    def new_node(wire: int) -> int:
        nonlocal next_id
        node_id = next_id
        next_id += 1
        graph.add_node(node_id)
        nodes[node_id] = PatternNode(node_id=node_id, wire=wire)
        return node_id

    for wire in range(jcz.num_qubits):
        current.append(new_node(wire))
    inputs = list(current)

    for gate in jcz.gates:
        if gate.name == "j":
            wire = gate.qubits[0]
            fresh = new_node(wire)
            old = current[wire]
            graph.add_edge(old, fresh)
            nodes[old].angle = float(gate.params[0])
            nodes[old].successor = fresh
            current[wire] = fresh
        elif gate.name == "cz":
            a, b = gate.qubits
            if current[a] == current[b]:
                raise TranslationError("CZ on a single wire is impossible")
            graph.toggle_edge(current[a], current[b])
        else:
            raise TranslationError(
                f"translation expects a {{J, CZ}} circuit, found {gate.name!r}"
            )

    pattern = MeasurementPattern(
        graph=graph,
        nodes=nodes,
        inputs=inputs,
        outputs=list(current),
        name=f"{circuit.name}:pattern",
    )
    pattern.validate()
    return pattern


def pattern_size_summary(pattern: MeasurementPattern) -> dict[str, int]:
    """Size metrics used by the experiment harness and documentation."""
    return {
        "nodes": pattern.node_count,
        "edges": pattern.graph.edge_count,
        "measured": pattern.measured_count,
        "wires": len(pattern.inputs),
    }
