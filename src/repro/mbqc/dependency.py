"""Dependency DAG over program graph state qubits.

The offline mapper (Section 6.2) replaces OneQ's static partition with
*dynamic scheduling*: it "analyzes the dependency among graph state qubits,
representing it with a directed acyclic graph (DAG) and updating the front
layer of the DAG as nodes are consumed by the mapping".  The dependencies are
the measurement-calculus flow constraints [41]: node ``i`` must precede its
flow successor ``f(i)`` and every other neighbour of ``f(i)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TranslationError
from repro.mbqc.pattern import MeasurementPattern


class DependencyDAG:
    """Flow-derived partial order with front-layer iteration for the mapper."""

    def __init__(self, pattern: MeasurementPattern) -> None:
        self.pattern = pattern
        self._successors: dict[int, set[int]] = {node: set() for node in pattern.nodes}
        self._predecessors: dict[int, set[int]] = {node: set() for node in pattern.nodes}
        for node_id, node in pattern.nodes.items():
            if node.is_output:
                continue
            later_nodes = {node.successor}
            later_nodes.update(
                neighbor
                for neighbor in pattern.graph.neighbors(node.successor)
                if neighbor != node_id
            )
            for later in later_nodes:
                self._successors[node_id].add(later)
                self._predecessors[later].add(node_id)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        if len(self.topological_order()) != len(self._successors):
            raise TranslationError("dependency graph has a cycle; no causal flow")

    # ------------------------------------------------------------------

    def successors(self, node: int) -> set[int]:
        """Nodes that must come after ``node``."""
        return set(self._successors[node])

    def predecessors(self, node: int) -> set[int]:
        """Nodes that must come before ``node``."""
        return set(self._predecessors[node])

    def topological_order(self) -> list[int]:
        """One full order consistent with the DAG (deterministic)."""
        indegree = {node: len(preds) for node, preds in self._predecessors.items()}
        ready = sorted(node for node, count in indegree.items() if count == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            inserted = False
            for later in sorted(self._successors[current]):
                indegree[later] -= 1
                if indegree[later] == 0:
                    ready.append(later)
                    inserted = True
            if inserted:
                ready.sort()
        return order

    def front_layer(self, consumed: Iterable[int]) -> list[int]:
        """Nodes ready to be mapped: all predecessors consumed, self not yet.

        This is the set the dynamic scheduler draws from at every mapping
        step; it shrinks and grows as the mapping consumes nodes.
        """
        done = set(consumed)
        return sorted(
            node
            for node in self._predecessors
            if node not in done and self._predecessors[node] <= done
        )

    def depth(self) -> int:
        """Length of the longest dependency chain (a lower bound on layers)."""
        level: dict[int, int] = {}
        for node in self.topological_order():
            preds = self._predecessors[node]
            level[node] = 1 + max((level[p] for p in preds), default=0)
        return max(level.values(), default=0)
