"""Command-line interface: compile benchmarks, run experiments, poke the
online pass.

Usage (also via ``python -m repro.cli``)::

    python -m repro.cli compile --benchmark qaoa --qubits 4 --rate 0.75
    python -m repro.cli compile --benchmark qaoa --qubits 4 --json
    python -m repro.cli compile --benchmark qft --qubits 4 --rewrite off
    python -m repro.cli compile --benchmark qft --qubits 9 \\
        --passes validate-connectivity,validate-rsg
    python -m repro.cli baseline --benchmark qft --qubits 4 --rate 0.75
    python -m repro.cli experiment --list
    python -m repro.cli experiment --name table2 --scale bench
    python -m repro.cli experiment --name fig14 --json --runner process --workers 4
    python -m repro.cli experiment --name fig16 --out fig16.csv
    python -m repro.cli experiment --name table2 --cache memory --json
    python -m repro.cli experiment --name table2 --cache disk --cache-dir .cache
    python -m repro.cli experiment --name table2 --runner sharded --shards 4 \\
        --cache-dir .cache --stream --out table2.jsonl
    python -m repro.cli experiment --name fig14 --trace-out trace.jsonl \\
        --events-out events.jsonl
    python -m repro.cli telemetry summarize --trace trace.jsonl --events events.jsonl
    python -m repro.cli percolate --size 24 --rate 0.75 --node 8

The ``experiment`` subcommand is a thin shell over the experiment registry
(:mod:`repro.experiments.api`): names, scales, and runner backends all come
from the registry and runner table, never from lists duplicated here.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from repro import obs
from repro.circuits.benchmarks import BENCHMARKS, make_benchmark
from repro.experiments.api import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    UnknownExperimentError,
    experiment_names,
    get_experiment,
)
from repro.errors import CompilationError, ReproError
from repro.experiments.common import SCALES
from repro.experiments.runners import RUNNERS, make_runner
from repro.experiments.streams import CsvStreamWriter, make_stream_writer
from repro.online.renormalize import PATHFINDS
from repro.passes import (
    REWRITES,
    DeviceValidatorPass,
    UnknownPassError,
    ValidationError,
    get_pass,
    pass_names,
)
from repro.pipeline import (
    PassInsertionError,
    Pipeline,
    PipelineSettings,
    make_cache,
)
from repro.pipeline.cache import CACHE_KINDS, cache_summary


def _add_common_compile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", required=True, choices=sorted(BENCHMARKS))
    parser.add_argument("--qubits", type=int, required=True)
    parser.add_argument("--rate", type=float, default=0.75, help="fusion success rate")
    parser.add_argument("--stars", type=int, default=4, help="resource state size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rsl-size", type=int, default=None)
    parser.add_argument("--virtual-size", type=int, default=None)
    parser.add_argument("--max-rsl", type=int, default=10**6)
    parser.add_argument(
        "--pathfind",
        default="vector",
        choices=list(PATHFINDS),
        help="renormalization path-search implementation (results are "
        "byte-identical; 'scalar' is the slow parity oracle)",
    )
    parser.add_argument(
        "--rewrite",
        default="on",
        choices=list(REWRITES),
        help="pattern-rewrite pass between translate and offline-map "
        "(results are byte-identical; 'off' is the unrewritten oracle)",
    )
    parser.add_argument(
        "--passes",
        metavar="NAMES",
        help="comma-separated extra passes to insert at their default slot: "
        + ", ".join(pass_names()),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON record (with per-pass timings) "
        "instead of the human-readable report",
    )
    _add_cache_args(parser)
    _add_telemetry_args(parser)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        default="off",
        choices=list(CACHE_KINDS),
        help="artifact cache for the deterministic pipeline stages "
        "(results are identical with the cache on or off)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="directory for --cache disk (implies --cache disk when given "
        "alone); disk is the backend that shares across process pools",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        metavar="BYTES",
        help="LRU eviction budget for the disk cache: least-recently-used "
        "entries are dropped once the store exceeds this many bytes",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a telemetry trace of the run (spans + metrics snapshot); "
        "results are byte-identical with tracing on or off",
    )
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=list(obs.TRACE_FORMATS),
        help="trace file format: 'jsonl' (one span per line, for "
        "'repro telemetry summarize') or 'chrome' (chrome://tracing JSON)",
    )
    parser.add_argument(
        "--events-out",
        metavar="FILE",
        help="stream lifecycle events (job/shard/cache) to FILE as JSON "
        "Lines, flushed per event",
    )


@contextmanager
def _telemetry_session(args: argparse.Namespace):
    """A telemetry session scoped to one command, when any output was asked.

    Yields the session (or ``None`` when telemetry is off); on exit the
    trace file is written in the requested format.  The events file is
    streamed live by the session itself.
    """
    trace_out = getattr(args, "trace_out", None)
    events_out = getattr(args, "events_out", None)
    if not trace_out and not events_out:
        yield None
        return
    with obs.session(events_path=events_out) as tele:
        try:
            yield tele
        finally:
            if trace_out:
                tele.write_trace(trace_out, fmt=args.trace_format)
                print(f"wrote {trace_out}", file=sys.stderr)
            if events_out:
                print(f"wrote {events_out}", file=sys.stderr)


def _cache_from(args: argparse.Namespace):
    """Resolve the cache flags (``--cache-dir`` alone implies disk)."""
    kind = args.cache
    if kind == "off" and args.cache_dir:
        kind = "disk"
    try:
        return make_cache(kind, args.cache_dir, max_bytes=args.cache_max_bytes)
    except CompilationError as exc:
        raise SystemExit(f"cache: {exc}") from exc


def _parse_pass_names(spec: str | None) -> list[str]:
    if not spec:
        return []
    return [name.strip() for name in spec.split(",") if name.strip()]


def _build_pipeline(args: argparse.Namespace) -> Pipeline:
    """Settings + default chain + any ``--passes`` insertions.

    Unknown pass names raise :class:`~repro.passes.UnknownPassError`
    (listing the registry) and bad insertions raise
    :class:`~repro.pipeline.PassInsertionError` — both usage errors the
    command handlers turn into exit 2.
    """
    settings = PipelineSettings(
        fusion_success_rate=args.rate,
        resource_state_size=args.stars,
        rsl_size=args.rsl_size,
        virtual_size=args.virtual_size,
        max_rsl=args.max_rsl,
        pathfind=args.pathfind,
        rewrite=args.rewrite,
    )
    pipeline = Pipeline(settings, seed=args.seed, cache=_cache_from(args))
    # Reversed so the chain order after the slot matches the listed order.
    for name in reversed(_parse_pass_names(getattr(args, "passes", None))):
        cls = get_pass(name)
        pipeline = pipeline.insert_pass(
            cls(), after=getattr(cls, "default_slot", None)
        )
    return pipeline


def _cache_counts(metrics: dict) -> dict:
    """The cache provenance block of a ``--json`` record."""
    return cache_summary(
        int(metrics.get("cache_hits", 0)), int(metrics.get("cache_misses", 0))
    )


def cmd_compile(args: argparse.Namespace) -> int:
    circuit = make_benchmark(args.benchmark, args.qubits, seed=args.seed)
    try:
        pipeline = _build_pipeline(args)
    except (UnknownPassError, PassInsertionError) as exc:
        print(f"compile: {exc}", file=sys.stderr)
        return 2
    try:
        with _telemetry_session(args) as tele:
            result = pipeline.compile(circuit)
            if tele is not None:
                tele.adopt_compile(result, circuit=circuit.name)
    except ValidationError as exc:
        # Machine-readable diagnostics on stdout (the contract CI's smoke
        # step schema-checks), human summary on stderr, usage-error exit.
        print(exc.to_json())
        print(f"compile: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "command": "compile",
                    "benchmark": circuit.name,
                    "num_qubits": result.num_qubits,
                    "seed": args.seed,
                    "fusion_success_rate": args.rate,
                    "rsl_count": result.rsl_count,
                    "fusion_count": result.fusion_count,
                    "logical_layers": result.logical_layers,
                    "pl_ratio": result.pl_ratio,
                    "offline_seconds": result.offline_seconds,
                    "online_seconds": result.online_seconds,
                    "pass_timings": result.timings_by_pass,
                    "metrics": result.metrics,
                    "cache": _cache_counts(result.metrics),
                },
                indent=2,
            )
        )
        return 0
    print(f"benchmark:      {circuit.name}")
    print(f"#RSL:           {result.rsl_count}")
    print(f"#fusion:        {result.fusion_count}")
    print(f"logical layers: {result.logical_layers}")
    print(f"PL ratio:       {result.pl_ratio:.2f}")
    for name, seconds in result.timings_by_pass.items():
        print(f"{name + ' time:':<21}{seconds:.3f} s")
    if args.show_ir:
        from repro.viz import render_ir

        print()
        print(render_ir(result.mapping.ir, max_layers=args.show_ir))
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    circuit = make_benchmark(args.benchmark, args.qubits, seed=args.seed)
    try:
        pipeline = _build_pipeline(args)
    except (UnknownPassError, PassInsertionError) as exc:
        print(f"baseline: {exc}", file=sys.stderr)
        return 2
    try:
        # compile_baseline swaps in the baseline chain, so inserted device
        # validators gate the submission here instead — same fail-fast
        # contract, same diagnostics, before any compile work happens.
        scratch = pipeline.settings.context_for(circuit)
        for stage in pipeline.passes:
            inner = getattr(stage, "inner", stage)  # unwrap CachePass
            if isinstance(inner, DeviceValidatorPass):
                inner.run(scratch)
        with _telemetry_session(args) as tele:
            result = pipeline.compile_baseline(circuit)
            if tele is not None:
                tele.adopt_compile(result, circuit=circuit.name)
    except ValidationError as exc:
        print(exc.to_json())
        print(f"baseline: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "command": "baseline",
                    "benchmark": circuit.name,
                    "num_qubits": args.qubits,
                    "seed": args.seed,
                    "fusion_success_rate": args.rate,
                    "rsl_count": result.rsl_count,
                    "fusion_count": result.fusion_count,
                    "restarts": result.restarts,
                    "capped": result.capped,
                    "cache": _cache_counts(result.metrics),
                },
                indent=2,
            )
        )
        return 0
    capped = " (hit the cap)" if result.capped else ""
    print(f"benchmark: {circuit.name}")
    print(f"#RSL:      {result.rsl_count}{capped}")
    print(f"#fusion:   {result.fusion_count}")
    print(f"restarts:  {result.restarts}")
    return 0


def _run_streamed(experiment, args: argparse.Namespace, runner) -> ExperimentResult:
    """Drain ``iter_records``, flushing each record to ``--out`` as it lands.

    Records appear incrementally (``tail -f`` the output file mid-sweep; a
    crash keeps everything completed so far) and the folded result is
    byte-identical to the blocking path — ``from_stream`` reduces the very
    same canonical-order records ``run`` would have produced.
    """
    writer = make_stream_writer(args.out) if args.out else None
    records = []
    try:
        stream = experiment.iter_records(
            args.scale,
            seed=args.seed,
            runner=runner,
            pathfind=args.pathfind,
            rewrite=args.rewrite,
        )
        for record in stream:
            records.append(record)
            if writer is not None:
                writer.write(record)
            if not args.json:
                print(f"streamed {len(records)}: {record.job}", file=sys.stderr)
    finally:
        if writer is not None:
            writer.close()
    if writer is not None:
        if isinstance(writer, CsvStreamWriter) and writer.dropped_keys:
            print(
                "note: the CSV stream fixed its header on the first record "
                f"and dropped later columns {sorted(writer.dropped_keys)}; "
                "use a .json/.jsonl --out for mixed-schema experiments",
                file=sys.stderr,
            )
        print(
            f"wrote {args.out} ({writer.records_written} records, streamed)",
            file=sys.stderr,
        )
    return ExperimentResult.from_stream(experiment, records, runner=runner.name)


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        names = experiment_names()  # ensures the registry is populated
        width = max(len(name) for name in names)
        for name in names:
            print(f"{name:<{width}}  {EXPERIMENT_REGISTRY[name].description}")
        return 0
    if not args.name:
        print("experiment: --name is required (or use --list)", file=sys.stderr)
        return 2
    try:
        experiment = get_experiment(args.name)
    except UnknownExperimentError as exc:
        print(f"experiment: {exc}", file=sys.stderr)
        return 2
    cache = _cache_from(args)
    try:
        runner = make_runner(
            args.runner,
            max_workers=args.workers,
            cache=cache,
            shards=args.shards,
            chunk_size=args.chunk_size,
        )
    except ReproError as exc:
        # A bad runner/cache/shard combination (memory cache on the sharded
        # runner, --shards with a non-sharded runner, ...) is a usage error.
        print(f"experiment: {exc}", file=sys.stderr)
        return 2
    if cache is not None and cache.name == "memory" and args.runner == "process":
        print(
            "note: a memory cache cannot share entries across a process "
            "pool; use --cache disk --cache-dir DIR for parallel sharing",
            file=sys.stderr,
        )
    if args.workers is not None and args.runner == "serial":
        print(
            "note: the serial runner ignores --workers; pass "
            "--runner thread|process for a parallel run",
            file=sys.stderr,
        )
    if args.runner != "serial":
        print(
            "note: pool runners measure wall-clock timings under contention; "
            "deterministic fields are unaffected, but use --runner serial "
            "when the seconds columns are the point (Figs. 14-15)",
            file=sys.stderr,
        )
    with _telemetry_session(args):
        if args.stream:
            result = _run_streamed(experiment, args, runner)
        else:
            result = experiment.run(
                args.scale,
                seed=args.seed,
                runner=runner,
                pathfind=args.pathfind,
                rewrite=args.rewrite,
            )
    payload = result.to_json_obj()
    if cache is not None:
        # The cache object's own session totals: for the sharded runner
        # these now include every shard's folded counts, so they reconcile
        # with the record-derived "cache" block above.
        payload["cache_session"] = cache.stats()
    if args.out and not args.stream:
        if args.out.lower().endswith(".csv"):
            artifact = result.to_csv()
        else:
            artifact = json.dumps(payload, indent=2) + "\n"
        with open(args.out, "w") as handle:
            handle.write(artifact)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.text)
        if cache is not None:
            stats = result.cache_stats()
            session = cache.stats()
            evictions = (
                f", {session['evictions']} evictions"
                if "evictions" in session
                else ""
            )
            print(
                f"cache ({cache.name}): {stats['hits']} hits, "
                f"{stats['misses']} misses, hit rate {stats['hit_rate']:.0%}"
                f" (session: {session['hits']} hits, {session['misses']} "
                f"misses{evictions})",
                file=sys.stderr,
            )
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.summarize import (
        load_events,
        load_trace,
        render_summary,
        summarize_trace,
    )

    try:
        trace = load_trace(args.trace)
        events = load_events(args.events) if args.events else None
    except (OSError, ReproError) as exc:
        print(f"telemetry: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(trace, events)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_summary(summary))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile service until SIGINT/SIGTERM, then drain and exit."""
    import asyncio
    import signal

    from repro.serve import ReproServer, ServeConfig

    cache = _cache_from(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        cache=cache,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
    )

    async def _run() -> int:
        server = ReproServer(config)
        await server.start()
        if server.port is not None:
            print(f"serving on {config.host}:{server.port}", flush=True)
        if config.unix_path is not None:
            print(f"serving on unix:{config.unix_path}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(getattr(signal, signame), stop.set)
            except (NotImplementedError, OSError):  # non-unix platforms
                pass
        await stop.wait()
        print("draining in-flight requests...", file=sys.stderr)
        await server.shutdown()
        return 0

    # The telemetry session wraps the whole server lifetime, so the trace
    # written at exit covers startup sweep, every request, and the drain.
    with _telemetry_session(args):
        try:
            return asyncio.run(_run())
        except KeyboardInterrupt:
            return 0


def _submit_request(args: argparse.Namespace) -> dict:
    """Map ``repro submit`` flags onto one protocol request."""
    if args.stats:
        return {"op": "stats"}
    if args.name:
        return {
            "op": "experiment",
            "name": args.name,
            "scale": args.scale,
            "seed": args.seed,
            "runner": args.runner,
            "workers": args.workers,
            "shards": args.shards,
            "pathfind": args.pathfind,
            "rewrite": args.rewrite,
        }
    if args.benchmark:
        return {
            "op": "baseline" if args.baseline else "compile",
            "benchmark": args.benchmark,
            "qubits": args.qubits,
            "rate": args.rate,
            "stars": args.stars,
            "seed": args.seed,
            "max_rsl": args.max_rsl,
            "pathfind": args.pathfind or "vector",
            "rewrite": args.rewrite or "on",
            "passes": args.passes,
        }
    raise ReproError(
        "submit: pick a request — --name EXPERIMENT, "
        "--benchmark NAME --qubits N [--baseline], or --stats"
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Send one request to a running server; stream the response down."""
    from repro.experiments.streams import JsonlStreamWriter
    from repro.serve import ServeClient, ServerError
    from repro.serve.protocol import record_from_payload

    try:
        request = _submit_request(args)
    except ReproError as exc:
        print(exc, file=sys.stderr)
        return 2
    client = ServeClient(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        timeout=args.timeout,
    )
    if args.wait:
        client.wait_until_up(timeout=args.wait)
    # Records stream to --out (extension-selected writer) or stdout JSONL
    # the moment their frames arrive — the submit path shares the
    # `--stream --out` writers, so server and local files are line-equal.
    writer = make_stream_writer(args.out) if args.out else None
    if writer is None and request["op"] == "experiment" and not args.json:
        writer = JsonlStreamWriter(sys.stdout)

    def on_frame(frame: dict) -> None:
        if frame["frame"] == "record" and writer is not None:
            writer.write(record_from_payload(frame["record"]))
        elif frame["frame"] == "pass" and not args.json:
            print(
                f"pass {frame['pass']}: {frame['seconds']:.3f} s",
                file=sys.stderr,
            )

    try:
        run = client.submit(request, on_frame=on_frame)
    except (OSError, ReproError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.out and writer is not None:
            writer.close()
            print(
                f"wrote {args.out} ({writer.records_written} records, "
                "streamed)",
                file=sys.stderr,
            )
    if args.frames_out:
        # The response verbatim: the ack, then the shared stream's exact
        # wire bytes — what benchmarks/serve_schema.py validates in CI.
        from repro.serve.protocol import encode_frame

        with open(args.frames_out, "wb") as handle:
            if run.ack is not None:
                handle.write(encode_frame(run.ack))
            for line in run.raw:
                handle.write(line)
        print(f"wrote {args.frames_out}", file=sys.stderr)
    try:
        run.raise_for_error()
    except ServerError as exc:
        print(f"submit: server error ({exc.kind}): {exc}", file=sys.stderr)
        return 1
    if run.ack is not None and run.coalesced:
        print("coalesced onto an in-flight identical request", file=sys.stderr)
    if request["op"] == "stats":
        print(json.dumps(run.stats, indent=2))
        return 0
    if request["op"] == "experiment":
        result = run.experiment_result()
        if args.json:
            print(json.dumps(result.to_json_obj(), indent=2))
        else:
            summary = run.summary or {}
            print(
                f"streamed {len(run.records)} records in "
                f"{summary.get('elapsed_s', 0.0):.3f} s "
                f"(cache hit rate {summary.get('cache', {}).get('hit_rate', 0.0):.0%})",
                file=sys.stderr,
            )
        return 0
    print(json.dumps(run.result, indent=2))
    return 0


def cmd_percolate(args: argparse.Namespace) -> int:
    from repro.online.percolation import sample_lattice
    from repro.online.renormalize import renormalize
    from repro.viz import render_renormalization

    lattice = sample_lattice(args.size, args.rate, rng=args.seed)
    target = max(1, args.size // args.node)
    result = renormalize(lattice.copy(), target)
    print(
        f"RSL {args.size}x{args.size} at p={args.rate}: renormalization to "
        f"{target}x{target} {'succeeded' if result.success else 'FAILED'} "
        f"(achieved {result.lattice_size}, visited {result.visited_sites})"
    )
    print(render_renormalization(lattice, result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OnePerc reproduction CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser("compile", help="compile with OnePerc")
    _add_common_compile_args(compile_parser)
    compile_parser.add_argument(
        "--show-ir", type=int, default=0, metavar="N", help="print the first N IR layers"
    )
    compile_parser.set_defaults(handler=cmd_compile)

    baseline_parser = commands.add_parser(
        "baseline", help="run the OneQ repeat-until-success baseline"
    )
    _add_common_compile_args(baseline_parser)
    baseline_parser.set_defaults(handler=cmd_baseline)

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a table/figure via the experiment registry"
    )
    experiment_parser.add_argument(
        "--name",
        help="registered experiment name: " + ", ".join(experiment_names()),
    )
    experiment_parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    experiment_parser.add_argument("--scale", default="bench", choices=list(SCALES))
    experiment_parser.add_argument("--seed", type=int, default=0)
    experiment_parser.add_argument(
        "--pathfind",
        default=None,
        choices=list(PATHFINDS),
        help="force one renormalization path-search implementation on every "
        "job (records are byte-identical; 'scalar' is the parity oracle)",
    )
    experiment_parser.add_argument(
        "--rewrite",
        default=None,
        choices=list(REWRITES),
        help="force the pattern-rewrite pass on or off for every compile "
        "job (records are byte-identical; 'off' is the unrewritten oracle)",
    )
    experiment_parser.add_argument(
        "--runner",
        default="serial",
        choices=list(RUNNERS),
        help="execution backend for the experiment's jobs",
    )
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for pool runners (records are identical for any N)",
    )
    experiment_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="jobs per pool dispatch for --runner thread|process "
        "(default: auto-sized ~jobs/(4*workers); records are identical "
        "for any N)",
    )
    experiment_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count for --runner sharded: jobs are partitioned by a "
        "stable hash of the job key and each shard runs in its own "
        "subprocess (records are identical for any N)",
    )
    experiment_parser.add_argument(
        "--stream",
        action="store_true",
        help="yield records as they complete instead of waiting for the "
        "whole sweep; with --out, the writer flushes per record "
        "(.csv -> incremental CSV, otherwise JSON Lines)",
    )
    experiment_parser.add_argument(
        "--json",
        action="store_true",
        help="print the structured records as JSON instead of the rendered table",
    )
    experiment_parser.add_argument(
        "--out",
        metavar="FILE",
        help="also export the records to FILE (.csv -> CSV, otherwise JSON)",
    )
    _add_cache_args(experiment_parser)
    _add_telemetry_args(experiment_parser)
    experiment_parser.set_defaults(handler=cmd_experiment)

    telemetry_parser = commands.add_parser(
        "telemetry",
        help="inspect trace/event files written by --trace-out/--events-out",
    )
    telemetry_commands = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )
    summarize_parser = telemetry_commands.add_parser(
        "summarize",
        help="per-pass wall/CPU time, per-shard jobs, and cache hit rate "
        "from a JSONL trace",
    )
    summarize_parser.add_argument(
        "--trace", required=True, metavar="FILE", help="JSONL trace file"
    )
    summarize_parser.add_argument(
        "--events", metavar="FILE", help="JSONL events file (adds event counts)"
    )
    summarize_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    summarize_parser.set_defaults(handler=cmd_telemetry)

    serve_parser = commands.add_parser(
        "serve",
        help="run the streaming compile service (JSONL over TCP/unix socket)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (0 picks a free port, printed at startup)",
    )
    serve_parser.add_argument(
        "--unix-socket",
        metavar="PATH",
        default=None,
        help="also (or instead) listen on a unix domain socket at PATH",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="concurrent compiles; further requests queue (identical "
        "concurrent requests coalesce onto one compile regardless)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock bound; a timed-out subscriber gets an "
        "error frame (a coalesced compile keeps serving other subscribers)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight requests before cancelling",
    )
    _add_cache_args(serve_parser)
    _add_telemetry_args(serve_parser)
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = commands.add_parser(
        "submit",
        help="send one request to a running `repro serve` and stream the result",
    )
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument("--port", type=int, default=None)
    submit_parser.add_argument(
        "--unix-socket", metavar="PATH", default=None,
        help="connect over a unix domain socket instead of TCP",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="socket timeout for connect and reads",
    )
    submit_parser.add_argument(
        "--wait", type=float, nargs="?", const=10.0, default=None,
        metavar="SECONDS",
        help="poll until the server accepts connections before submitting "
        "(races startup; bare --wait polls for 10 s)",
    )
    submit_parser.add_argument(
        "--name", help="experiment request: a registered experiment name"
    )
    submit_parser.add_argument("--scale", default="bench", choices=list(SCALES))
    submit_parser.add_argument("--seed", type=int, default=0)
    submit_parser.add_argument(
        "--runner", default="serial", choices=list(RUNNERS),
        help="server-side execution backend for experiment requests",
    )
    submit_parser.add_argument("--workers", type=int, default=None, metavar="N")
    submit_parser.add_argument("--shards", type=int, default=None, metavar="N")
    submit_parser.add_argument(
        "--pathfind", default=None, choices=list(PATHFINDS)
    )
    submit_parser.add_argument(
        "--rewrite", default=None, choices=list(REWRITES)
    )
    submit_parser.add_argument(
        "--passes", metavar="NAMES", default=None,
        help="compile requests only: comma-separated extra passes "
        "(server-side vocabulary: " + ", ".join(pass_names()) + ")",
    )
    submit_parser.add_argument(
        "--benchmark", choices=sorted(BENCHMARKS),
        help="compile request: benchmark family (with --qubits)",
    )
    submit_parser.add_argument("--qubits", type=int, default=None)
    submit_parser.add_argument("--rate", type=float, default=0.75)
    submit_parser.add_argument("--stars", type=int, default=4)
    submit_parser.add_argument("--max-rsl", type=int, default=10**6)
    submit_parser.add_argument(
        "--baseline", action="store_true",
        help="run the OneQ baseline instead of the OnePerc compile",
    )
    submit_parser.add_argument(
        "--stats", action="store_true",
        help="fetch the server's live introspection snapshot",
    )
    submit_parser.add_argument(
        "--json", action="store_true",
        help="print the folded result as JSON instead of streaming records",
    )
    submit_parser.add_argument(
        "--out", metavar="FILE",
        help="stream records to FILE as they arrive (.csv -> CSV, else JSONL)",
    )
    submit_parser.add_argument(
        "--frames-out", metavar="FILE",
        help="also dump the response's raw protocol frames (ack + stream) "
        "as JSONL, for benchmarks/serve_schema.py validation",
    )
    submit_parser.set_defaults(handler=cmd_submit)

    percolate_parser = commands.add_parser(
        "percolate", help="sample and renormalize one RSL"
    )
    percolate_parser.add_argument("--size", type=int, default=24)
    percolate_parser.add_argument("--rate", type=float, default=0.75)
    percolate_parser.add_argument("--node", type=int, default=8)
    percolate_parser.add_argument("--seed", type=int, default=0)
    percolate_parser.set_defaults(handler=cmd_percolate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `repro submit --stats | head`) closed
        # early; swallow the noise and let the shell see a clean exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
