"""End-to-end compiler driver and result records."""

from repro.compiler.driver import (
    CompilationResult,
    OnePercCompiler,
    rsl_size_for,
    virtual_size_for,
)

__all__ = [
    "OnePercCompiler",
    "CompilationResult",
    "virtual_size_for",
    "rsl_size_for",
]
