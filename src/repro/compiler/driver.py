"""The end-to-end OnePerc compiler, as a facade over the pass pipeline.

The full Fig. 2 flow (circuit -> {J, CZ} -> measurement pattern / program
graph state -> offline mapping to a FlexLattice IR -> intermediate-level
instructions -> online execution over streamed RSLs -> #RSL / #fusion
metrics) lives in :mod:`repro.pipeline`; this module keeps the original
one-object API.  ``OnePercCompiler`` is configuration plus delegation: the
same constructor, the same ``compile``/``compile_baseline`` signatures, the
same :class:`CompilationResult` — and bit-identical metrics for the same
seed, because the pipeline derives its RNG streams exactly as the old
driver did.
"""

from __future__ import annotations

from repro.baseline.retry import DEFAULT_RSL_CAP, BaselineResult
from repro.circuits.circuit import Circuit
from repro.hardware.architecture import HardwareConfig
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.result import CompilationResult
from repro.pipeline.settings import (
    PipelineSettings,
    rsl_size_for,
    virtual_size_for,
)
from repro.utils.rng import RandomStream

__all__ = [
    "CompilationResult",
    "OnePercCompiler",
    "rsl_size_for",
    "virtual_size_for",
]


class OnePercCompiler:
    """The randomness-aware compiler (offline + online passes)."""

    def __init__(
        self,
        fusion_success_rate: float = 0.75,
        resource_state_size: int = 4,
        rsl_size: int | None = None,
        virtual_size: int | None = None,
        occupancy_limit: float = 0.25,
        refresh_every: int | None = None,
        memory_budget_bytes: int | None = None,
        bytes_per_node_layer: int | None = None,
        photon_loss_rate: float = 0.0,
        seed: int | None = None,
        max_rsl: int = DEFAULT_RSL_CAP,
        emit_instructions: bool = False,
        node_side: int | None = None,
    ) -> None:
        self.settings = PipelineSettings(
            fusion_success_rate=fusion_success_rate,
            resource_state_size=resource_state_size,
            rsl_size=rsl_size,
            virtual_size=virtual_size,
            node_side=node_side,
            occupancy_limit=occupancy_limit,
            refresh_every=refresh_every,
            memory_budget_bytes=memory_budget_bytes,
            bytes_per_node_layer=bytes_per_node_layer,
            photon_loss_rate=photon_loss_rate,
            max_rsl=max_rsl,
            emit_instructions=emit_instructions,
        )
        self.pipeline = Pipeline(self.settings, seed=seed)
        self.stream = RandomStream(seed)  # kept for API compatibility

    def __getattr__(self, name: str):
        # Every knob used to be a plain instance attribute; forward reads to
        # the settings object so pre-pipeline callers keep working.
        settings = self.__dict__.get("settings")
        if settings is not None and name in PipelineSettings.__dataclass_fields__:
            return getattr(settings, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- configuration ------------------------------------------------------

    def hardware_for(self, num_qubits: int) -> tuple[HardwareConfig, int]:
        """Resolve the hardware config and virtual size for a program."""
        return self.settings.hardware_for(num_qubits)

    # -- compilation ----------------------------------------------------------

    def compile(self, circuit: Circuit) -> CompilationResult:
        """Full OnePerc compilation of ``circuit``; see the paper's Fig. 2."""
        return self.pipeline.compile(circuit)

    def compile_baseline(self, circuit: Circuit) -> BaselineResult:
        """OneQ + repeat-until-success on the same hardware (Section 7.1)."""
        return self.pipeline.compile_baseline(circuit)
