"""The end-to-end OnePerc compiler.

Chains the full pipeline of Fig. 2: circuit -> {J, CZ} -> measurement
pattern / program graph state -> offline mapping to a FlexLattice IR ->
intermediate-level instructions -> online execution over streamed RSLs ->
#RSL / #fusion metrics.  Also exposes the OneQ + repeat-until-success
baseline for side-by-side comparison (Table 2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.baseline.oneq import plan_oneq
from repro.baseline.retry import (
    DEFAULT_RSL_CAP,
    BaselineResult,
    RepeatUntilSuccessExecutor,
)
from repro.circuits.circuit import Circuit
from repro.errors import CompilationError
from repro.graphstate.resource import ResourceStateSpec
from repro.hardware.architecture import HardwareConfig
from repro.ir.instructions import Instruction, lower_ir
from repro.mbqc.translate import translate_circuit
from repro.offline.mapper import MappingResult, OfflineMapper
from repro.online.timelike import OnlineReshaper, ReshapeMetrics
from repro.utils.rng import RandomStream

#: Table 1's virtual-hardware sizing: one lattice column per circuit qubit,
#: arranged square (4 qubits -> 2x2, 25 -> 5x5, ...).
def virtual_size_for(num_qubits: int) -> int:
    return max(2, math.isqrt(num_qubits) + (0 if math.isqrt(num_qubits) ** 2 == num_qubits else 1))


#: Table 1's RSL sizing: the renormalized lattice must reach the virtual
#: hardware size, so the RSL side is ``node_side * virtual_side``; the paper
#: uses 12x at p = 0.90 and 24x at p = 0.75.
def rsl_size_for(num_qubits: int, fusion_success_rate: float, node_side: int | None = None) -> int:
    if node_side is None:
        node_side = 12 if fusion_success_rate >= 0.85 else 24
    return node_side * virtual_size_for(num_qubits)


@dataclass
class CompilationResult:
    """Everything measured for one program compilation."""

    circuit_name: str
    num_qubits: int
    rsl_count: int
    fusion_count: int
    logical_layers: int
    mapping: MappingResult
    reshape: ReshapeMetrics
    offline_seconds: float
    online_seconds: float
    instructions: list[Instruction] = field(default_factory=list, repr=False)

    @property
    def pl_ratio(self) -> float:
        return self.reshape.pl_ratio

    @property
    def online_seconds_per_rsl(self) -> float:
        if self.rsl_count == 0:
            return float("nan")
        return self.online_seconds / self.rsl_count


class OnePercCompiler:
    """The randomness-aware compiler (offline + online passes)."""

    def __init__(
        self,
        fusion_success_rate: float = 0.75,
        resource_state_size: int = 4,
        rsl_size: int | None = None,
        virtual_size: int | None = None,
        occupancy_limit: float = 0.25,
        refresh_every: int | None = None,
        memory_budget_bytes: int | None = None,
        bytes_per_node_layer: int | None = None,
        photon_loss_rate: float = 0.0,
        seed: int | None = None,
        max_rsl: int = DEFAULT_RSL_CAP,
        emit_instructions: bool = False,
    ) -> None:
        self.fusion_success_rate = fusion_success_rate
        self.resource_state_size = resource_state_size
        self.rsl_size = rsl_size
        self.virtual_size = virtual_size
        self.occupancy_limit = occupancy_limit
        self.refresh_every = refresh_every
        self.memory_budget_bytes = memory_budget_bytes
        self.bytes_per_node_layer = bytes_per_node_layer
        self.photon_loss_rate = photon_loss_rate
        self.stream = RandomStream(seed)
        self.max_rsl = max_rsl
        self.emit_instructions = emit_instructions

    # -- configuration ------------------------------------------------------

    def hardware_for(self, num_qubits: int) -> tuple[HardwareConfig, int]:
        """Resolve the hardware config and virtual size for a program."""
        virtual = self.virtual_size or virtual_size_for(num_qubits)
        rsl = self.rsl_size or rsl_size_for(num_qubits, self.fusion_success_rate)
        config = HardwareConfig(
            rsl_size=rsl,
            resource_state=ResourceStateSpec(self.resource_state_size),
            fusion_success_rate=self.fusion_success_rate,
            photon_loss_rate=self.photon_loss_rate,
        )
        return config, virtual

    # -- compilation ----------------------------------------------------------

    def compile(self, circuit: Circuit) -> CompilationResult:
        """Full OnePerc compilation of ``circuit``; see the paper's Fig. 2."""
        config, virtual = self.hardware_for(circuit.num_qubits)
        pattern = translate_circuit(circuit)

        mapper_kwargs = dict(
            width=virtual,
            occupancy_limit=self.occupancy_limit,
            refresh_every=self.refresh_every,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        if self.bytes_per_node_layer is not None:
            mapper_kwargs["bytes_per_node_layer"] = self.bytes_per_node_layer
        offline_start = time.perf_counter()
        mapping = OfflineMapper(**mapper_kwargs).map_pattern(pattern)
        offline_seconds = time.perf_counter() - offline_start
        instructions = lower_ir(mapping.ir) if self.emit_instructions else []

        reshaper = OnlineReshaper(
            config,
            virtual_size=virtual,
            rng=self.stream.child("online", circuit.name).generator,
            max_rsl=self.max_rsl,
        )
        online_start = time.perf_counter()
        reshape = reshaper.run(mapping.demands)
        online_seconds = time.perf_counter() - online_start

        return CompilationResult(
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            rsl_count=reshape.rsl_consumed,
            fusion_count=reshape.fusions,
            logical_layers=reshape.logical_layers,
            mapping=mapping,
            reshape=reshape,
            offline_seconds=offline_seconds,
            online_seconds=online_seconds,
            instructions=instructions,
        )

    def compile_baseline(self, circuit: Circuit) -> BaselineResult:
        """OneQ + repeat-until-success on the same hardware (Section 7.1)."""
        config, _virtual = self.hardware_for(circuit.num_qubits)
        pattern = translate_circuit(circuit)
        try:
            plan = plan_oneq(pattern, config)
        except Exception as exc:  # noqa: BLE001 - surfaced as compilation failure
            raise CompilationError(f"OneQ could not embed {circuit.name}: {exc}") from exc
        executor = RepeatUntilSuccessExecutor(
            config.effective_fusion_rate,
            rsl_cap=self.max_rsl,
            rng=self.stream.child("baseline", circuit.name).generator,
        )
        return executor.run(plan)
