"""Percolated lattices: the random physical graph state on one RSL.

After the semi-static fusion strategy runs, each (merged) RSL is a random
subgraph of an ``N x N`` square lattice: sites are merged resource states
(dead if their root was lost during merging) and bonds are the heralded
outcomes of leaf-leaf fusions.  When the fusion success probability exceeds
the square-lattice bond percolation threshold of 1/2 [40], the lattice has a
giant long-range-connected component — the raw material the renormalization
pass carves into a regular grid (Section 5.1).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import RenormalizationError
from repro.utils.dsu import DisjointSet
from repro.utils.gridgeom import Coord2D
from repro.utils.rng import ensure_rng


@dataclass
class PercolatedLattice:
    """Random subgraph of an ``N x N`` square lattice.

    ``horizontal[r, c]`` is the bond between ``(r, c)`` and ``(r, c+1)``;
    ``vertical[r, c]`` is the bond between ``(r, c)`` and ``(r+1, c)``.
    A bond is usable only if it sampled open *and* both endpoint sites are
    alive.
    """

    sites: np.ndarray  # bool (N, N)
    horizontal: np.ndarray  # bool (N, N-1)
    vertical: np.ndarray  # bool (N-1, N)

    def __post_init__(self) -> None:
        n = self.sites.shape[0]
        if self.sites.shape != (n, n):
            raise RenormalizationError("sites must be square")
        if self.horizontal.shape != (n, max(0, n - 1)):
            raise RenormalizationError("horizontal bonds have the wrong shape")
        if self.vertical.shape != (max(0, n - 1), n):
            raise RenormalizationError("vertical bonds have the wrong shape")

    @property
    def size(self) -> int:
        return self.sites.shape[0]

    def has_bond(self, a: Coord2D, b: Coord2D) -> bool:
        """Whether a usable bond joins sites ``a`` and ``b`` (must be adjacent)."""
        (ra, ca), (rb, cb) = a, b
        if not (self.sites[ra, ca] and self.sites[rb, cb]):
            return False
        if ra == rb and abs(ca - cb) == 1:
            return bool(self.horizontal[ra, min(ca, cb)])
        if ca == cb and abs(ra - rb) == 1:
            return bool(self.vertical[min(ra, rb), ca])
        raise RenormalizationError(f"sites {a} and {b} are not adjacent")

    def neighbors(self, coord: Coord2D) -> Iterator[Coord2D]:
        """Alive sites connected to ``coord`` by a usable bond."""
        row, col = coord
        n = self.size
        if col + 1 < n and self.has_bond(coord, (row, col + 1)):
            yield (row, col + 1)
        if col - 1 >= 0 and self.has_bond(coord, (row, col - 1)):
            yield (row, col - 1)
        if row + 1 < n and self.has_bond(coord, (row + 1, col)):
            yield (row + 1, col)
        if row - 1 >= 0 and self.has_bond(coord, (row - 1, col)):
            yield (row - 1, col)

    def components(self) -> DisjointSet:
        """Disjoint-set over alive sites under usable bonds."""
        dsu: DisjointSet = DisjointSet()
        n = self.size
        alive_rows, alive_cols = np.nonzero(self.sites)
        for row, col in zip(alive_rows.tolist(), alive_cols.tolist()):
            dsu.add((row, col))
        h_rows, h_cols = np.nonzero(self.horizontal)
        for row, col in zip(h_rows.tolist(), h_cols.tolist()):
            if self.sites[row, col] and self.sites[row, col + 1]:
                dsu.union((row, col), (row, col + 1))
        v_rows, v_cols = np.nonzero(self.vertical)
        for row, col in zip(v_rows.tolist(), v_cols.tolist()):
            if self.sites[row, col] and self.sites[row + 1, col]:
                dsu.union((row, col), (row + 1, col))
        return dsu

    def largest_cluster_fraction(self) -> float:
        """Size of the largest cluster over total sites (the order parameter)."""
        if self.size == 0:
            return 0.0
        dsu = self.components()
        if len(dsu) == 0:
            return 0.0
        return len(dsu.largest_component()) / (self.size * self.size)

    def remove_site(self, coord: Coord2D) -> None:
        """Measure a site out in Z: mark it dead (used during path carving)."""
        self.sites[coord] = False

    def copy(self) -> "PercolatedLattice":
        return PercolatedLattice(
            sites=self.sites.copy(),
            horizontal=self.horizontal.copy(),
            vertical=self.vertical.copy(),
        )


def sample_lattice(
    size: int,
    bond_probability: float,
    rng=None,
    site_alive: np.ndarray | None = None,
) -> PercolatedLattice:
    """Sample a bond-percolated ``size x size`` lattice.

    ``site_alive`` (from the RSL merging step) marks sites whose root
    survived; ``None`` means all alive.  Bond outcomes are iid Bernoulli at
    ``bond_probability`` — the leaf-leaf fusion success rate.
    """
    if size < 1:
        raise RenormalizationError(f"lattice size must be >= 1, got {size}")
    if not 0.0 <= bond_probability <= 1.0:
        raise RenormalizationError(
            f"bond probability must be in [0, 1], got {bond_probability}"
        )
    rng = ensure_rng(rng)
    sites = (
        np.ones((size, size), dtype=bool)
        if site_alive is None
        else site_alive.astype(bool).copy()
    )
    horizontal = rng.random((size, max(0, size - 1))) < bond_probability
    vertical = rng.random((max(0, size - 1), size)) < bond_probability
    return PercolatedLattice(sites=sites, horizontal=horizontal, vertical=vertical)


def spanning_probability(
    size: int,
    bond_probability: float,
    trials: int,
    rng=None,
) -> float:
    """Monte-Carlo estimate of the top-bottom spanning probability.

    Used by the tests to confirm the implementation reproduces the
    square-lattice bond percolation threshold of 1/2 [40] — the fact the
    whole online pass rests on.
    """
    rng = ensure_rng(rng)
    hits = 0
    for _ in range(trials):
        lattice = sample_lattice(size, bond_probability, rng)
        dsu = lattice.components()
        top = [(0, col) for col in range(size) if lattice.sites[0, col]]
        bottom = [(size - 1, col) for col in range(size) if lattice.sites[size - 1, col]]
        spanning = any(
            dsu.connected(a, b) for a in top for b in bottom
        )
        hits += int(spanning)
    return hits / trials
