"""Percolated lattices: the random physical graph state on one RSL.

After the semi-static fusion strategy runs, each (merged) RSL is a random
subgraph of an ``N x N`` square lattice: sites are merged resource states
(dead if their root was lost during merging) and bonds are the heralded
outcomes of leaf-leaf fusions.  When the fusion success probability exceeds
the square-lattice bond percolation threshold of 1/2 [40], the lattice has a
giant long-range-connected component — the raw material the renormalization
pass carves into a regular grid (Section 5.1).

Connectivity is computed two ways: :meth:`PercolatedLattice.components` runs
a vectorized numpy label propagation — the primitive behind every spanning
sweep and cluster-fraction estimate (autotuning, Figs. 13(a)/16, the
threshold tests), which sample thousands of lattices per curve — while
:meth:`PercolatedLattice.components_dsu` keeps the original per-bond
union-find as the reference implementation and micro-benchmark baseline.
Both expose the same query interface.  The renormalization pass's per-strip
connectivity pre-check rides the same vectorized primitive
(:func:`label_grid_components`, which handles rectangular strips), with its
own scalar DSU kept as the oracle in :mod:`repro.online.renormalize`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import RenormalizationError
from repro.utils.dsu import DisjointSet
from repro.utils.gridgeom import Coord2D
from repro.utils.rng import ensure_rng

#: Label value marking dead sites in a component label grid.
DEAD_LABEL = -1

#: Null-predecessor marker in a :func:`frontier_bfs` predecessor array
#: (the same sentinel scipy.sparse.csgraph uses, so the two engines are
#: drop-in interchangeable).
NO_PREDECESSOR = -9999

#: Lazily resolved compiled BFS engine: ``(csr_array, breadth_first_order)``
#: from scipy.sparse, or ``False`` once the import is known to fail.
_FRONTIER_ENGINE: tuple | bool | None = None


def _frontier_engine() -> tuple | None:
    """The compiled frontier engine (scipy.sparse.csgraph), if importable.

    scipy is an optional accelerator, never a requirement: every caller has
    a numpy/pure-python fallback with identical answers, and the resolution
    is cached so the import cost is paid at most once per process.
    """
    global _FRONTIER_ENGINE
    if _FRONTIER_ENGINE is None:
        try:
            from scipy.sparse import csr_array
            from scipy.sparse.csgraph import breadth_first_order

            _FRONTIER_ENGINE = (csr_array, breadth_first_order)
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            _FRONTIER_ENGINE = False
    return _FRONTIER_ENGINE or None


def frontier_adjacency(
    sources: np.ndarray, targets: np.ndarray, node_count: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency ``(indptr, indices)`` from directed edge lists.

    The stable sort keeps each node's out-edges in the order they appear in
    ``sources``/``targets`` — that order is the tie-break contract of
    :func:`frontier_bfs`, which is how the renormalization path search
    encodes the scalar BFS's deterministic move order into the graph.
    """
    order = np.argsort(sources, kind="stable")
    indices = targets[order].astype(np.int32, copy=False)
    indptr = np.zeros(node_count + 1, dtype=np.int32)
    np.cumsum(np.bincount(sources, minlength=node_count), out=indptr[1:])
    return indptr, indices


def _frontier_bfs_python(
    indptr: np.ndarray, indices: np.ndarray, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pure-python twin of scipy's ``breadth_first_order``.

    Bit-for-bit the same contract: FIFO pops, per-node edges walked in CSR
    storage order, the first discoverer becoming the predecessor.  Kept as
    the no-scipy fallback and as the reference the engine-parity test pins
    scipy's (undocumented but load-bearing) tie-break behaviour against.
    """
    node_count = indptr.shape[0] - 1
    predecessors = np.full(node_count, NO_PREDECESSOR, dtype=np.int32)
    indptr_list = indptr.tolist()
    indices_list = indices.tolist()
    seen = bytearray(node_count)
    seen[source] = 1
    order = [source]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for neighbor in indices_list[indptr_list[node] : indptr_list[node + 1]]:
            if not seen[neighbor]:
                seen[neighbor] = 1
                predecessors[neighbor] = node
                order.append(neighbor)
    return np.array(order, dtype=np.int32), predecessors


def frontier_bfs(
    indptr: np.ndarray, indices: np.ndarray, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """Breadth-first wavefront over a CSR graph: pop order + predecessors.

    Pops are FIFO and each popped node's out-edges are walked in CSR
    storage order, the first discoverer of a node becoming its predecessor
    — exactly the semantics of a scalar ``deque`` BFS, which is what lets
    the vectorized renormalization path search reproduce the scalar
    oracle's paths and visited-site counts byte-for-byte.  Runs on scipy's
    compiled ``breadth_first_order`` when available, else on the identical
    pure-python loop.
    """
    engine = _frontier_engine()
    if engine is None:
        order, predecessors = _frontier_bfs_python(indptr, indices, source)
    else:
        csr_array, breadth_first_order = engine
        node_count = indptr.shape[0] - 1
        graph = csr_array(
            (np.ones(indices.shape[0], dtype=np.float64), indices, indptr),
            shape=(node_count, node_count),
        )
        order, predecessors = breadth_first_order(
            graph, source, directed=True, return_predecessors=True
        )
    if obs.active() is not None:
        # Out-of-band wavefront-size telemetry; the ``active`` gate keeps
        # the untraced hot path to one global read.
        obs.observe("online.bfs_nodes", int(order.shape[0]))
    return order, predecessors


def grid_spans(
    alive: np.ndarray, horizontal: np.ndarray, vertical: np.ndarray
) -> bool:
    """Do the first and last rows of a rectangular bond grid touch at all?

    Shapes follow :func:`label_grid_components` (``alive`` is ``(R, C)``,
    ``horizontal`` bonds along axis 1, ``vertical`` along axis 0).  This is
    the relaxed spanning question behind the renormalization strip
    pre-check; see :func:`grid_spans_from_usable` for the engine.
    """
    usable_across = horizontal & alive[:, :-1] & alive[:, 1:]
    usable_down = vertical & alive[:-1, :] & alive[1:, :]
    return grid_spans_from_usable(alive, usable_across, usable_down)


def grid_spans_from_usable(
    alive: np.ndarray, usable_across: np.ndarray, usable_down: np.ndarray
) -> bool:
    """:func:`grid_spans` on pre-masked bonds (both endpoints known alive).

    The split exists so the vectorized path search can hand over the very
    masks it is about to expand the wavefront with — a positive pre-check
    then seeds the search instead of being recomputed from scratch.  With
    scipy present the answer is one compiled BFS from a virtual source
    hooked to the first row; otherwise it falls back to the same label
    propagation that powers ``PercolatedLattice.components()``.
    """
    if alive.size == 0 or not alive.any():
        return False
    rows, cols = alive.shape
    if _frontier_engine() is None:
        labels = label_grid_components(alive, usable_across, usable_down)
        first = labels[0]
        last = labels[-1]
        first_roots = np.unique(first[first != DEAD_LABEL])
        last_roots = np.unique(last[last != DEAD_LABEL])
        if not first_roots.size or not last_roots.size:
            return False
        return bool(np.intersect1d(first_roots, last_roots, assume_unique=True).size)
    total = rows * cols
    flat = np.arange(total, dtype=np.int64).reshape(rows, cols)
    across = flat[:, :-1][usable_across]
    down = flat[:-1, :][usable_down]
    starts = flat[0][alive[0]]
    sources = np.concatenate(
        [across, across + 1, down, down + cols, np.full(starts.size, total, np.int64)]
    )
    targets = np.concatenate([across + 1, across, down + cols, down, starts])
    indptr, indices = frontier_adjacency(sources, targets, total + 1)
    order, _ = frontier_bfs(indptr, indices, total)
    return bool((order // cols == rows - 1).any())


def label_grid_components(
    alive: np.ndarray, horizontal: np.ndarray, vertical: np.ndarray
) -> np.ndarray:
    """Vectorized flood fill over a rectangular grid: label per site, -1 dead.

    ``alive`` is ``(R, C)`` bool; ``horizontal[r, c]`` bonds ``(r, c)`` to
    ``(r, c+1)`` and ``vertical[r, c]`` bonds ``(r, c)`` to ``(r+1, c)``
    (masked to usable internally, so raw sampled bonds are fine).  Labels
    are flat row-major site indices; each component ends up labelled by its
    minimum index, so the labelling is deterministic.  Min-label
    propagation across the bond grids is interleaved with pointer jumping
    (``labels = labels[labels]``) so chains collapse in logarithmically
    many rounds instead of one round per grid diameter.

    This is the shared primitive behind :meth:`PercolatedLattice.
    label_components` (square lattices) and the renormalization pass's
    per-strip spanning pre-check (rectangular strips).
    """
    rows, cols = alive.shape
    total = rows * cols
    flat = np.arange(total, dtype=np.int64)
    labels = np.where(alive.ravel(), flat, DEAD_LABEL)
    if total == 0 or not alive.any():
        return labels.reshape(rows, cols)
    horizontal = horizontal & alive[:, :-1] & alive[:, 1:]
    vertical = vertical & alive[:-1, :] & alive[1:, :]
    sentinel = total  # larger than any real label, inert under minimum
    grid = np.where(alive, flat.reshape(rows, cols), sentinel)
    while True:
        neighbor_min = grid.copy()
        if cols > 1:
            # Pull the smaller label across each usable bond, both ways.
            np.minimum(
                neighbor_min[:, :-1],
                np.where(horizontal, grid[:, 1:], sentinel),
                out=neighbor_min[:, :-1],
            )
            np.minimum(
                neighbor_min[:, 1:],
                np.where(horizontal, grid[:, :-1], sentinel),
                out=neighbor_min[:, 1:],
            )
        if rows > 1:
            np.minimum(
                neighbor_min[:-1, :],
                np.where(vertical, grid[1:, :], sentinel),
                out=neighbor_min[:-1, :],
            )
            np.minimum(
                neighbor_min[1:, :],
                np.where(vertical, grid[:-1, :], sentinel),
                out=neighbor_min[1:, :],
            )
        if np.array_equal(neighbor_min, grid):
            break
        grid = neighbor_min
        # Pointer jumping: labels are site indices, so chasing them
        # through the flat view compresses label chains exponentially.
        flat_view = np.where(alive.ravel(), grid.ravel(), sentinel)
        padded = np.append(flat_view, sentinel)  # sentinel maps to itself
        while True:
            jumped = padded[flat_view]
            if np.array_equal(jumped, flat_view):
                break
            flat_view = jumped
            padded[:total] = np.where(alive.ravel(), flat_view, sentinel)
        grid = np.where(alive, flat_view.reshape(rows, cols), sentinel)
    return np.where(alive, grid, DEAD_LABEL)


class GridComponents:
    """Connected components of a grid, backed by a flat label array.

    Quacks like the :class:`~repro.utils.dsu.DisjointSet` the callers were
    written against — ``connected``, ``find``, ``largest_component``,
    ``component_size``, ``components``, ``len`` — but every query is an
    array lookup on the ``(N, N)`` label grid produced by the vectorized
    flood fill, with per-component sizes precomputed by ``bincount``.
    """

    def __init__(self, labels: np.ndarray) -> None:
        self.labels = labels
        alive = labels[labels != DEAD_LABEL]
        self._alive_count = int(alive.size)
        self._sizes = (
            np.bincount(alive, minlength=labels.size) if alive.size else np.zeros(0, int)
        )

    def __len__(self) -> int:
        return self._alive_count

    def __contains__(self, coord: Coord2D) -> bool:
        return self.labels[coord] != DEAD_LABEL

    def __iter__(self) -> Iterator[Coord2D]:
        for row, col in np.argwhere(self.labels != DEAD_LABEL).tolist():
            yield (row, col)

    @property
    def component_count(self) -> int:
        """Number of disjoint components among the alive sites."""
        return int(np.count_nonzero(self._sizes))

    def find(self, coord: Coord2D) -> int:
        """Canonical representative (root label) of ``coord``'s component."""
        label = int(self.labels[coord])
        if label == DEAD_LABEL:
            raise KeyError(f"site {coord} is dead")
        return label

    def connected(self, a: Coord2D, b: Coord2D) -> bool:
        """Whether alive sites ``a`` and ``b`` share a component."""
        la, lb = self.labels[a], self.labels[b]
        return la != DEAD_LABEL and la == lb

    def component_size(self, coord: Coord2D) -> int:
        """Size of the component containing ``coord``."""
        return int(self._sizes[self.find(coord)])

    def largest_component_size(self) -> int:
        """Size of the largest component (0 if no alive sites)."""
        return int(self._sizes.max()) if self._sizes.size else 0

    def largest_component(self) -> list[Coord2D]:
        """Sites of the largest component (empty list if no alive sites)."""
        if not self._sizes.size or not self._sizes.any():
            return []
        best = int(self._sizes.argmax())
        return [tuple(coord) for coord in np.argwhere(self.labels == best).tolist()]

    def components(self) -> dict[int, list[Coord2D]]:
        """Map each root label to the list of sites in its component."""
        grouped: dict[int, list[Coord2D]] = {}
        for row, col in np.argwhere(self.labels != DEAD_LABEL).tolist():
            grouped.setdefault(int(self.labels[row, col]), []).append((row, col))
        return grouped

    def row_roots(self, row: int) -> np.ndarray:
        """Distinct root labels present among the alive sites of ``row``."""
        labels = self.labels[row]
        return np.unique(labels[labels != DEAD_LABEL])


@dataclass
class PercolatedLattice:
    """Random subgraph of an ``N x N`` square lattice.

    ``horizontal[r, c]`` is the bond between ``(r, c)`` and ``(r, c+1)``;
    ``vertical[r, c]`` is the bond between ``(r, c)`` and ``(r+1, c)``.
    A bond is usable only if it sampled open *and* both endpoint sites are
    alive.
    """

    sites: np.ndarray  # bool (N, N)
    horizontal: np.ndarray  # bool (N, N-1)
    vertical: np.ndarray  # bool (N-1, N)

    def __post_init__(self) -> None:
        n = self.sites.shape[0]
        if self.sites.shape != (n, n):
            raise RenormalizationError("sites must be square")
        if self.horizontal.shape != (n, max(0, n - 1)):
            raise RenormalizationError("horizontal bonds have the wrong shape")
        if self.vertical.shape != (max(0, n - 1), n):
            raise RenormalizationError("vertical bonds have the wrong shape")

    @property
    def size(self) -> int:
        return self.sites.shape[0]

    def has_bond(self, a: Coord2D, b: Coord2D) -> bool:
        """Whether a usable bond joins sites ``a`` and ``b`` (must be adjacent)."""
        (ra, ca), (rb, cb) = a, b
        if not (self.sites[ra, ca] and self.sites[rb, cb]):
            return False
        if ra == rb and abs(ca - cb) == 1:
            return bool(self.horizontal[ra, min(ca, cb)])
        if ca == cb and abs(ra - rb) == 1:
            return bool(self.vertical[min(ra, rb), ca])
        raise RenormalizationError(f"sites {a} and {b} are not adjacent")

    def neighbors(self, coord: Coord2D) -> Iterator[Coord2D]:
        """Alive sites connected to ``coord`` by a usable bond."""
        row, col = coord
        n = self.size
        if col + 1 < n and self.has_bond(coord, (row, col + 1)):
            yield (row, col + 1)
        if col - 1 >= 0 and self.has_bond(coord, (row, col - 1)):
            yield (row, col - 1)
        if row + 1 < n and self.has_bond(coord, (row + 1, col)):
            yield (row + 1, col)
        if row - 1 >= 0 and self.has_bond(coord, (row - 1, col)):
            yield (row - 1, col)

    def usable_bonds(self) -> tuple[np.ndarray, np.ndarray]:
        """Bond grids masked down to bonds whose both endpoints are alive."""
        horizontal = self.horizontal & self.sites[:, :-1] & self.sites[:, 1:]
        vertical = self.vertical & self.sites[:-1, :] & self.sites[1:, :]
        return horizontal, vertical

    def label_components(self) -> np.ndarray:
        """Vectorized flood fill: component label per site, -1 where dead.

        Delegates to :func:`label_grid_components` (the rectangular-grid
        primitive shared with the renormalization strip pre-check); labels
        are flat site indices, each component labelled by its minimum
        index, so the labelling is deterministic.
        """
        return label_grid_components(self.sites, self.horizontal, self.vertical)

    def components(self) -> GridComponents:
        """Connected components of alive sites under usable bonds.

        The vectorized online hot path; see :meth:`components_dsu` for the
        original union-find formulation (same partition, same interface).
        """
        return GridComponents(self.label_components())

    def components_dsu(self) -> DisjointSet:
        """Reference DSU over alive sites under usable bonds (pre-vectorization)."""
        dsu: DisjointSet = DisjointSet()
        alive_rows, alive_cols = np.nonzero(self.sites)
        for row, col in zip(alive_rows.tolist(), alive_cols.tolist()):
            dsu.add((row, col))
        h_rows, h_cols = np.nonzero(self.horizontal)
        for row, col in zip(h_rows.tolist(), h_cols.tolist()):
            if self.sites[row, col] and self.sites[row, col + 1]:
                dsu.union((row, col), (row, col + 1))
        v_rows, v_cols = np.nonzero(self.vertical)
        for row, col in zip(v_rows.tolist(), v_cols.tolist()):
            if self.sites[row, col] and self.sites[row + 1, col]:
                dsu.union((row, col), (row + 1, col))
        return dsu

    def largest_cluster_fraction(self) -> float:
        """Size of the largest cluster over total sites (the order parameter)."""
        if self.size == 0:
            return 0.0
        return self.components().largest_component_size() / (self.size * self.size)

    def spans_rows(self) -> bool:
        """Whether one component touches both the top and bottom rows.

        Intersects the root-label sets of the two edge rows — one pass over
        ``2N`` labels instead of the old ``O(N^2)`` pairwise connectivity
        checks.
        """
        if self.size == 0:
            return False
        components = self.components()
        top = components.row_roots(0)
        bottom = components.row_roots(self.size - 1)
        return bool(np.intersect1d(top, bottom, assume_unique=True).size)

    def remove_site(self, coord: Coord2D) -> None:
        """Measure a site out in Z: mark it dead (used during path carving)."""
        self.sites[coord] = False

    def copy(self) -> "PercolatedLattice":
        return PercolatedLattice(
            sites=self.sites.copy(),
            horizontal=self.horizontal.copy(),
            vertical=self.vertical.copy(),
        )


def sample_lattice(
    size: int,
    bond_probability: float,
    rng=None,
    site_alive: np.ndarray | None = None,
) -> PercolatedLattice:
    """Sample a bond-percolated ``size x size`` lattice.

    ``site_alive`` (from the RSL merging step) marks sites whose root
    survived; ``None`` means all alive.  Bond outcomes are iid Bernoulli at
    ``bond_probability`` — the leaf-leaf fusion success rate.
    """
    if size < 1:
        raise RenormalizationError(f"lattice size must be >= 1, got {size}")
    if not 0.0 <= bond_probability <= 1.0:
        raise RenormalizationError(
            f"bond probability must be in [0, 1], got {bond_probability}"
        )
    rng = ensure_rng(rng)
    sites = (
        np.ones((size, size), dtype=bool)
        if site_alive is None
        else site_alive.astype(bool).copy()
    )
    horizontal = rng.random((size, max(0, size - 1))) < bond_probability
    vertical = rng.random((max(0, size - 1), size)) < bond_probability
    return PercolatedLattice(sites=sites, horizontal=horizontal, vertical=vertical)


def spanning_probability(
    size: int,
    bond_probability: float,
    trials: int,
    rng=None,
) -> float:
    """Monte-Carlo estimate of the top-bottom spanning probability.

    Used by the tests to confirm the implementation reproduces the
    square-lattice bond percolation threshold of 1/2 [40] — the fact the
    whole online pass rests on.
    """
    rng = ensure_rng(rng)
    hits = 0
    for _ in range(trials):
        lattice = sample_lattice(size, bond_probability, rng)
        hits += int(lattice.spans_rows())
    return hits / trials
