"""Automatic node-size selection (the Fig. 13(a) / Fig. 16 policy).

Fig. 16 shows the renormalization success rate is a sharp sigmoid in the
average node size, which "motivates us to choose the smallest average node
size that brings the success probability close to 1".  This module turns
that sentence into a reusable policy: estimate the success curve by
Monte-Carlo, find its saturation point, and size the virtual hardware for a
given RSL (or the RSL for a desired virtual hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RenormalizationError
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.rng import ensure_rng

#: "Close to 1" for the saturation search.
DEFAULT_TARGET_SUCCESS = 0.95


@dataclass(frozen=True)
class NodeSizeChoice:
    """Result of an autotuning run."""

    rsl_size: int
    bond_probability: float
    node_side: int
    estimated_success: float
    trials: int

    @property
    def virtual_side(self) -> int:
        """Coarse lattice side the RSL renormalizes to at this node size."""
        return max(1, self.rsl_size // self.node_side)


def estimate_success(
    rsl_size: int,
    node_side: int,
    bond_probability: float,
    trials: int,
    rng,
) -> float:
    """Monte-Carlo success rate of renormalizing to ``rsl_size//node_side``."""
    if node_side < 1 or node_side > rsl_size:
        raise RenormalizationError(
            f"node side {node_side} outside [1, {rsl_size}]"
        )
    target = max(1, rsl_size // node_side)
    hits = sum(
        renormalize(sample_lattice(rsl_size, bond_probability, rng), target).success
        for _ in range(trials)
    )
    return hits / trials


def choose_node_side(
    rsl_size: int,
    bond_probability: float,
    target_success: float = DEFAULT_TARGET_SUCCESS,
    trials: int = 12,
    rng=None,
    step: int = 2,
) -> NodeSizeChoice:
    """Smallest node side whose success rate reaches ``target_success``.

    Exploits monotonicity (coarser nodes succeed more often — a property the
    test-suite checks) with a linear scan in ``step`` increments; the curve
    is sharp enough (Fig. 16) that finer search buys nothing.
    """
    if not 0.0 < target_success <= 1.0:
        raise RenormalizationError(
            f"target success must be in (0, 1], got {target_success}"
        )
    rng = ensure_rng(rng)
    best: NodeSizeChoice | None = None
    for node_side in range(max(2, step), rsl_size + 1, step):
        success = estimate_success(rsl_size, node_side, bond_probability, trials, rng)
        best = NodeSizeChoice(
            rsl_size=rsl_size,
            bond_probability=bond_probability,
            node_side=node_side,
            estimated_success=success,
            trials=trials,
        )
        if success >= target_success:
            return best
    if best is None:
        raise RenormalizationError(f"RSL of {rsl_size} admits no node sizes")
    return best  # nothing saturated; return the coarsest (caller may retry)


def rsl_size_for_virtual(
    virtual_side: int,
    bond_probability: float,
    target_success: float = DEFAULT_TARGET_SUCCESS,
    trials: int = 12,
    rng=None,
    candidate_node_sides: tuple[int, ...] = (8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48),
) -> NodeSizeChoice:
    """Smallest RSL hosting a ``virtual_side`` lattice at the target success.

    This is how Table 1's RSL sizes arise from Fig. 16: walk candidate node
    sides and return the first whose ``virtual_side * node`` RSL saturates.
    """
    if virtual_side < 1:
        raise RenormalizationError("virtual side must be >= 1")
    rng = ensure_rng(rng)
    last: NodeSizeChoice | None = None
    for node_side in candidate_node_sides:
        rsl_size = node_side * virtual_side
        success = estimate_success(rsl_size, node_side, bond_probability, trials, rng)
        last = NodeSizeChoice(
            rsl_size=rsl_size,
            bond_probability=bond_probability,
            node_side=node_side,
            estimated_success=success,
            trials=trials,
        )
        if success >= target_success:
            return last
    if last is None:
        raise RenormalizationError("no candidate node sides supplied")
    return last


def success_curve(
    rsl_size: int,
    bond_probability: float,
    node_sides: list[int],
    trials: int = 12,
    rng=None,
) -> list[tuple[int, float]]:
    """The (node side, success rate) series behind Fig. 16, reusable."""
    rng = ensure_rng(rng)
    return [
        (node, estimate_success(rsl_size, node, bond_probability, trials, rng))
        for node in sorted(node_sides)
    ]


def saturation_point(curve: list[tuple[int, float]], threshold: float) -> int | None:
    """First node side on a measured curve whose success >= threshold."""
    sides = [side for side, _s in curve]
    successes = [s for _side, s in curve]
    # The curve is monotone up to noise; find the first crossing.
    for side, success in zip(sides, successes):
        if success >= threshold:
            return side
    return None
