"""Time-like connections and the (2+1)-D reshaping driver (Section 5.2).

RSLs stream in continuously.  Each one attempts a 2D renormalization; an RSL
becomes a *logical layer* if (1) the renormalized lattice reaches the target
size and (2) it establishes every time-like connection demanded by the IR
program with prior logical layers.  Otherwise it is a *routing layer*: all of
its qubits fuse forward to the next RSL, extending the temporal percolation
until the next renormalization succeeds.

Cross-layer connections park the preceding node's qubits in delay lines until
the first RSL after the relevant logical layer, so the photon lifetime bounds
how many routing layers a connection can wait through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareError
from repro.hardware.architecture import HardwareConfig
from repro.hardware.delay import DelayLineBank
from repro.hardware.fusion import FusionDevice
from repro.online.fusion_strategy import form_layer
from repro.online.renormalize import PATHFINDS, renormalize
from repro.utils.rng import ensure_rng

#: Physical qubits fused per requested time-like connection (the "set of
#: physical qubits around the preceding node", Section 5.2).  The connection
#: is established if at least one of them succeeds and the path search on the
#: renormalized layer confirms reachability.
TEMPORAL_FANOUT = 2


@dataclass
class LayerDemand:
    """What the IR program needs from the next logical layer.

    ``cross_gaps`` carries, for each cross-layer connection, how many logical
    layers its photons wait in the delay lines (the offline mapper reads
    these off the IR's temporal edges); the reshaper converts them to RSG
    cycles and enforces the photon lifetime.
    """

    adjacent_connections: int = 0  # temporal edges from the previous logical layer
    cross_connections: int = 0  # retrievals from the virtual memory
    cross_gaps: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.cross_gaps and len(self.cross_gaps) != self.cross_connections:
            raise HardwareError(
                f"{self.cross_connections} cross connections but "
                f"{len(self.cross_gaps)} gaps supplied"
            )


@dataclass
class ReshapeMetrics:
    """Aggregate accounting of one online execution."""

    rsl_consumed: int = 0
    logical_layers: int = 0
    routing_layers: int = 0
    fusions: int = 0
    renormalization_attempts: int = 0
    renormalization_successes: int = 0
    connection_failures: int = 0
    visited_sites_per_attempt: list[int] = field(default_factory=list)
    max_storage_cycles: int = 0  # longest delay-line wait observed
    logical_layer_rsl_marks: list[int] = field(default_factory=list)

    @property
    def pl_ratio(self) -> float:
        """RSLs consumed per logical layer (Fig. 13(b)'s y-axis)."""
        if self.logical_layers == 0:
            return float("nan")
        return self.rsl_consumed / self.logical_layers

    @property
    def mean_visited_sites(self) -> float:
        """Average path-search work per RSL (the Fig. 14 cost proxy)."""
        if not self.visited_sites_per_attempt:
            return float("nan")
        return float(np.mean(self.visited_sites_per_attempt))


class OnlineReshaper:
    """Streams RSLs and reshapes them into the virtual hardware's layers."""

    def __init__(
        self,
        config: HardwareConfig,
        virtual_size: int,
        rng=None,
        max_rsl: int = 10**6,
        pathfind: str = "vector",
    ) -> None:
        if virtual_size < 1:
            raise HardwareError(f"virtual size must be >= 1, got {virtual_size}")
        if virtual_size > config.rsl_size:
            raise HardwareError(
                f"virtual hardware {virtual_size} cannot exceed RSL size "
                f"{config.rsl_size}"
            )
        if pathfind not in PATHFINDS:
            raise HardwareError(
                f"unknown pathfind {pathfind!r}; use one of: {', '.join(PATHFINDS)}"
            )
        self.config = config
        self.virtual_size = virtual_size
        self.device = FusionDevice(config.effective_fusion_rate, ensure_rng(rng))
        self.delay_lines = DelayLineBank(config.photon_lifetime)
        self.max_rsl = max_rsl
        self.pathfind = pathfind

    def run(self, demands: list[LayerDemand]) -> ReshapeMetrics:
        """Produce one logical layer per demand; returns the full accounting."""
        metrics = ReshapeMetrics()
        fusion_baseline = self.device.tally.attempted
        for demand_index, demand in enumerate(demands):
            self._produce_logical_layer(demand_index, demand, metrics)
        metrics.fusions = self.device.tally.attempted - fusion_baseline
        return metrics

    # ------------------------------------------------------------------

    def _produce_logical_layer(
        self,
        demand_index: int,
        demand: LayerDemand,
        metrics: ReshapeMetrics,
    ) -> None:
        """Consume RSLs until one qualifies as the next logical layer."""
        while True:
            if metrics.rsl_consumed >= self.max_rsl:
                raise HardwareError(
                    f"online pass exceeded {self.max_rsl} RSLs; "
                    "virtual hardware too large for this RSL size?"
                )
            formation = form_layer(self.config, self.device)
            metrics.rsl_consumed += formation.rsls_used
            self.delay_lines.advance(formation.rsls_used)

            metrics.renormalization_attempts += 1
            result = renormalize(
                formation.lattice, self.virtual_size, pathfind=self.pathfind
            )
            metrics.visited_sites_per_attempt.append(result.visited_sites)

            connections_ok = True
            if result.success:
                metrics.renormalization_successes += 1
                connections_ok = self._establish_connections(demand, metrics)
            if result.success and connections_ok:
                metrics.logical_layers += 1
                metrics.logical_layer_rsl_marks.append(metrics.rsl_consumed)
                self._check_photon_lifetimes(demand, metrics)
                return
            # Routing layer: every site fuses forward to the next RSL.
            metrics.routing_layers += 1
            self.device.attempt_grid(
                (self.config.rsl_size, self.config.rsl_size), "temporal"
            )

    def _establish_connections(
        self, demand: LayerDemand, metrics: ReshapeMetrics
    ) -> bool:
        """Attempt every demanded time-like connection; all must succeed.

        Each connection fuses ``TEMPORAL_FANOUT`` qubits around the preceding
        node to the candidate layer and succeeds if any of them does; the
        subsequent in-layer path search is guaranteed by the successful
        renormalization (all logical nodes are long-range connected).
        """
        total = demand.adjacent_connections + demand.cross_connections
        if total > self.virtual_size * self.virtual_size:
            raise HardwareError(
                f"demand of {total} connections exceeds the "
                f"{self.virtual_size}x{self.virtual_size} virtual layer"
            )
        ok = True
        for _ in range(total):
            outcomes = self.device.attempt_batch(TEMPORAL_FANOUT, "temporal")
            if not outcomes.any():
                ok = False
        if not ok:
            metrics.connection_failures += 1
        return ok

    def _check_photon_lifetimes(
        self, demand: LayerDemand, metrics: ReshapeMetrics
    ) -> None:
        """Enforce the delay-line lifetime on this layer's cross connections.

        A cross connection spanning ``gap`` logical layers stored its photons
        when the source logical layer completed; the wait in RSG cycles is
        the RSL count accumulated since then.  Exceeding the photon lifetime
        means the stored qubits are lost and the IR program is not executable
        on this hardware.
        """
        if not demand.cross_gaps:
            return
        marks = metrics.logical_layer_rsl_marks
        current_mark = marks[-1]
        for gap in demand.cross_gaps:
            source_index = len(marks) - 1 - gap
            source_mark = marks[source_index] if source_index >= 0 else 0
            waited = current_mark - source_mark
            metrics.max_storage_cycles = max(metrics.max_storage_cycles, waited)
            if waited > self.config.photon_lifetime:
                raise HardwareError(
                    f"a cross-layer connection waited {waited} RSG cycles in "
                    f"the delay lines, beyond the photon lifetime of "
                    f"{self.config.photon_lifetime}; the program needs a "
                    "larger RSL or a refresh-style remapping"
                )
