"""2D renormalization: carving a regular coarse lattice out of a random one.

Section 5.1: on each (merged) RSL the largest connected component of the
percolated lattice is reshaped into a coarse-grained ``k x k`` square lattice
by finding ``k`` vertical top-bottom paths (searched left to right) and ``k``
horizontal left-right paths (searched bottom to top), alternating the two
orientations.  Path intersections become the renormalized (logical) nodes;
every other qubit is measured out in Z.

Two mechanics from the paper:

* **connectivity check before search** — a per-strip spanning check answers
  "is there any path at all?" cheaply before the BFS runs (negative checks
  are the common case near threshold).  The hot path is the same vectorized
  numpy label propagation that powers ``PercolatedLattice.components()``
  (:func:`strip_spans`); the original scalar union-find survives as the
  oracle (:func:`strip_spans_dsu`) behind ``renormalize``'s ``precheck``
  switch;
* **tangling prevention** — distinct same-orientation paths must stay
  disjoint, and a path may touch a perpendicular path only by crossing it
  straight through (the crossing site becoming a renormalized node).  The
  artifact implements this by deleting each path's surrounding qubits; we
  get the same guarantee structurally, by confining each vertical path to
  its own column strip (and each horizontal path to its own row band) and by
  restricting perpendicular contact to straight crossings.  DESIGN.md
  records this substitution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RenormalizationError
from repro.online.percolation import DEAD_LABEL, PercolatedLattice, label_grid_components
from repro.utils.gridgeom import Coord2D

#: Marker values for the orientation ownership grid.
_FREE, _VERTICAL, _HORIZONTAL, _DEAD = 0, 1, 2, 3

#: Pre-check implementations accepted by :func:`renormalize` (the vectorized
#: label propagation is the hot path; the scalar union-find is the oracle).
PRECHECKS = ("vector", "dsu")


def strip_spans(
    lattice: PercolatedLattice, vertical: bool, low: int, high: int
) -> bool:
    """Vectorized strip pre-check: do the strip's two far edges touch at all?

    Runs on the relaxed graph that ignores crossing constraints, so a
    negative answer is definitive while a positive one still needs BFS.
    The strip subgrid is handed (transposed for row bands, so the spanning
    axis is always rows) to the same numpy label propagation that powers
    ``PercolatedLattice.components()``, then the edge-row label sets are
    intersected — negative checks dominate near threshold, which is what
    makes this the renormalization hot path worth vectorizing.
    """
    if vertical:
        alive = lattice.sites[:, low:high]
        across = lattice.horizontal[:, low : max(low, high - 1)]
        along = lattice.vertical[:, low:high]
    else:
        alive = lattice.sites[low:high, :].T
        across = lattice.vertical[low : max(low, high - 1), :].T
        along = lattice.horizontal[low:high, :].T
    if alive.size == 0:
        return False
    labels = label_grid_components(alive, across, along)
    first = labels[0]
    last = labels[-1]
    first_roots = np.unique(first[first != DEAD_LABEL])
    last_roots = np.unique(last[last != DEAD_LABEL])
    if not first_roots.size or not last_roots.size:
        return False
    return bool(np.intersect1d(first_roots, last_roots, assume_unique=True).size)


def strip_spans_dsu(
    lattice: PercolatedLattice, vertical: bool, low: int, high: int
) -> bool:
    """Scalar oracle for :func:`strip_spans`: the original flat union-find.

    Kept bit-for-bit equivalent in answer (the property suite cross-checks
    the two over randomized lattices) and as the baseline the micro-bench
    measures the vectorized path against.
    """
    n = lattice.size
    width = high - low
    if width <= 0:
        return False
    total = n * width
    parent = list(range(total))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def flat(a: int, b: int) -> int:
        # a runs along the spanning axis, b across the strip width.
        return a * width + (b - low)

    dead = ~lattice.sites
    for a in range(n):
        for b in range(low, high):
            coord = (a, b) if vertical else (b, a)
            if dead[coord]:
                continue
            here = flat(a, b)
            if a > 0:
                back = (a - 1, b) if vertical else (b, a - 1)
                if not dead[back] and lattice.has_bond(coord, back):
                    ra, rb = find(here), find(flat(a - 1, b))
                    if ra != rb:
                        parent[ra] = rb
            if b > low:
                side = (a, b - 1) if vertical else (b - 1, a)
                if not dead[side] and lattice.has_bond(coord, side):
                    ra, rb = find(here), find(flat(a, b - 1))
                    if ra != rb:
                        parent[ra] = rb
    first_roots = {
        find(flat(0, b))
        for b in range(low, high)
        if not dead[(0, b) if vertical else (b, 0)]
    }
    return any(
        find(flat(n - 1, b)) in first_roots
        for b in range(low, high)
        if not dead[(n - 1, b) if vertical else (b, n - 1)]
    )


#: Name -> implementation, for the ``precheck`` switch.
_PRECHECK_FNS = {"vector": strip_spans, "dsu": strip_spans_dsu}


@dataclass
class RenormalizationResult:
    """Outcome of one 2D renormalization attempt."""

    success: bool
    target_size: int
    lattice_size: int  # achieved size (== target_size on success)
    node_sites: dict[tuple[int, int], Coord2D] = field(default_factory=dict)
    vertical_paths: list[list[Coord2D]] = field(default_factory=list)
    horizontal_paths: list[list[Coord2D]] = field(default_factory=list)
    visited_sites: int = 0  # BFS + DSU work, the Fig. 14 cost proxy

    @property
    def average_node_size(self) -> float:
        """``RSL_size / renormalized_lattice_size`` (paper's definition)."""
        if not self.vertical_paths:
            return float("nan")
        rsl = max(len(path) for path in self.vertical_paths)
        return rsl / max(1, self.lattice_size)


class _Carver:
    """Stateful path search over one percolated lattice."""

    def __init__(self, lattice: PercolatedLattice, precheck: str = "vector") -> None:
        if precheck not in _PRECHECK_FNS:
            raise RenormalizationError(
                f"unknown precheck {precheck!r}; use one of: {', '.join(PRECHECKS)}"
            )
        self.lattice = lattice
        self.size = lattice.size
        self.owner = np.full((self.size, self.size), _FREE, dtype=np.uint8)
        self.owner[~lattice.sites] = _DEAD
        self.visited_sites = 0
        self._precheck = _PRECHECK_FNS[precheck]

    # -- generic helpers --------------------------------------------------

    def _bond(self, a: Coord2D, b: Coord2D) -> bool:
        return self.lattice.has_bond(a, b)

    def _free(self, coord: Coord2D) -> bool:
        return self.owner[coord] == _FREE

    def _strip_range(self, index: int, count: int) -> tuple[int, int]:
        """Half-open coordinate range of strip/band ``index`` of ``count``."""
        low = (index * self.size) // count
        high = ((index + 1) * self.size) // count
        return low, high

    # -- connectivity pre-check (disjoint-set, Section 5.1) ----------------

    def _strip_connected(self, vertical: bool, low: int, high: int) -> bool:
        """Connectivity pre-check: do the strip's two far edges touch at all?

        Dispatches to the configured implementation (:func:`strip_spans` by
        default, :func:`strip_spans_dsu` as the oracle); both answer the
        same relaxed-graph question, so a negative answer is definitive
        while a positive one still needs BFS.  The visited-site cost proxy
        charges the full strip area either way — Fig. 14's accounting
        models the work the check *represents*, not the constant factors
        of whichever implementation ran it.
        """
        self.visited_sites += self.size * (high - low)
        return self._precheck(self.lattice, vertical, low, high)

    def _alive(self, coord: Coord2D) -> bool:
        row, col = coord
        if not (0 <= row < self.size and 0 <= col < self.size):
            return False
        return self.owner[coord] != _DEAD

    # -- BFS path search ----------------------------------------------------

    def find_path(self, vertical: bool, index: int, count: int) -> list[Coord2D] | None:
        """Shortest spanning path for strip/band ``index`` (None if blocked).

        A vertical path may step on horizontal-path sites only by crossing
        them straight through (and vice versa); it may never travel along
        them, which is the tangling the surround-removal of the paper
        prevents.
        """
        low, high = self._strip_range(index, count)
        if high - low < 1:
            raise RenormalizationError("strip is empty; target size too large")
        if not self._strip_connected(vertical, low, high):
            return None

        other_owner = _HORIZONTAL if vertical else _VERTICAL
        n = self.size

        def in_strip(coord: Coord2D) -> bool:
            lane = coord[1] if vertical else coord[0]
            return low <= lane < high

        goal_axis = n - 1

        def axis_of(coord: Coord2D) -> int:
            return coord[0] if vertical else coord[1]

        def in_bounds_cell(coord: Coord2D, size: int) -> bool:
            return 0 <= coord[0] < size and 0 <= coord[1] < size

        def moves(coord: Coord2D):
            row, col = coord
            for drow, dcol in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                step = (row + drow, col + dcol)
                if not (0 <= step[0] < n and 0 <= step[1] < n):
                    continue
                if not in_strip(step):
                    continue
                if not self._bond(coord, step):
                    continue
                if self._free(step):
                    yield step, (step,)
                elif self.owner[step] == other_owner:
                    if axis_of(step) == goal_axis:
                        # Crossing right at the far edge: the perpendicular
                        # path's site serves as the endpoint.
                        yield step, (step,)
                        continue
                    # Cross the perpendicular path straight through.
                    landing = (step[0] + drow, step[1] + dcol)
                    if (
                        0 <= landing[0] < n
                        and 0 <= landing[1] < n
                        and in_strip(landing)
                        and self._free(landing)
                        and self._bond(step, landing)
                    ):
                        yield landing, (step, landing)

        # Start cells on the near edge: free cells start normally; cells
        # owned by a perpendicular path are entered as crossings (step
        # straight in, or end immediately on a 1-wide lattice).
        parent: dict[Coord2D, tuple[Coord2D, tuple[Coord2D, ...]]] = {}
        queue: deque[Coord2D] = deque()
        seen: set[Coord2D] = set()
        for lane in range(low, high):
            cell = (0, lane) if vertical else (lane, 0)
            if self._free(cell):
                seen.add(cell)
                queue.append(cell)
            elif self.owner[cell] == other_owner:
                if goal_axis == 0:
                    # Degenerate 1-wide lattice: the crossing site alone
                    # spans it.
                    return [cell]
                inward = (1, lane) if vertical else (lane, 1)
                if (
                    in_bounds_cell(inward, n)
                    and in_strip(inward)
                    and self._free(inward)
                    and self._bond(cell, inward)
                    and inward not in seen
                ):
                    seen.add(inward)
                    parent[inward] = (cell, (inward,))
                    seen.add(cell)
                    queue.append(inward)
        goal: Coord2D | None = None
        while queue:
            current = queue.popleft()
            self.visited_sites += 1
            if axis_of(current) == goal_axis:
                goal = current
                break
            for landing, hops in moves(current):
                if landing not in seen:
                    seen.add(landing)
                    parent[landing] = (current, hops)
                    queue.append(landing)
        if goal is None:
            return None

        # Reconstruct, including crossing sites, root to goal.
        path: list[Coord2D] = [goal]
        node = goal
        while node in parent:
            previous, hops = parent[node]
            for hop in reversed(hops[:-1]):
                path.append(hop)
            path.append(previous)
            node = previous
        path.reverse()
        return path

    def claim(self, path: list[Coord2D], vertical: bool) -> None:
        """Mark a found path's sites with their orientation ownership.

        Crossing sites (already owned by the perpendicular orientation) keep
        their original owner — they are exactly the renormalized nodes.
        """
        marker = _VERTICAL if vertical else _HORIZONTAL
        for coord in path:
            if self.owner[coord] == _FREE:
                self.owner[coord] = marker


def renormalize(
    lattice: PercolatedLattice,
    target_size: int,
    work_budget: int | None = None,
    precheck: str = "vector",
) -> RenormalizationResult:
    """Reshape ``lattice`` into a ``target_size x target_size`` coarse lattice.

    Searches vertical and horizontal spanning paths alternately (the paper's
    effective order) and reports success only if all ``2 * target_size``
    paths exist — in which case every pair crosses and the intersection grid
    is complete.

    ``work_budget`` caps the visited-site count, modelling the photon
    lifetime limit on real-time processing (Fig. 13(c)'s time-restricted
    non-modular baseline): when exceeded, the partial result so far is
    returned as a failure.

    ``precheck`` selects the per-strip connectivity implementation:
    ``"vector"`` (the numpy label-propagation hot path, the default) or
    ``"dsu"`` (the scalar union-find oracle).  The two agree on every
    lattice — the property suite asserts full-result identity — and the
    visited-site accounting is implementation-independent, so swapping
    them never perturbs results or the Fig. 14 cost proxy.
    """
    if target_size < 1:
        raise RenormalizationError(f"target size must be >= 1, got {target_size}")
    if target_size > lattice.size:
        raise RenormalizationError(
            f"target {target_size} exceeds lattice size {lattice.size}"
        )
    carver = _Carver(lattice, precheck=precheck)
    vertical_paths: list[list[Coord2D]] = []
    horizontal_paths: list[list[Coord2D]] = []

    for index in range(target_size):
        for vertical in (True, False):
            if work_budget is not None and carver.visited_sites > work_budget:
                achieved = min(len(vertical_paths), len(horizontal_paths))
                return RenormalizationResult(
                    success=False,
                    target_size=target_size,
                    lattice_size=achieved,
                    vertical_paths=vertical_paths,
                    horizontal_paths=horizontal_paths,
                    visited_sites=carver.visited_sites,
                )
            path = carver.find_path(vertical, index, target_size)
            if path is None:
                achieved = min(len(vertical_paths), len(horizontal_paths))
                return RenormalizationResult(
                    success=False,
                    target_size=target_size,
                    lattice_size=achieved,
                    vertical_paths=vertical_paths,
                    horizontal_paths=horizontal_paths,
                    visited_sites=carver.visited_sites,
                )
            carver.claim(path, vertical)
            (vertical_paths if vertical else horizontal_paths).append(path)

    node_sites = _intersections(vertical_paths, horizontal_paths)
    if len(node_sites) < target_size * target_size:
        achieved = int(len(node_sites) ** 0.5)
        return RenormalizationResult(
            success=False,
            target_size=target_size,
            lattice_size=achieved,
            node_sites=node_sites,
            vertical_paths=vertical_paths,
            horizontal_paths=horizontal_paths,
            visited_sites=carver.visited_sites,
        )
    return RenormalizationResult(
        success=True,
        target_size=target_size,
        lattice_size=target_size,
        node_sites=node_sites,
        vertical_paths=vertical_paths,
        horizontal_paths=horizontal_paths,
        visited_sites=carver.visited_sites,
    )


def _intersections(
    vertical_paths: list[list[Coord2D]],
    horizontal_paths: list[list[Coord2D]],
) -> dict[tuple[int, int], Coord2D]:
    """First shared site of each (vertical, horizontal) path pair."""
    nodes: dict[tuple[int, int], Coord2D] = {}
    vertical_sets = [set(path) for path in vertical_paths]
    for h_index, h_path in enumerate(horizontal_paths):
        for v_index, v_sites in enumerate(vertical_sets):
            for coord in h_path:
                if coord in v_sites:
                    nodes[(v_index, h_index)] = coord
                    break
    return nodes
