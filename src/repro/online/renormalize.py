"""2D renormalization: carving a regular coarse lattice out of a random one.

Section 5.1: on each (merged) RSL the largest connected component of the
percolated lattice is reshaped into a coarse-grained ``k x k`` square lattice
by finding ``k`` vertical top-bottom paths (searched left to right) and ``k``
horizontal left-right paths (searched bottom to top), alternating the two
orientations.  Path intersections become the renormalized (logical) nodes;
every other qubit is measured out in Z.

Two mechanics from the paper:

* **connectivity check before search** — a per-strip spanning check answers
  "is there any path at all?" cheaply before the BFS runs (negative checks
  are the common case near threshold).  The hot path is the same vectorized
  numpy label propagation that powers ``PercolatedLattice.components()``
  (:func:`strip_spans`); the original scalar union-find survives as the
  oracle (:func:`strip_spans_dsu`) behind ``renormalize``'s ``precheck``
  switch;
* **tangling prevention** — distinct same-orientation paths must stay
  disjoint, and a path may touch a perpendicular path only by crossing it
  straight through (the crossing site becoming a renormalized node).  The
  artifact implements this by deleting each path's surrounding qubits; we
  get the same guarantee structurally, by confining each vertical path to
  its own column strip (and each horizontal path to its own row band) and by
  restricting perpendicular contact to straight crossings.  DESIGN.md
  records this substitution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RenormalizationError
from repro.online.percolation import (
    PercolatedLattice,
    frontier_adjacency,
    frontier_bfs,
    grid_spans,
    grid_spans_from_usable,
)
from repro.utils.gridgeom import Coord2D

#: Marker values for the orientation ownership grid.
_FREE, _VERTICAL, _HORIZONTAL, _DEAD = 0, 1, 2, 3

#: Pre-check implementations accepted by :func:`renormalize` (the vectorized
#: label propagation is the hot path; the scalar union-find is the oracle).
PRECHECKS = ("vector", "dsu")

#: Path-search implementations accepted by :func:`renormalize` (the numpy
#: wavefront search is the hot path; the scalar deque BFS is the oracle).
PATHFINDS = ("vector", "scalar")


def _strip_arrays(
    lattice: PercolatedLattice, vertical: bool, low: int, high: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Strip-view arrays with axis 0 along the spanning direction.

    Returns ``(alive, across, along)``: the ``(n, w)`` liveness view, the
    ``(n, w-1)`` bonds across the strip width, and the ``(n-1, w)`` bonds
    along the spanning axis.  Row bands are transposed so both orientations
    share one top-to-bottom geometry — the convention of both
    :func:`strip_spans` and the vectorized path search.
    """
    if vertical:
        alive = lattice.sites[:, low:high]
        across = lattice.horizontal[:, low : max(low, high - 1)]
        along = lattice.vertical[:, low:high]
    else:
        alive = lattice.sites[low:high, :].T
        across = lattice.vertical[low : max(low, high - 1), :].T
        along = lattice.horizontal[low:high, :].T
    return alive, across, along


def strip_spans(
    lattice: PercolatedLattice, vertical: bool, low: int, high: int
) -> bool:
    """Vectorized strip pre-check: do the strip's two far edges touch at all?

    Runs on the relaxed graph that ignores crossing constraints, so a
    negative answer is definitive while a positive one still needs BFS.
    The strip subgrid is handed (transposed for row bands, so the spanning
    axis is always rows) to :func:`~repro.online.percolation.grid_spans` —
    the same frontier engine the vectorized path search expands with, and
    the same one that powers ``PercolatedLattice.components()`` when scipy
    is absent.  Negative checks dominate near threshold, which is what
    makes this the renormalization hot path worth vectorizing.
    """
    alive, across, along = _strip_arrays(lattice, vertical, low, high)
    if alive.size == 0:
        return False
    return grid_spans(alive, across, along)


def strip_spans_dsu(
    lattice: PercolatedLattice, vertical: bool, low: int, high: int
) -> bool:
    """Scalar oracle for :func:`strip_spans`: the original flat union-find.

    Kept bit-for-bit equivalent in answer (the property suite cross-checks
    the two over randomized lattices) and as the baseline the micro-bench
    measures the vectorized path against.
    """
    n = lattice.size
    width = high - low
    if width <= 0:
        return False
    total = n * width
    parent = list(range(total))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def flat(a: int, b: int) -> int:
        # a runs along the spanning axis, b across the strip width.
        return a * width + (b - low)

    dead = ~lattice.sites
    for a in range(n):
        for b in range(low, high):
            coord = (a, b) if vertical else (b, a)
            if dead[coord]:
                continue
            here = flat(a, b)
            if a > 0:
                back = (a - 1, b) if vertical else (b, a - 1)
                if not dead[back] and lattice.has_bond(coord, back):
                    ra, rb = find(here), find(flat(a - 1, b))
                    if ra != rb:
                        parent[ra] = rb
            if b > low:
                side = (a, b - 1) if vertical else (b - 1, a)
                if not dead[side] and lattice.has_bond(coord, side):
                    ra, rb = find(here), find(flat(a, b - 1))
                    if ra != rb:
                        parent[ra] = rb
    first_roots = {
        find(flat(0, b))
        for b in range(low, high)
        if not dead[(0, b) if vertical else (b, 0)]
    }
    return any(
        find(flat(n - 1, b)) in first_roots
        for b in range(low, high)
        if not dead[(n - 1, b) if vertical else (b, n - 1)]
    )


#: Name -> implementation, for the ``precheck`` switch.
_PRECHECK_FNS = {"vector": strip_spans, "dsu": strip_spans_dsu}


@dataclass
class RenormalizationResult:
    """Outcome of one 2D renormalization attempt."""

    success: bool
    target_size: int
    lattice_size: int  # achieved size (== target_size on success)
    node_sites: dict[tuple[int, int], Coord2D] = field(default_factory=dict)
    vertical_paths: list[list[Coord2D]] = field(default_factory=list)
    horizontal_paths: list[list[Coord2D]] = field(default_factory=list)
    visited_sites: int = 0  # BFS + DSU work, the Fig. 14 cost proxy

    @property
    def average_node_size(self) -> float:
        """``RSL_size / renormalized_lattice_size`` (paper's definition)."""
        if not self.vertical_paths:
            return float("nan")
        rsl = max(len(path) for path in self.vertical_paths)
        return rsl / max(1, self.lattice_size)


#: Scalar BFS move order, rewritten as (d_span, d_lane) steps in the strip
#: view of :func:`_strip_arrays`.  The scalar generator walks grid moves
#: ((-1,0),(1,0),(0,-1),(0,1)); for row bands the view is transposed, so the
#: view-space order swaps — preserving this order is what keeps the
#: vectorized search's tie-breaks byte-identical to the deque BFS.
_VIEW_MOVES = {
    True: ((-1, 0), (1, 0), (0, -1), (0, 1)),
    False: ((0, -1), (0, 1), (-1, 0), (1, 0)),
}


def _shift(array: np.ndarray, d_span: int, d_lane: int) -> np.ndarray:
    """``array`` sampled at ``cell + d``, indexed at ``cell`` (OOB -> False)."""
    rows, cols = array.shape
    out = np.zeros((rows, cols), dtype=bool)
    r_lo, r_hi = max(d_span, 0), rows + min(d_span, 0)
    c_lo, c_hi = max(d_lane, 0), cols + min(d_lane, 0)
    out[r_lo - d_span : r_hi - d_span, c_lo - d_lane : c_hi - d_lane] = array[
        r_lo:r_hi, c_lo:c_hi
    ]
    return out


class _Carver:
    """Stateful path search over one percolated lattice."""

    def __init__(
        self,
        lattice: PercolatedLattice,
        precheck: str = "vector",
        pathfind: str = "vector",
    ) -> None:
        if precheck not in _PRECHECK_FNS:
            raise RenormalizationError(
                f"unknown precheck {precheck!r}; use one of: {', '.join(PRECHECKS)}"
            )
        if pathfind not in PATHFINDS:
            raise RenormalizationError(
                f"unknown pathfind {pathfind!r}; use one of: {', '.join(PATHFINDS)}"
            )
        self.lattice = lattice
        self.size = lattice.size
        self.owner = np.full((self.size, self.size), _FREE, dtype=np.uint8)
        self.owner[~lattice.sites] = _DEAD
        self.visited_sites = 0
        self._precheck = _PRECHECK_FNS[precheck]
        self._precheck_name = precheck
        self._pathfind_name = pathfind

    # -- generic helpers --------------------------------------------------

    def _bond(self, a: Coord2D, b: Coord2D) -> bool:
        return self.lattice.has_bond(a, b)

    def _free(self, coord: Coord2D) -> bool:
        return self.owner[coord] == _FREE

    def _strip_range(self, index: int, count: int) -> tuple[int, int]:
        """Half-open coordinate range of strip/band ``index`` of ``count``."""
        low = (index * self.size) // count
        high = ((index + 1) * self.size) // count
        return low, high

    # -- connectivity pre-check (disjoint-set, Section 5.1) ----------------

    def _strip_connected(self, vertical: bool, low: int, high: int) -> bool:
        """Connectivity pre-check: do the strip's two far edges touch at all?

        Dispatches to the configured implementation (:func:`strip_spans` by
        default, :func:`strip_spans_dsu` as the oracle); both answer the
        same relaxed-graph question, so a negative answer is definitive
        while a positive one still needs BFS.  The visited-site cost proxy
        charges the full strip area either way — Fig. 14's accounting
        models the work the check *represents*, not the constant factors
        of whichever implementation ran it.
        """
        self.visited_sites += self.size * (high - low)
        return self._precheck(self.lattice, vertical, low, high)

    def _alive(self, coord: Coord2D) -> bool:
        row, col = coord
        if not (0 <= row < self.size and 0 <= col < self.size):
            return False
        return self.owner[coord] != _DEAD

    # -- BFS path search ----------------------------------------------------

    def find_path(self, vertical: bool, index: int, count: int) -> list[Coord2D] | None:
        """Shortest spanning path for strip/band ``index`` (None if blocked).

        A vertical path may step on horizontal-path sites only by crossing
        them straight through (and vice versa); it may never travel along
        them, which is the tangling the surround-removal of the paper
        prevents.  Dispatches to the configured implementation — the numpy
        wavefront search (``pathfind="vector"``) or the original deque BFS
        (``"scalar"``); the two produce byte-identical paths, ownership,
        and visited-site accounting.
        """
        if self._pathfind_name == "vector":
            return self._find_path_vector(vertical, index, count)
        return self._find_path_scalar(vertical, index, count)

    def _find_path_scalar(
        self, vertical: bool, index: int, count: int
    ) -> list[Coord2D] | None:
        """The original per-cell deque BFS — kept as the parity oracle."""
        low, high = self._strip_range(index, count)
        if high - low < 1:
            raise RenormalizationError("strip is empty; target size too large")
        if not self._strip_connected(vertical, low, high):
            return None

        other_owner = _HORIZONTAL if vertical else _VERTICAL
        n = self.size

        def in_strip(coord: Coord2D) -> bool:
            lane = coord[1] if vertical else coord[0]
            return low <= lane < high

        goal_axis = n - 1

        def axis_of(coord: Coord2D) -> int:
            return coord[0] if vertical else coord[1]

        def in_bounds_cell(coord: Coord2D, size: int) -> bool:
            return 0 <= coord[0] < size and 0 <= coord[1] < size

        def moves(coord: Coord2D):
            row, col = coord
            for drow, dcol in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                step = (row + drow, col + dcol)
                if not (0 <= step[0] < n and 0 <= step[1] < n):
                    continue
                if not in_strip(step):
                    continue
                if not self._bond(coord, step):
                    continue
                if self._free(step):
                    yield step, (step,)
                elif self.owner[step] == other_owner:
                    if axis_of(step) == goal_axis:
                        # Crossing right at the far edge: the perpendicular
                        # path's site serves as the endpoint.
                        yield step, (step,)
                        continue
                    # Cross the perpendicular path straight through.
                    landing = (step[0] + drow, step[1] + dcol)
                    if (
                        0 <= landing[0] < n
                        and 0 <= landing[1] < n
                        and in_strip(landing)
                        and self._free(landing)
                        and self._bond(step, landing)
                    ):
                        yield landing, (step, landing)

        # Start cells on the near edge: free cells start normally; cells
        # owned by a perpendicular path are entered as crossings (step
        # straight in, or end immediately on a 1-wide lattice).
        parent: dict[Coord2D, tuple[Coord2D, tuple[Coord2D, ...]]] = {}
        queue: deque[Coord2D] = deque()
        seen: set[Coord2D] = set()
        for lane in range(low, high):
            cell = (0, lane) if vertical else (lane, 0)
            if self._free(cell):
                seen.add(cell)
                queue.append(cell)
            elif self.owner[cell] == other_owner:
                if goal_axis == 0:
                    # Degenerate 1-wide lattice: the crossing site alone
                    # spans it.
                    return [cell]
                inward = (1, lane) if vertical else (lane, 1)
                if (
                    in_bounds_cell(inward, n)
                    and in_strip(inward)
                    and self._free(inward)
                    and self._bond(cell, inward)
                    and inward not in seen
                ):
                    seen.add(inward)
                    parent[inward] = (cell, (inward,))
                    seen.add(cell)
                    queue.append(inward)
        goal: Coord2D | None = None
        while queue:
            current = queue.popleft()
            self.visited_sites += 1
            if axis_of(current) == goal_axis:
                goal = current
                break
            for landing, hops in moves(current):
                if landing not in seen:
                    seen.add(landing)
                    parent[landing] = (current, hops)
                    queue.append(landing)
        if goal is None:
            return None

        # Reconstruct, including crossing sites, root to goal.
        path: list[Coord2D] = [goal]
        node = goal
        while node in parent:
            previous, hops = parent[node]
            for hop in reversed(hops[:-1]):
                path.append(hop)
            path.append(previous)
            node = previous
        path.reverse()
        return path

    def _find_path_vector(
        self, vertical: bool, index: int, count: int
    ) -> list[Coord2D] | None:
        """Numpy wavefront search — byte-identical to the scalar deque BFS.

        The whole strip is compiled into one CSR frontier graph whose
        per-node edge order encodes the scalar BFS's deterministic
        tie-breaks (enqueue order within a level is lexicographic in
        (parent pop order, move index)), then a single compiled breadth-
        first traversal (:func:`~repro.online.percolation.frontier_bfs`)
        replaces the per-cell Python loop.  Ownership semantics — one-hop
        moves onto free sites, far-edge crossings ending on perpendicular-
        owned sites, and two-hop straight-through crossings — become shifted
        boolean masks over the ``owner`` view; a virtual super-source node
        carries the near-edge start cells in lane order.  The strip
        pre-check runs on the very same usable-bond masks, so a positive
        check seeds the wavefront instead of being thrown away.
        """
        low, high = self._strip_range(index, count)
        if high - low < 1:
            raise RenormalizationError("strip is empty; target size too large")
        n = self.size
        width = high - low
        alive, bonds_across, bonds_along = _strip_arrays(
            self.lattice, vertical, low, high
        )
        owner = self.owner[:, low:high] if vertical else self.owner[low:high, :].T

        # Pre-check on the shared strip views.  The cost proxy charges the
        # full strip area exactly as _strip_connected does, and a negative
        # answer gates the search identically — only the positive case
        # changes, reusing the masks the wavefront is about to expand with.
        self.visited_sites += n * width
        usable_along = bonds_along & alive[:-1, :] & alive[1:, :]
        usable_across = bonds_across & alive[:, :-1] & alive[:, 1:]
        if self._precheck_name == "vector":
            if not grid_spans_from_usable(alive, usable_across, usable_along):
                return None
        elif not strip_spans_dsu(self.lattice, vertical, low, high):
            return None

        other_owner = _HORIZONTAL if vertical else _VERTICAL
        free = owner == _FREE
        other = owner == other_owner

        def to_grid(flat_index: int) -> Coord2D:
            span, lane = divmod(flat_index, width)
            return (span, low + lane) if vertical else (low + lane, span)

        if n == 1:
            # Degenerate 1-wide lattice: the first perpendicular-owned lane
            # spans it outright (before any BFS pop); otherwise the first
            # free lane is popped once and immediately found to be the goal.
            owned_lanes = np.flatnonzero(other[0])
            if owned_lanes.size:
                return [to_grid(int(owned_lanes[0]))]
            free_lanes = np.flatnonzero(free[0])
            if free_lanes.size:
                self.visited_sites += 1
                return [to_grid(int(free_lanes[0]))]
            return None

        goal_row = n - 1
        total = n * width
        flat = np.arange(total, dtype=np.int64).reshape(n, width)

        def bond_step(d_span: int, d_lane: int) -> np.ndarray:
            """(n, w) mask over sources: usable bond from cell to cell + d."""
            mask = np.zeros((n, width), dtype=bool)
            if d_span == -1:
                mask[1:, :] = usable_along
            elif d_span == 1:
                mask[:-1, :] = usable_along
            elif d_lane == -1:
                mask[:, 1:] = usable_across
            else:
                mask[:, :-1] = usable_across
            return mask

        sources: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        for d_span, d_lane in _VIEW_MOVES[vertical]:
            bonded = bond_step(d_span, d_lane)
            can = free & bonded
            d_flat = d_span * width + d_lane
            # One hop onto a free site.
            one = can & _shift(free, d_span, d_lane)
            hop = flat[one]
            sources.append(hop)
            targets.append(hop + d_flat)
            step_other = can & _shift(other, d_span, d_lane)
            # Crossing right at the far edge: the perpendicular path's site
            # serves as the endpoint (only reachable stepping down from
            # goal_row - 1 or sideways along goal_row).
            if d_span == 1:
                edge = flat[goal_row - 1][step_other[goal_row - 1]]
                sources.append(edge)
                targets.append(edge + width)
            elif d_span == 0:
                edge = flat[goal_row][step_other[goal_row]]
                sources.append(edge)
                targets.append(edge + d_lane)
            # Cross the perpendicular path straight through: stepped-on site
            # owned and not at the goal row, a usable bond onward, and a
            # free landing two cells out.
            two = (
                step_other
                & _shift(bonded, d_span, d_lane)
                & _shift(free, 2 * d_span, 2 * d_lane)
            )
            if d_span == 1:
                two[goal_row - 1] = False
            elif d_span == 0:
                two[goal_row] = False
            cross = flat[two]
            sources.append(cross)
            targets.append(cross + 2 * d_flat)

        # Start cells on the near edge, in lane order, hung off a virtual
        # super-source: free cells start normally; perpendicular-owned cells
        # are entered one row inward (the owned cell rejoins the path as a
        # reconstruction prefix).
        lane_free = free[0]
        lane_inward = other[0] & free[1] & usable_along[0]
        start = np.where(lane_free, flat[0], np.where(lane_inward, flat[1], -1))
        start = start[start >= 0]
        crossing_entry = {
            int(flat[1, lane]): int(flat[0, lane])
            for lane in np.flatnonzero(lane_inward)
        }
        sources.append(np.full(start.size, total, dtype=np.int64))
        targets.append(start)

        indptr, indices = frontier_adjacency(
            np.concatenate(sources), np.concatenate(targets), total + 1
        )
        pop_order, parents = frontier_bfs(indptr, indices, total)
        hits = np.flatnonzero(pop_order // width == goal_row)
        if not hits.size:
            # Every enqueued cell was popped without reaching the far edge;
            # the super-source itself (pop 0) costs nothing.
            self.visited_sites += len(pop_order) - 1
            return None
        found = int(hits[0])
        # Pops up to (and including) the goal: the goal's position in the
        # FIFO order *is* the scalar BFS's visited count, super-source aside.
        self.visited_sites += found

        path: list[int] = []
        node = int(pop_order[found])
        while node != total:
            path.append(node)
            parent = int(parents[node])
            if parent == total:
                entry = crossing_entry.get(node)
                if entry is not None:
                    path.append(entry)
            else:
                # Two-hop edges differ by 2 on exactly one view axis; the
                # skipped crossing site is their midpoint.
                node_span, node_lane = divmod(node, width)
                parent_span, parent_lane = divmod(parent, width)
                if abs(node_span - parent_span) == 2 or abs(node_lane - parent_lane) == 2:
                    path.append((node + parent) // 2)
            node = parent
        path.reverse()
        return [to_grid(flat_index) for flat_index in path]

    def claim(self, path: list[Coord2D], vertical: bool) -> None:
        """Mark a found path's sites with their orientation ownership.

        Crossing sites (already owned by the perpendicular orientation) keep
        their original owner — they are exactly the renormalized nodes.
        """
        marker = _VERTICAL if vertical else _HORIZONTAL
        for coord in path:
            if self.owner[coord] == _FREE:
                self.owner[coord] = marker


def renormalize(
    lattice: PercolatedLattice,
    target_size: int,
    work_budget: int | None = None,
    precheck: str = "vector",
    pathfind: str = "vector",
) -> RenormalizationResult:
    """Reshape ``lattice`` into a ``target_size x target_size`` coarse lattice.

    Searches vertical and horizontal spanning paths alternately (the paper's
    effective order) and reports success only if all ``2 * target_size``
    paths exist — in which case every pair crosses and the intersection grid
    is complete.

    ``work_budget`` caps the visited-site count, modelling the photon
    lifetime limit on real-time processing (Fig. 13(c)'s time-restricted
    non-modular baseline): when exceeded, the partial result so far is
    returned as a failure.

    ``precheck`` selects the per-strip connectivity implementation:
    ``"vector"`` (the numpy hot path, the default) or ``"dsu"`` (the scalar
    union-find oracle).  ``pathfind`` likewise selects the path search:
    ``"vector"`` (the compiled wavefront over a CSR frontier graph, the
    default) or ``"scalar"`` (the original deque BFS oracle).  Every
    combination agrees on every lattice — the property suite asserts
    full-result identity across the ``pathfind x precheck`` sweep — and the
    visited-site accounting is implementation-independent, so swapping
    them never perturbs results or the Fig. 14 cost proxy.
    """
    if target_size < 1:
        raise RenormalizationError(f"target size must be >= 1, got {target_size}")
    if target_size > lattice.size:
        raise RenormalizationError(
            f"target {target_size} exceeds lattice size {lattice.size}"
        )
    carver = _Carver(lattice, precheck=precheck, pathfind=pathfind)
    vertical_paths: list[list[Coord2D]] = []
    horizontal_paths: list[list[Coord2D]] = []

    for index in range(target_size):
        for vertical in (True, False):
            if work_budget is not None and carver.visited_sites > work_budget:
                achieved = min(len(vertical_paths), len(horizontal_paths))
                return RenormalizationResult(
                    success=False,
                    target_size=target_size,
                    lattice_size=achieved,
                    vertical_paths=vertical_paths,
                    horizontal_paths=horizontal_paths,
                    visited_sites=carver.visited_sites,
                )
            path = carver.find_path(vertical, index, target_size)
            if path is None:
                achieved = min(len(vertical_paths), len(horizontal_paths))
                return RenormalizationResult(
                    success=False,
                    target_size=target_size,
                    lattice_size=achieved,
                    vertical_paths=vertical_paths,
                    horizontal_paths=horizontal_paths,
                    visited_sites=carver.visited_sites,
                )
            carver.claim(path, vertical)
            (vertical_paths if vertical else horizontal_paths).append(path)

    node_sites = _intersections(vertical_paths, horizontal_paths)
    if len(node_sites) < target_size * target_size:
        achieved = int(len(node_sites) ** 0.5)
        return RenormalizationResult(
            success=False,
            target_size=target_size,
            lattice_size=achieved,
            node_sites=node_sites,
            vertical_paths=vertical_paths,
            horizontal_paths=horizontal_paths,
            visited_sites=carver.visited_sites,
        )
    return RenormalizationResult(
        success=True,
        target_size=target_size,
        lattice_size=target_size,
        node_sites=node_sites,
        vertical_paths=vertical_paths,
        horizontal_paths=horizontal_paths,
        visited_sites=carver.visited_sites,
    )


def _intersections(
    vertical_paths: list[list[Coord2D]],
    horizontal_paths: list[list[Coord2D]],
) -> dict[tuple[int, int], Coord2D]:
    """First shared site of each (vertical, horizontal) path pair.

    One ``coord -> v_index`` map over all vertical paths replaces the old
    every-horizontal-against-every-vertical-set rescan, making this linear
    in total path length instead of quadratic in the path count.  "First"
    still means first along the horizontal path (vertical paths are
    disjoint, so each site maps to at most one v_index), and the node dict
    keeps the old (ascending ``v_index``) insertion order per ``h_index``.
    """
    nodes: dict[tuple[int, int], Coord2D] = {}
    site_to_v: dict[Coord2D, int] = {}
    for v_index, v_path in enumerate(vertical_paths):
        for coord in v_path:
            site_to_v.setdefault(coord, v_index)
    for h_index, h_path in enumerate(horizontal_paths):
        found: dict[int, Coord2D] = {}
        for coord in h_path:
            v_index = site_to_v.get(coord)
            if v_index is not None and v_index not in found:
                found[v_index] = coord
        for v_index in sorted(found):
            nodes[(v_index, h_index)] = found[v_index]
    return nodes
