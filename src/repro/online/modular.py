"""Modular 2D renormalization (Section 5.1, Fig. 10).

To meet the photon-lifetime deadline, the RSL is divided into ``g x g``
modules of side ``L_module`` separated by intervals of width ``L_interval``
(``MI ratio = L_module / L_interval``).  Modules renormalize *concurrently*
— wall-clock is the slowest module, not the sum — and are then joined by
connecting the corresponding boundary paths through the interval corridors.
A global row/column of the joined lattice survives only if every inter-module
join along it succeeds, which is the resource overhead Fig. 13(c) quantifies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import RenormalizationError
from repro.online.percolation import PercolatedLattice
from repro.online.renormalize import RenormalizationResult, renormalize
from repro.utils.gridgeom import Coord2D


@dataclass(frozen=True)
class ModularLayout:
    """Geometry of the module grid on an ``N x N`` RSL."""

    rsl_size: int
    modules_per_side: int
    module_size: int
    interval: int

    @staticmethod
    def fit(rsl_size: int, num_modules: int, mi_ratio: float) -> "ModularLayout":
        """Choose module/interval sizes for ``num_modules`` and an MI ratio.

        ``num_modules`` must be a perfect square (the paper uses 4, 9, 16).
        Solves ``g * L_module + (g - 1) * L_interval <= N`` with
        ``L_module / L_interval ~= mi_ratio``.
        """
        g = int(round(num_modules**0.5))
        if g * g != num_modules:
            raise RenormalizationError(
                f"num_modules must be a perfect square, got {num_modules}"
            )
        if mi_ratio <= 0:
            raise RenormalizationError(f"MI ratio must be positive, got {mi_ratio}")
        if g == 1:
            return ModularLayout(rsl_size, 1, rsl_size, 0)
        # L_module = N * R / (g * R + g - 1), rounded down; interval gets the rest.
        module = int(rsl_size * mi_ratio / (g * mi_ratio + g - 1))
        if module < 2:
            raise RenormalizationError(
                f"MI ratio {mi_ratio} leaves modules of size {module} on an "
                f"RSL of {rsl_size}; too many modules or too small an RSL"
            )
        interval = (rsl_size - g * module) // (g - 1)
        return ModularLayout(rsl_size, g, module, interval)

    def module_origin(self, index: int) -> int:
        """First row/col of module ``index`` along one axis."""
        return index * (self.module_size + self.interval)

    @property
    def num_modules(self) -> int:
        return self.modules_per_side**2


@dataclass
class ModularResult:
    """Outcome of a modular renormalization."""

    layout: ModularLayout
    surviving_rows: int
    surviving_cols: int
    module_results: list[RenormalizationResult] = field(default_factory=list)
    wall_visited_sites: int = 0  # concurrent wall-clock proxy (max module + joins)
    total_visited_sites: int = 0  # total work across modules and joins

    @property
    def renormalized_size(self) -> int:
        """Side length of the largest square coarse lattice that survived."""
        return min(self.surviving_rows, self.surviving_cols)

    @property
    def node_count(self) -> int:
        """Logical nodes in the joined lattice (Fig. 13(c)'s y-axis)."""
        return self.surviving_rows * self.surviving_cols

    @property
    def success(self) -> bool:
        return self.renormalized_size > 0


def _module_lattice(
    lattice: PercolatedLattice, layout: ModularLayout, mi: int, mj: int
) -> PercolatedLattice:
    """The sublattice of module ``(mi, mj)`` as an independent copy."""
    r0 = layout.module_origin(mi)
    c0 = layout.module_origin(mj)
    size = layout.module_size
    return PercolatedLattice(
        sites=lattice.sites[r0 : r0 + size, c0 : c0 + size].copy(),
        horizontal=lattice.horizontal[r0 : r0 + size, c0 : c0 + size - 1].copy(),
        vertical=lattice.vertical[r0 : r0 + size - 1, c0 : c0 + size].copy(),
    )


def _corridor_connected(
    lattice: PercolatedLattice,
    sources: list[Coord2D],
    targets: set[Coord2D],
    row_range: tuple[int, int],
    col_range: tuple[int, int],
) -> tuple[bool, int]:
    """Multi-source BFS from one path to another within a corridor window.

    Any physical connection between the two coarse paths realizes the join
    (both paths are single logical wires), so the search starts from every
    source-path site inside the window and accepts any target-path site.
    Returns (reached, sites visited).
    """

    def inside(coord: Coord2D) -> bool:
        return (
            row_range[0] <= coord[0] < row_range[1]
            and col_range[0] <= coord[1] < col_range[1]
        )

    queue: deque[Coord2D] = deque()
    seen: set[Coord2D] = set()
    for coord in sources:
        if inside(coord) and lattice.sites[coord]:
            queue.append(coord)
            seen.add(coord)
    visited = 0
    while queue:
        current = queue.popleft()
        visited += 1
        if current in targets:
            return True, visited
        for neighbor in lattice.neighbors(current):
            if neighbor not in seen and inside(neighbor):
                seen.add(neighbor)
                queue.append(neighbor)
    return False, visited


def modular_renormalize(
    lattice: PercolatedLattice,
    node_size: int,
    num_modules: int,
    mi_ratio: float,
    pathfind: str = "vector",
) -> ModularResult:
    """Renormalize ``lattice`` module-by-module and join across intervals.

    ``node_size`` is the average-node side (each module targets
    ``module_size // node_size`` coarse nodes per axis).  The joined lattice
    keeps a global row (column) only if every module on it succeeded and all
    its ``g - 1`` corridor joins connected.  ``pathfind`` forwards to
    :func:`~repro.online.renormalize.renormalize` per module; the small
    corridor-join BFS stays scalar (it is nowhere near the hot path).
    """
    layout = ModularLayout.fit(lattice.size, num_modules, mi_ratio)
    g = layout.modules_per_side
    per_module_target = max(1, layout.module_size // node_size)

    results: list[list[RenormalizationResult]] = []
    total_work = 0
    max_module_work = 0
    for mi in range(g):
        row_results = []
        for mj in range(g):
            sub = _module_lattice(lattice, layout, mi, mj)
            result = renormalize(sub, per_module_target, pathfind=pathfind)
            row_results.append(result)
            total_work += result.visited_sites
            max_module_work = max(max_module_work, result.visited_sites)
        results.append(row_results)

    # Join corridors.  A global coarse row r = (mi, local j) survives iff all
    # g modules in that module-row succeeded and all g-1 horizontal joins of
    # that local path connected; columns symmetrically.
    join_work = 0
    surviving_rows = 0
    surviving_cols = 0
    for mi in range(g):
        module_row_ok = all(results[mi][mj].success for mj in range(g))
        for local in range(per_module_target):
            if not module_row_ok:
                continue
            ok = True
            for mj in range(g - 1):
                left = [
                    _to_global(c, layout, mi, mj)
                    for c in results[mi][mj].horizontal_paths[local]
                ]
                right = {
                    _to_global(c, layout, mi, mj + 1)
                    for c in results[mi][mj + 1].horizontal_paths[local]
                }
                fringe = max(1, node_size)
                corridor_cols = (
                    layout.module_origin(mj) + layout.module_size - fringe,
                    layout.module_origin(mj + 1) + fringe,
                )
                corridor_rows = (
                    layout.module_origin(mi),
                    layout.module_origin(mi) + layout.module_size,
                )
                reached, visited = _corridor_connected(
                    lattice, left, right, corridor_rows, corridor_cols
                )
                join_work += visited
                if not reached:
                    ok = False
                    break
            surviving_rows += int(ok)
    for mj in range(g):
        module_col_ok = all(results[mi][mj].success for mi in range(g))
        for local in range(per_module_target):
            if not module_col_ok:
                continue
            ok = True
            for mi in range(g - 1):
                upper = [
                    _to_global(c, layout, mi, mj)
                    for c in results[mi][mj].vertical_paths[local]
                ]
                lower = {
                    _to_global(c, layout, mi + 1, mj)
                    for c in results[mi + 1][mj].vertical_paths[local]
                }
                fringe = max(1, node_size)
                corridor_rows = (
                    layout.module_origin(mi) + layout.module_size - fringe,
                    layout.module_origin(mi + 1) + fringe,
                )
                corridor_cols = (
                    layout.module_origin(mj),
                    layout.module_origin(mj) + layout.module_size,
                )
                reached, visited = _corridor_connected(
                    lattice, upper, lower, corridor_rows, corridor_cols
                )
                join_work += visited
                if not reached:
                    ok = False
                    break
            surviving_cols += int(ok)

    flat_results = [result for row in results for result in row]
    return ModularResult(
        layout=layout,
        surviving_rows=surviving_rows,
        surviving_cols=surviving_cols,
        module_results=flat_results,
        wall_visited_sites=max_module_work + join_work,
        total_visited_sites=total_work + join_work,
    )


def _to_global(coord: Coord2D, layout: ModularLayout, mi: int, mj: int) -> Coord2D:
    """Module-local coordinate -> RSL coordinate."""
    return (
        coord[0] + layout.module_origin(mi),
        coord[1] + layout.module_origin(mj),
    )
