"""Exact graph-state construction of one RSL (the abstraction's ground truth).

The large-scale online pass works on the site/bond abstraction of
:mod:`repro.online.percolation`.  This module builds the *actual* physical
graph state of a (small) layer with real type-II fusions on real star
resource states, including the Section 4.2 cleanup: a failed root-leaf merge
leaves the Fig. 8 cyclic structure, which is restored to a star by local
complementation — recorded in a :class:`LocalOpLedger` so the basis changes
of Theorems 4.1/4.2 can be applied later instead of running the LC in real
time.

The test-suite uses it to check that the abstraction is sound: the bond map
reported here matches the root-to-root connectivity of the real graph state,
fusion for fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.graphstate.fusion import apply_fusion
from repro.graphstate.graph import GraphState
from repro.graphstate.local_ops import LocalOpLedger
from repro.graphstate.resource import ResourceStateInstance, ResourceStateSpec, emit_star
from repro.hardware.architecture import HardwareConfig
from repro.hardware.fusion import FusionDevice
from repro.utils.gridgeom import Coord2D

#: Keep exact layers small: every qubit is a real graph node.
MAX_EXACT_SIDE = 16


@dataclass
class ExactSite:
    """One lattice site assembled from merged stars."""

    coord: Coord2D
    root: object | None  # None if the site died during merging
    free_leaves: list = field(default_factory=list)
    lc_cleanups: int = 0


@dataclass
class ExactLayer:
    """A fully materialized physical layer."""

    graph: GraphState
    sites: dict[Coord2D, ExactSite]
    ledger: LocalOpLedger
    bonds: dict[frozenset[Coord2D], bool]
    fusions_attempted: int

    def site_alive(self, coord: Coord2D) -> bool:
        return self.sites[coord].root is not None

    def roots_connected(self, a: Coord2D, b: Coord2D) -> bool:
        """Whether the two sites' roots share an edge in the real state."""
        site_a, site_b = self.sites[a], self.sites[b]
        if site_a.root is None or site_b.root is None:
            return False
        return self.graph.has_edge(site_a.root, site_b.root)


def _merge_site(
    graph: GraphState,
    stars: list[ResourceStateInstance],
    device: FusionDevice,
    ledger: LocalOpLedger,
) -> tuple[object | None, list, int, int]:
    """Chain ``stars`` into one big star with root-leaf fusions.

    Returns (root, free leaves, fusions attempted, LC cleanups).  On a
    failed root-leaf fusion the joiner's orphaned clique (Fig. 8) is
    restored to a star by local complementation on one of its members, with
    the operators recorded in the ledger, and the merge retries while leaves
    remain on both sides.
    """
    accumulated = stars[0]
    root = accumulated.root
    leaves = list(accumulated.leaves)
    attempted = 0
    cleanups = 0
    for joiner in stars[1:]:
        joiner_leaves = list(joiner.leaves)
        joined = False
        while leaves and joiner_leaves:
            leaf = leaves.pop()
            attempted += 1
            success = device.attempt("root-leaf")
            apply_fusion(graph, leaf, joiner.root, success)
            if success:
                # The joiner's leaves now hang off our root.
                leaves.extend(joiner_leaves)
                joined = True
                break
            # Failure: our leaf burned trivially (degree 1); the joiner's
            # root vanished after an LC, leaving its leaves fully connected
            # (Fig. 8's B).  Restore a star by LC at one surviving member
            # and record the postponed operators.
            survivor = joiner_leaves.pop()
            if joiner_leaves:
                ledger.record_local_complement(
                    survivor, graph.neighbors(survivor)
                )
                graph.local_complement(survivor)
                cleanups += 1
                # survivor is now the root of a (smaller) star; use it as
                # the joiner root for the retry.
                joiner = ResourceStateInstance(root=survivor, leaves=joiner_leaves)
            else:
                break  # joiner exhausted
        if not joined and not leaves:
            return None, [], attempted, cleanups
    return root, leaves, attempted, cleanups


def build_exact_layer(
    config: HardwareConfig,
    device: FusionDevice | None = None,
    rng=None,
) -> ExactLayer:
    """Materialize one merged layer of ``config`` as a real graph state.

    Performs the same semi-static strategy as
    :func:`repro.online.fusion_strategy.form_layer` — merge stars per site,
    then leaf-leaf fuse right/down neighbours — but on actual qubits, so
    every heralded outcome corresponds to a graph rewrite.
    """
    n = config.rsl_size
    if n > MAX_EXACT_SIDE:
        raise HardwareError(
            f"exact layers are capped at {MAX_EXACT_SIDE}x{MAX_EXACT_SIDE} "
            f"(got {n}); use the percolation abstraction at scale"
        )
    if device is None:
        device = FusionDevice(config.effective_fusion_rate, rng)
    graph = GraphState()
    ledger = LocalOpLedger()
    spec: ResourceStateSpec = config.resource_state
    merge_count = config.merged_rsls_per_layer
    sites: dict[Coord2D, ExactSite] = {}
    attempted = 0

    for row in range(n):
        for col in range(n):
            stars = [
                emit_star(graph, spec, (layer_index, row, col))
                for layer_index in range(merge_count)
            ]
            root, leaves, merge_attempts, cleanups = _merge_site(
                graph, stars, device, ledger
            )
            attempted += merge_attempts
            sites[(row, col)] = ExactSite(
                coord=(row, col),
                root=root,
                free_leaves=leaves,
                lc_cleanups=cleanups,
            )

    bonds: dict[frozenset[Coord2D], bool] = {}
    for row in range(n):
        for col in range(n):
            here = sites[(row, col)]
            for there_coord in (((row, col + 1)), ((row + 1, col))):
                if there_coord[0] >= n or there_coord[1] >= n:
                    continue
                there = sites[there_coord]
                key = frozenset(((row, col), there_coord))
                if (
                    here.root is None
                    or there.root is None
                    or not here.free_leaves
                    or not there.free_leaves
                ):
                    bonds[key] = False
                    continue
                leaf_a = here.free_leaves.pop()
                leaf_b = there.free_leaves.pop()
                attempted += 1
                success = device.attempt("leaf-leaf")
                apply_fusion(graph, leaf_a, leaf_b, success)
                bonds[key] = success
    return ExactLayer(
        graph=graph,
        sites=sites,
        ledger=ledger,
        bonds=bonds,
        fusions_attempted=attempted,
    )


def bond_consistency(layer: ExactLayer) -> float:
    """Fraction of bonds whose heralded outcome matches real connectivity.

    Should be exactly 1.0 — the test-suite asserts it — because a
    successful leaf-leaf fusion of two star leaves joins precisely their
    roots, and a failed one joins nothing.
    """
    total = 0
    agree = 0
    for key, heralded in layer.bonds.items():
        a, b = tuple(key)
        total += 1
        agree += int(layer.roots_connected(a, b) == heralded)
    return agree / total if total else 1.0
