"""Semi-static fusion strategy: resource states -> percolated layer (Section 4).

The strategy is *static* in that the fusion pattern is fixed independently of
the program: every site merges ``m`` stars into a high-degree star (root-leaf
fusions, Fig. 7(c)), then leaf-leaf fuses with its four in-layer neighbours
(Fig. 7(a)) while reserving two leaves for temporal bonds.  It is *semi*-
static in that failed connections are collectively retried with whatever
redundant degrees remain (Section 4.3), a batch mechanism with constant
pipeline overhead.

The output is the :class:`~repro.online.percolation.PercolatedLattice` the
renormalization pass consumes, plus exact fusion accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.architecture import HardwareConfig, LATTICE_DEGREE_2D
from repro.hardware.fusion import FusionDevice
from repro.hardware.rsg import RSGArray
from repro.online.percolation import PercolatedLattice

#: Leaves each site reserves for temporal (inter-layer) bonds.
TEMPORAL_RESERVE = 2


@dataclass
class LayerFormation:
    """A formed layer: the percolated lattice plus its resource accounting."""

    lattice: PercolatedLattice
    rsls_used: int
    merge_fusions: int
    spatial_fusions: int
    spatial_retries: int
    temporal_budget: np.ndarray  # int (N, N): leaves left for temporal bonds

    @property
    def fusions(self) -> int:
        return self.merge_fusions + self.spatial_fusions


def _attempt_bonds_with_retry(
    device: FusionDevice,
    redundancy: np.ndarray,
    endpoint_a: tuple[slice, slice],
    endpoint_b: tuple[slice, slice],
    shape: tuple[int, int],
) -> tuple[np.ndarray, int, int]:
    """One batch of leaf-leaf bonds plus a collective retry round.

    ``endpoint_a``/``endpoint_b`` slice the site-indexed ``redundancy`` array
    down to the two endpoint grids of the bond array (shape ``shape``).
    Failed bonds retry once where *both* endpoints still hold a redundant
    leaf, consuming one from each.  Returns (bond outcomes, attempts, retries).
    """
    outcomes = device.attempt_grid(shape, "leaf-leaf")
    attempts = int(np.prod(shape))
    red_a = redundancy[endpoint_a]
    red_b = redundancy[endpoint_b]
    retry_mask = (~outcomes) & (red_a >= 1) & (red_b >= 1)
    retries = int(retry_mask.sum())
    if retries:
        red_a[retry_mask] -= 1
        red_b[retry_mask] -= 1
        second = device.attempt_batch(retries, "leaf-leaf")
        outcomes[retry_mask] = second
        attempts += retries
    return outcomes, attempts, retries


def form_layer(config: HardwareConfig, device: FusionDevice) -> LayerFormation:
    """Form one percolated layer from ``merged_rsls_per_layer`` fresh RSLs.

    Dead sites (whose root was lost during merging) contribute no bonds; all
    surviving sites spend four leaves on spatial bonds, reserve
    ``TEMPORAL_RESERVE`` for temporal bonds, and use anything beyond that as
    the collective-retry budget.
    """
    n = config.rsl_size
    array = RSGArray(config)
    merge = array.merge_layers(device)

    # Redundancy per site: leaves beyond the 4 spatial + 2 temporal demand.
    redundancy = merge.degrees - (LATTICE_DEGREE_2D + TEMPORAL_RESERVE)
    redundancy = np.clip(redundancy, 0, None)
    redundancy[~merge.alive] = 0

    horizontal, h_attempts, h_retries = _attempt_bonds_with_retry(
        device,
        redundancy,
        (slice(None), slice(0, n - 1)),
        (slice(None), slice(1, n)),
        (n, n - 1),
    )
    vertical, v_attempts, v_retries = _attempt_bonds_with_retry(
        device,
        redundancy,
        (slice(0, n - 1), slice(None)),
        (slice(1, n), slice(None)),
        (n - 1, n),
    )

    lattice = PercolatedLattice(
        sites=merge.alive.copy(),
        horizontal=horizontal,
        vertical=vertical,
    )
    temporal_budget = np.full((n, n), TEMPORAL_RESERVE, dtype=np.int64)
    temporal_budget += redundancy  # unspent retries remain usable temporally
    temporal_budget[~merge.alive] = 0
    return LayerFormation(
        lattice=lattice,
        rsls_used=config.merged_rsls_per_layer,
        merge_fusions=merge.merge_fusions,
        spatial_fusions=h_attempts + v_attempts,
        spatial_retries=h_retries + v_retries,
        temporal_budget=temporal_budget,
    )


def effective_bond_probability(config: HardwareConfig) -> float:
    """Closed-form bond success probability after one collective retry.

    With success rate ``p`` and a redundant leaf on both sides, a bond opens
    with probability ``1 - (1 - p)^2``; with no redundancy it is just ``p``.
    Used by tests to cross-check the sampled grids and by the analytical
    planner in the baseline comparison.
    """
    p = config.effective_fusion_rate
    if config.redundant_degree >= 1:
        return 1.0 - (1.0 - p) ** 2
    return p
