"""3D cubic-lattice percolation: the raw material of Fig. 7(b).

Six-degree resource states (7-qubit stars) can fuse directly into a 3D cubic
lattice; the percolated result is the *unreshaped* computing resource the
(2+1)-D design of Section 5 carves up layer by layer.  This module models
that raw 3D object so the design choice can be examined: 3D bond percolation
has a much lower threshold (~0.2488) than the per-layer 2D square lattice
(1/2), which is why long-range connectivity is so comfortably available at
p = 0.75 — and why the challenge the paper solves is *shaping* that
connectivity in real time, not creating it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenormalizationError
from repro.utils.dsu import DisjointSet
from repro.utils.rng import ensure_rng

#: Known bond-percolation threshold of the simple cubic lattice.
CUBIC_BOND_THRESHOLD = 0.2488


@dataclass
class Percolated3D:
    """Random subgraph of an ``L x L x L`` cubic lattice.

    ``bonds_x[i, j, k]`` joins ``(i, j, k)`` and ``(i+1, j, k)``; ``bonds_y``
    and ``bonds_z`` likewise along the second and third axes.
    """

    sites: np.ndarray  # bool (L, L, L)
    bonds_x: np.ndarray  # bool (L-1, L, L)
    bonds_y: np.ndarray  # bool (L, L-1, L)
    bonds_z: np.ndarray  # bool (L, L, L-1)

    @property
    def size(self) -> int:
        return self.sites.shape[0]

    def components(self) -> DisjointSet:
        """Disjoint-set over alive sites under open bonds."""
        dsu: DisjointSet = DisjointSet()
        alive = np.argwhere(self.sites)
        for i, j, k in alive.tolist():
            dsu.add((i, j, k))
        for axis, bonds in (("x", self.bonds_x), ("y", self.bonds_y), ("z", self.bonds_z)):
            offsets = {"x": (1, 0, 0), "y": (0, 1, 0), "z": (0, 0, 1)}[axis]
            open_bonds = np.argwhere(bonds)
            for i, j, k in open_bonds.tolist():
                a = (i, j, k)
                b = (i + offsets[0], j + offsets[1], k + offsets[2])
                if self.sites[a] and self.sites[b]:
                    dsu.union(a, b)
        return dsu

    def largest_cluster_fraction(self) -> float:
        """Largest cluster size over total sites (the order parameter)."""
        dsu = self.components()
        if len(dsu) == 0:
            return 0.0
        return len(dsu.largest_component()) / self.sites.size

    def spans_z(self) -> bool:
        """Whether some cluster touches both z = 0 and z = L-1 faces."""
        dsu = self.components()
        size = self.size
        bottom_roots = {
            dsu.find((i, j, 0))
            for i in range(size)
            for j in range(size)
            if self.sites[i, j, 0]
        }
        return any(
            dsu.find((i, j, size - 1)) in bottom_roots
            for i in range(size)
            for j in range(size)
            if self.sites[i, j, size - 1]
        )


def sample_lattice3d(
    size: int,
    bond_probability: float,
    rng=None,
    site_alive: np.ndarray | None = None,
) -> Percolated3D:
    """Sample an ``size^3`` bond-percolated cubic lattice."""
    if size < 1:
        raise RenormalizationError(f"lattice size must be >= 1, got {size}")
    if not 0.0 <= bond_probability <= 1.0:
        raise RenormalizationError(
            f"bond probability must be in [0, 1], got {bond_probability}"
        )
    rng = ensure_rng(rng)
    sites = (
        np.ones((size, size, size), dtype=bool)
        if site_alive is None
        else site_alive.astype(bool).copy()
    )
    shape_x = (max(0, size - 1), size, size)
    shape_y = (size, max(0, size - 1), size)
    shape_z = (size, size, max(0, size - 1))
    return Percolated3D(
        sites=sites,
        bonds_x=rng.random(shape_x) < bond_probability,
        bonds_y=rng.random(shape_y) < bond_probability,
        bonds_z=rng.random(shape_z) < bond_probability,
    )


def spanning_probability_3d(
    size: int,
    bond_probability: float,
    trials: int,
    rng=None,
) -> float:
    """Monte-Carlo z-spanning probability (tests bracket ~0.2488 with it)."""
    rng = ensure_rng(rng)
    hits = sum(
        sample_lattice3d(size, bond_probability, rng).spans_z() for _ in range(trials)
    )
    return hits / trials
