"""Online passes: fusion strategy, percolation, renormalization, reshaping."""

from repro.online.percolation import (
    GridComponents,
    PercolatedLattice,
    sample_lattice,
    spanning_probability,
)
from repro.online.renormalize import RenormalizationResult, renormalize
from repro.online.modular import (
    ModularLayout,
    ModularResult,
    modular_renormalize,
)
from repro.online.fusion_strategy import (
    LayerFormation,
    TEMPORAL_RESERVE,
    effective_bond_probability,
    form_layer,
)
from repro.online.timelike import (
    LayerDemand,
    OnlineReshaper,
    ReshapeMetrics,
    TEMPORAL_FANOUT,
)
from repro.online.lattice3d import (
    CUBIC_BOND_THRESHOLD,
    Percolated3D,
    sample_lattice3d,
    spanning_probability_3d,
)
from repro.online.exact_layer import (
    ExactLayer,
    ExactSite,
    bond_consistency,
    build_exact_layer,
)
from repro.online.autotune import (
    NodeSizeChoice,
    choose_node_side,
    estimate_success,
    rsl_size_for_virtual,
    saturation_point,
    success_curve,
)

__all__ = [
    "GridComponents",
    "PercolatedLattice",
    "sample_lattice",
    "spanning_probability",
    "RenormalizationResult",
    "renormalize",
    "ModularLayout",
    "ModularResult",
    "modular_renormalize",
    "LayerFormation",
    "TEMPORAL_RESERVE",
    "effective_bond_probability",
    "form_layer",
    "LayerDemand",
    "OnlineReshaper",
    "ReshapeMetrics",
    "TEMPORAL_FANOUT",
    "NodeSizeChoice",
    "choose_node_side",
    "estimate_success",
    "rsl_size_for_virtual",
    "success_curve",
    "saturation_point",
    "Percolated3D",
    "sample_lattice3d",
    "spanning_probability_3d",
    "CUBIC_BOND_THRESHOLD",
    "ExactLayer",
    "ExactSite",
    "build_exact_layer",
    "bond_consistency",
]
