"""In-layer routing on the virtual hardware grid.

Spatial edges of the FlexLattice IR join 4-adjacent nodes, so connecting two
arbitrary cells on a layer lays down a wire of ancilla nodes between them
(measured in X/Y depending on parity, per Section 6.3).  The router is a
plain BFS over free cells — the optimization-relevant behaviour is *which*
cells are free, which the mapper controls.
"""

from __future__ import annotations

from collections import deque

from repro.utils.gridgeom import Coord2D, grid_neighbors4


class LayerGrid:
    """Occupancy of one virtual-hardware layer."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.cells: dict[Coord2D, object] = {}

    def is_free(self, cell: Coord2D) -> bool:
        return cell not in self.cells

    def occupy(self, cell: Coord2D, owner: object) -> None:
        if cell in self.cells:
            raise ValueError(f"cell {cell} already occupied by {self.cells[cell]!r}")
        self.cells[cell] = owner

    def release(self, cell: Coord2D) -> None:
        self.cells.pop(cell, None)

    def free_cells(self) -> list[Coord2D]:
        return [
            (row, col)
            for row in range(self.width)
            for col in range(self.width)
            if (row, col) not in self.cells
        ]

    def nearest_free(self, anchors: list[Coord2D]) -> Coord2D | None:
        """The free cell minimizing total Manhattan distance to ``anchors``.

        With no anchors, returns the first free cell in row-major order.
        """
        best: Coord2D | None = None
        best_cost = None
        for cell in self.free_cells():
            if not anchors:
                return cell
            cost = sum(abs(cell[0] - a[0]) + abs(cell[1] - a[1]) for a in anchors)
            if best_cost is None or cost < best_cost:
                best, best_cost = cell, cost
        return best


def route(grid: LayerGrid, start: Coord2D, goal: Coord2D) -> list[Coord2D] | None:
    """Shortest wire of *free* cells connecting ``start`` and ``goal``.

    ``start`` and ``goal`` are occupied endpoints (the nodes being joined);
    the returned list contains only the intermediate free cells, which the
    caller turns into ancillas.  Returns ``[]`` if the endpoints are already
    adjacent, ``None`` if no route exists.
    """
    if abs(start[0] - goal[0]) + abs(start[1] - goal[1]) == 1:
        return []
    parents: dict[Coord2D, Coord2D] = {}
    seen = {start}
    queue: deque[Coord2D] = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in grid_neighbors4(current, grid.width):
            if neighbor == goal and current != start:
                path = [current]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path[1:] if path and path[0] == start else path
            if neighbor in seen or not grid.is_free(neighbor):
                continue
            seen.add(neighbor)
            parents[neighbor] = current
            queue.append(neighbor)
    return None
