"""The offline mapping pass: program graph state -> FlexLattice IR (Section 6.2).

The mapper extends OneQ's graph-state embedding with the paper's three
optimizations:

1. **dynamic scheduling** — candidate nodes come from the front layer of the
   measurement-calculus dependency DAG, updated as nodes are consumed;
2. **occupancy limit** — at most ``occupancy_limit`` (default 25 %) of each
   layer's cells may hold *incomplete* nodes (mapped nodes with unmapped
   edges), reserving room for routing;
3. **refresh** — every ``refresh_every`` layers the virtual memory's
   contents are retrieved and re-stored, bounding the classical memory that
   tracks the accumulated graph information at the price of extra layers.

Mechanics.  A mapped node with unrealized edges is *stored* in the virtual
memory at its home coordinate (the per-coordinate memory of the virtual
hardware).  An edge is realized on whichever layer both endpoint wires can
meet: at either endpoint's mapping layer, or later by retrieving both
worldlines and routing between them.  Every retrieval re-emerges at the
node's home coordinate (FlexLattice temporal edges keep their 2D coordinate)
and consumes that cell on the current layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError, MemoryBudgetExceeded
from repro.ir.flexlattice import (
    ROLE_ANCILLA,
    ROLE_GRAPH,
    ROLE_WORLDLINE,
    FlexLatticeIR,
)
from repro.mbqc.dependency import DependencyDAG
from repro.mbqc.pattern import MeasurementPattern
from repro.offline.routing import LayerGrid, route
from repro.online.timelike import LayerDemand
from repro.utils.gridgeom import Coord2D, Coord3D

#: Classical bytes accounted per stored node per elapsed layer: the physical
#: qubits of a stored wire grow by one layer's worth of graph bookkeeping per
#: RSL the node waits.  Calibrated once (see DESIGN.md / Table 3) so the
#: paper's 32 GB budget separates 25-qubit from 64-qubit benchmarks.
DEFAULT_BYTES_PER_NODE_LAYER = 4 * 2**20  # 4 MiB


@dataclass
class MemoryEntry:
    """One stored node: where it lives and what it still owes."""

    g_node: int
    home: Coord2D
    last_coord: Coord3D  # newest worldline instance (or original placement)
    stored_layer: int  # layer at which it was last (re-)stored
    pending: set[int] = field(default_factory=set)  # unrealized neighbour ids


@dataclass
class MappingResult:
    """Everything the offline pass hands to the online pass and the harness."""

    ir: FlexLatticeIR
    demands: list[LayerDemand]
    layer_count: int
    refresh_layer_count: int
    peak_memory_bytes: int
    retrievals: int
    deferred_edge_realizations: int
    ancilla_cells: int

    @property
    def logical_layer_count(self) -> int:
        """Layers the online pass must realize (mapping + refresh layers)."""
        return self.layer_count


class OfflineMapper:
    """Maps a measurement pattern onto the virtual hardware."""

    def __init__(
        self,
        width: int,
        occupancy_limit: float = 0.25,
        refresh_every: int | None = None,
        memory_budget_bytes: int | None = None,
        bytes_per_node_layer: int = DEFAULT_BYTES_PER_NODE_LAYER,
        dynamic_scheduling: bool = True,
        max_idle_layers: int = 8,
    ) -> None:
        if width < 2:
            raise MappingError(f"virtual hardware width must be >= 2, got {width}")
        if not 0.0 < occupancy_limit <= 1.0:
            raise MappingError(
                f"occupancy limit must be in (0, 1], got {occupancy_limit}"
            )
        if refresh_every is not None and refresh_every < 1:
            raise MappingError("refresh_every must be >= 1 layer when given")
        self.width = width
        self.occupancy_limit = occupancy_limit
        self.refresh_every = refresh_every
        self.memory_budget_bytes = memory_budget_bytes
        self.bytes_per_node_layer = bytes_per_node_layer
        self.dynamic_scheduling = dynamic_scheduling
        self.max_idle_layers = max_idle_layers

    # ------------------------------------------------------------------

    def map_pattern(self, pattern: MeasurementPattern) -> MappingResult:
        """Run the mapping; raises on budget violation or impossible layouts."""
        state = _MapperState(self, pattern)
        return state.run()


class _MapperState:
    """One mapping run's mutable state (kept off the public mapper object)."""

    def __init__(self, mapper: OfflineMapper, pattern: MeasurementPattern) -> None:
        self.mapper = mapper
        self.pattern = pattern
        self.graph = pattern.graph
        self.dag = DependencyDAG(pattern)
        self.ir = FlexLatticeIR(mapper.width)
        self.memory: dict[int, MemoryEntry] = {}
        self.consumed: set[int] = set()
        self.deferred_edges: set[frozenset[int]] = set()
        self.demands: list[LayerDemand] = []
        self.layer = -1
        self.layers_since_refresh = 0
        self.refresh_layers = 0
        self.peak_memory = 0
        self.retrievals = 0
        self.deferred_realized = 0
        self.ancilla_cells = 0
        if mapper.dynamic_scheduling:
            self._static_order = None
        else:
            # OneQ-style static partition: one global topological order,
            # consumed strictly in sequence.
            self._static_order = self.dag.topological_order()

    # -- top level -----------------------------------------------------

    def run(self) -> MappingResult:
        total = len(self.pattern.nodes)
        idle = 0
        while len(self.consumed) < total or self.deferred_edges or self._memory_dirty():
            progress = self._map_one_layer()
            idle = 0 if progress else idle + 1
            if idle > self.mapper.max_idle_layers:
                raise MappingError(
                    f"no progress for {idle} layers: "
                    f"{total - len(self.consumed)} nodes unmapped, "
                    f"{len(self.deferred_edges)} edges deferred "
                    f"(virtual hardware too small?)"
                )
            self._account_memory()
            if self._refresh_due():
                self._run_refresh()
        return MappingResult(
            ir=self.ir,
            demands=self._derive_demands(),
            layer_count=self.layer + 1,
            refresh_layer_count=self.refresh_layers,
            peak_memory_bytes=self.peak_memory,
            retrievals=self.retrievals,
            deferred_edge_realizations=self.deferred_realized,
            ancilla_cells=self.ancilla_cells,
        )

    def _derive_demands(self) -> list[LayerDemand]:
        """Per-layer time-like connection demands, read off the final IR.

        Cross-layer connections also carry their layer gaps so the online
        pass can enforce the delay-line photon lifetime.
        """
        adjacent = [0] * (self.layer + 1)
        cross_gaps: list[list[int]] = [[] for _ in range(self.layer + 1)]
        for earlier, later in self.ir.temporal_edges():
            gap = later[2] - earlier[2]
            if gap == 1:
                adjacent[later[2]] += 1
            else:
                cross_gaps[later[2]].append(gap)
        return [
            LayerDemand(
                adjacent_connections=adjacent[index],
                cross_connections=len(cross_gaps[index]),
                cross_gaps=tuple(cross_gaps[index]),
            )
            for index in range(self.layer + 1)
        ]

    def _memory_dirty(self) -> bool:
        """Whether any stored node still owes edges."""
        return any(entry.pending for entry in self.memory.values())

    # -- per-layer mapping ------------------------------------------------

    def _map_one_layer(self) -> bool:
        self.layer += 1
        self.layers_since_refresh += 1
        grid = LayerGrid(self.mapper.width)
        placed_here: dict[int, Coord2D] = {}  # g_node -> cell (residents + worldlines)
        adjacent_connections = 0
        cross_connections = 0
        incomplete_here = 0
        progress = False
        limit = max(1, int(self.mapper.occupancy_limit * self.mapper.width**2))

        def note_connection(gap: int) -> None:
            nonlocal adjacent_connections, cross_connections
            if gap == 1:
                adjacent_connections += 1
            else:
                cross_connections += 1

        # Phase 1: realize deferred edges between stored worldlines first —
        # retiring memory takes precedence over growing it, which keeps the
        # live population (and therefore refresh cost) bounded.
        for edge in sorted(self.deferred_edges, key=sorted):
            u, v = tuple(edge)
            if self._try_realize_deferred(u, v, grid, placed_here, note_connection):
                self.deferred_edges.discard(edge)
                self.deferred_realized += 1
                progress = True

        # Phase 2: place new nodes from the scheduler's candidate list.
        for g_node in self._candidates():
            if incomplete_here >= limit:
                break
            outcome = self._try_place(g_node, grid, placed_here, note_connection)
            if outcome is None:
                continue
            progress = True
            pending_after = outcome
            if pending_after:
                incomplete_here += 1

        # End of layer: every on-layer node with pending edges is stored.
        self._store_leftovers(placed_here)
        self.demands.append(
            LayerDemand(
                adjacent_connections=adjacent_connections,
                cross_connections=cross_connections,
            )
        )
        return progress

    def _candidates(self) -> list[int]:
        if self._static_order is not None:
            # Static partition (the OneQ inheritance): the fixed topological
            # order, no priority reshuffling as the mapping evolves.
            return [
                node
                for node in self._static_order
                if node not in self.consumed
                and self.dag.predecessors(node) <= self.consumed
            ]
        front = self.dag.front_layer(self.consumed)
        # Prefer nodes with many already-mapped neighbours: they retire
        # pending edges (and therefore memory) fastest.
        front.sort(
            key=lambda node: -sum(
                1 for nb in self.graph.neighbors(node) if nb in self.consumed
            )
        )
        return front

    # -- placement --------------------------------------------------------

    def _try_place(
        self,
        g_node: int,
        grid: LayerGrid,
        placed_here: dict[int, Coord2D],
        note_connection,
    ) -> set[int] | None:
        """Attempt to place ``g_node`` and realize what edges it can.

        A node realizes at most four edges on its own layer (its cell has
        four sides); edges to mapped neighbours that cannot be routed now are
        deferred to later layers, where both worldlines meet (Phase 2).
        Returns the node's unrealized-neighbour set on success (may be
        empty), ``None`` if no cell was available this layer.
        """
        neighbors = self.graph.neighbors(g_node)
        mapped_neighbors = [nb for nb in neighbors if nb in self.consumed]

        anchors: list[Coord2D] = []
        for nb in mapped_neighbors:
            if nb in placed_here:
                anchors.append(placed_here[nb])
            elif nb in self.memory:
                anchors.append(self.memory[nb].home)
            else:
                raise MappingError(
                    f"neighbour {nb} of {g_node} is mapped but untracked"
                )

        # Prefer cells that are nobody's home (a node may later need to
        # retrieve at its home cell on the same layer another node would
        # occupy), then cells that at least aren't a direct neighbour's home,
        # then any free cell — placement must not deadlock, since edges can
        # always be realized later through worldline meetings.
        neighbor_homes = {
            self.memory[nb].home for nb in mapped_neighbors if nb in self.memory
        }
        all_homes = {entry.home for entry in self.memory.values()}
        by_distance = sorted(
            grid.free_cells(),
            key=lambda c: sum(abs(c[0] - a[0]) + abs(c[1] - a[1]) for a in anchors),
        )
        cell = next((c for c in by_distance if c not in all_homes), None)
        if cell is None:
            cell = next((c for c in by_distance if c not in neighbor_homes), None)
        if cell is None and by_distance:
            cell = by_distance[0]
        if cell is None:
            return None

        grid.occupy(cell, g_node)
        self.ir.add_node((cell[0], cell[1], self.layer), ROLE_GRAPH, g_node)
        self.consumed.add(g_node)
        placed_here[g_node] = cell

        def neighbor_position(nb: int) -> Coord2D:
            return placed_here[nb] if nb in placed_here else self.memory[nb].home

        realized: set[int] = set()
        ordered = sorted(
            mapped_neighbors,
            key=lambda nb: abs(neighbor_position(nb)[0] - cell[0])
            + abs(neighbor_position(nb)[1] - cell[1]),
        )
        for nb in ordered:
            if self._realize_edge(g_node, nb, grid, placed_here, note_connection):
                realized.add(nb)

        pending = set(neighbors) - realized
        if pending:
            self.memory[g_node] = MemoryEntry(
                g_node=g_node,
                home=cell,
                last_coord=(cell[0], cell[1], self.layer),
                stored_layer=self.layer,
                pending=set(pending),
            )
        return pending

    def _realize_edge(
        self,
        g_node: int,
        nb: int,
        grid: LayerGrid,
        placed_here: dict[int, Coord2D],
        note_connection,
    ) -> bool:
        """Route the edge (g_node, nb) on the current layer (one transaction).

        ``g_node`` must be on this layer; ``nb`` is either on this layer or
        retrieved from memory at its home cell.  On failure nothing changes.
        """
        cell = placed_here[g_node]
        retrieved = False
        if nb in placed_here:
            nb_cell = placed_here[nb]
        elif nb in self.memory:
            entry = self.memory[nb]
            if not grid.is_free(entry.home):
                return False
            nb_cell = entry.home
            retrieved = True
        else:
            return False
        if nb_cell == cell:
            return False

        if retrieved:
            grid.occupy(nb_cell, ("worldline", nb))
        wire = route(grid, nb_cell, cell)
        if wire is None:
            if retrieved:
                grid.release(nb_cell)
            return False

        layer = self.layer
        if retrieved:
            entry = self.memory[nb]
            coord = (nb_cell[0], nb_cell[1], layer)
            self.ir.add_node(coord, ROLE_WORLDLINE, nb)
            self.ir.add_temporal_edge(entry.last_coord, coord)
            note_connection(layer - entry.last_coord[2])
            self.retrievals += 1
            entry.last_coord = coord
            entry.stored_layer = layer
            placed_here[nb] = nb_cell
        previous = nb_cell
        for step in wire:
            grid.occupy(step, "ancilla")
            self.ir.add_node((step[0], step[1], layer), ROLE_ANCILLA, None)
            self.ir.add_spatial_edge(
                (previous[0], previous[1], layer), (step[0], step[1], layer)
            )
            previous = step
            self.ancilla_cells += 1
        self.ir.add_spatial_edge(
            (previous[0], previous[1], layer), (cell[0], cell[1], layer)
        )

        # Retire the pending obligation on both sides.
        if nb in self.memory:
            self.memory[nb].pending.discard(g_node)
            if not self.memory[nb].pending:
                del self.memory[nb]
        if g_node in self.memory:
            self.memory[g_node].pending.discard(nb)
            if not self.memory[g_node].pending:
                del self.memory[g_node]
        return True

    def _try_realize_deferred(
        self,
        u: int,
        v: int,
        grid: LayerGrid,
        placed_here: dict[int, Coord2D],
        note_connection,
    ) -> bool:
        """Realize a deferred edge by meeting both worldlines on this layer."""
        positions: dict[int, Coord2D] = {}
        to_retrieve: list[int] = []
        for node in (u, v):
            if node in placed_here:
                positions[node] = placed_here[node]
            elif node in self.memory:
                entry = self.memory[node]
                if not grid.is_free(entry.home):
                    return False
                positions[node] = entry.home
                to_retrieve.append(node)
            else:
                raise MappingError(f"deferred edge endpoint {node} untracked")
        if positions[u] == positions[v]:
            # Both wires live at the same coordinate (placed there on
            # different layers).  Relocate one of them to a fresh home so the
            # edge becomes realizable on a later layer.
            mover = u if u in self.memory else v
            return self._relocate_home(mover, grid, placed_here)

        allocations: list[Coord2D] = []
        for node in to_retrieve:
            home = self.memory[node].home
            grid.occupy(home, ("worldline", node))
            allocations.append(home)
        wire = route(grid, positions[u], positions[v])
        if wire is None:
            for cell in allocations:
                grid.release(cell)
            return False

        for node in to_retrieve:
            entry = self.memory[node]
            coord = (entry.home[0], entry.home[1], self.layer)
            self.ir.add_node(coord, ROLE_WORLDLINE, node)
            self.ir.add_temporal_edge(entry.last_coord, coord)
            note_connection(self.layer - entry.last_coord[2])
            self.retrievals += 1
            entry.last_coord = coord
            entry.stored_layer = self.layer
            placed_here[node] = entry.home
        previous = positions[u]
        for step in wire:
            grid.occupy(step, "ancilla")
            coord = (step[0], step[1], self.layer)
            self.ir.add_node(coord, ROLE_ANCILLA, None)
            self.ir.add_spatial_edge(
                (previous[0], previous[1], self.layer), coord
            )
            previous = step
            self.ancilla_cells += 1
        self.ir.add_spatial_edge(
            (previous[0], previous[1], self.layer),
            (positions[v][0], positions[v][1], self.layer),
        )
        for node, other in ((u, v), (v, u)):
            if node in self.memory:
                entry = self.memory[node]
                entry.pending.discard(other)
                if not entry.pending:
                    del self.memory[node]
        return True

    def _relocate_home(
        self,
        g_node: int,
        grid: LayerGrid,
        placed_here: dict[int, Coord2D],
    ) -> bool:
        """Move a stored node's wire to a fresh home coordinate.

        Retrieves the node at its (colliding) home, extends the wire
        spatially to a free cell, and re-stores it there.  Counts as layer
        progress: the deferred edge becomes realizable once the homes differ.
        """
        entry = self.memory.get(g_node)
        if entry is None or g_node in placed_here:
            return False
        if not grid.is_free(entry.home):
            return False
        occupied_homes = {
            other.home for other in self.memory.values() if other.g_node != g_node
        }
        target = next(
            (
                cell
                for cell in sorted(
                    grid.free_cells(),
                    key=lambda c: abs(c[0] - entry.home[0]) + abs(c[1] - entry.home[1]),
                )
                if cell != entry.home and cell not in occupied_homes
            ),
            None,
        )
        if target is None:
            return False
        grid.occupy(entry.home, ("worldline", g_node))
        wire = route(grid, entry.home, target)
        if wire is None:
            grid.release(entry.home)
            return False
        grid.occupy(target, ("worldline", g_node))

        layer = self.layer
        old_coord = (entry.home[0], entry.home[1], layer)
        new_coord = (target[0], target[1], layer)
        self.ir.add_node(old_coord, ROLE_WORLDLINE, g_node)
        self.ir.add_temporal_edge(entry.last_coord, old_coord)
        self.retrievals += 1
        previous = entry.home
        for step in wire:
            grid.occupy(step, "ancilla")
            self.ir.add_node((step[0], step[1], layer), ROLE_ANCILLA, None)
            self.ir.add_spatial_edge(
                (previous[0], previous[1], layer), (step[0], step[1], layer)
            )
            previous = step
            self.ancilla_cells += 1
        # The wire's new end arrives spatially (no temporal predecessor) but
        # keeps the program node's identity: it is the same logical wire.
        self.ir.add_node(new_coord, ROLE_WORLDLINE, g_node)
        self.ir.add_spatial_edge((previous[0], previous[1], layer), new_coord)
        entry.home = target
        entry.last_coord = new_coord
        entry.stored_layer = layer
        placed_here[g_node] = target
        return True

    def _store_leftovers(self, placed_here: dict[int, Coord2D]) -> None:
        """Split still-pending edges into per-node memory entries and defer
        edges whose both endpoints are already mapped but unrouted."""
        for g_node in list(placed_here):
            if g_node not in self.memory:
                continue
            entry = self.memory[g_node]
            for nb in list(entry.pending):
                if nb in self.consumed:
                    self.deferred_edges.add(frozenset((g_node, nb)))

    # -- memory accounting and refresh ---------------------------------

    def _account_memory(self) -> None:
        used = self.mapper.bytes_per_node_layer * sum(
            (self.layer - entry.stored_layer + 1) for entry in self.memory.values()
        )
        self.peak_memory = max(self.peak_memory, used)
        budget = self.mapper.memory_budget_bytes
        if budget is not None and used > budget:
            raise MemoryBudgetExceeded(used, budget)

    def _refresh_due(self) -> bool:
        return (
            self.mapper.refresh_every is not None
            and self.layers_since_refresh >= self.mapper.refresh_every
            and bool(self.memory)
        )

    def _run_refresh(self) -> None:
        """Retrieve and re-store every memory entry across dedicated layers.

        Each refresh layer retrieves a batch of entries (at their distinct
        home cells) and stores them again, resetting their accumulated wire
        — the memory-for-#RSL trade of Table 3.
        """
        entries = list(self.memory.values())
        batch_capacity = max(1, self.mapper.width**2)
        index = 0
        while index < len(entries):
            self.layer += 1
            self.refresh_layers += 1
            used_homes: set[Coord2D] = set()
            adjacent = 0
            cross = 0
            while index < len(entries) and len(used_homes) < batch_capacity:
                entry = entries[index]
                if entry.home in used_homes:
                    break  # home conflict: push to the next refresh layer
                used_homes.add(entry.home)
                coord = (entry.home[0], entry.home[1], self.layer)
                self.ir.add_node(coord, ROLE_WORLDLINE, entry.g_node)
                self.ir.add_temporal_edge(entry.last_coord, coord)
                gap = self.layer - entry.last_coord[2]
                if gap == 1:
                    adjacent += 1
                else:
                    cross += 1
                self.retrievals += 1
                entry.last_coord = coord
                entry.stored_layer = self.layer
                index += 1
            self.demands.append(
                LayerDemand(adjacent_connections=adjacent, cross_connections=cross)
            )
        self.layers_since_refresh = 0
