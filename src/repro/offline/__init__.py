"""Offline pass: virtual-hardware mapping, routing, refresh, memory model."""

from repro.offline.mapper import (
    DEFAULT_BYTES_PER_NODE_LAYER,
    MappingResult,
    MemoryEntry,
    OfflineMapper,
)
from repro.offline.routing import LayerGrid, route

__all__ = [
    "OfflineMapper",
    "MappingResult",
    "MemoryEntry",
    "DEFAULT_BYTES_PER_NODE_LAYER",
    "LayerGrid",
    "route",
]
