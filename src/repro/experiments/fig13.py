"""Fig. 13: scalability — node size stability, PL ratio plateau, modularity.

* (a) the smallest average node size whose renormalization success rate
  approaches 1 is (near-)flat in the RSL size and smaller at higher fusion
  rates;
* (b) the ratio of consumed RSLs to logical layers plateaus as programs
  grow (around 3 in the paper), making resource consumption predictable;
* (c) modular renormalization yields ~60 % of the unlimited-time
  non-modular lattice but several times more than the *time-restricted*
  non-modular run, with the MI ratio sweet spot around 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.benchmarks import make_benchmark
from repro.experiments.common import check_scale
from repro.pipeline import Pipeline, PipelineSettings
from repro.online.modular import modular_renormalize
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

#: Success-rate threshold for "approaches 1" when picking node sizes.
SUITABLE_SUCCESS = 0.9

SCALE_13A = {
    "bench": ((36, 48, 72), (0.66, 0.72, 0.78), 10),
    "paper": ((48, 96, 144, 192, 240, 300), (0.66, 0.72, 0.78), 30),
}
SCALE_13B = {
    "bench": (("qaoa", "vqe"), (4, 9), 0.75),
    "paper": (("qaoa", "qft", "vqe", "rca"), (4, 9, 16, 25, 36), 0.75),
}
SCALE_13C = {
    "bench": (96, 12, (4, 9, 16), (2, 4, 7, 14, 19), 0.75, 5),
    "paper": (192, 12, (4, 9, 16), (2, 4, 7, 14, 19), 0.75, 10),
}


@dataclass
class Fig13Result:
    suitable_node_sizes: list[tuple[float, int, int]] = field(default_factory=list)
    # (fusion rate, RSL size, suitable node side)
    pl_ratios: list[tuple[str, int, float]] = field(default_factory=list)
    # (family, qubits, PL ratio)
    modularity: list[tuple[str, float, float]] = field(default_factory=list)
    # (setting label, renormalized node count, wall work proxy)


def suitable_node_size(
    rsl_size: int,
    rate: float,
    trials: int,
    rng,
    threshold: float = SUITABLE_SUCCESS,
) -> int:
    """Smallest node side whose renormalization success rate >= threshold.

    Mirrors Fig. 13(a)'s definition: the node size at which Fig. 16's curve
    approaches 1.
    """
    for node in range(4, rsl_size + 1, 2):
        target = rsl_size // node
        if target < 1:
            break
        hits = sum(
            renormalize(sample_lattice(rsl_size, rate, rng), target).success
            for _ in range(trials)
        )
        if hits / trials >= threshold:
            return node
    return rsl_size


def run(scale: str = "bench", seed: int = 0) -> tuple[Fig13Result, str]:
    check_scale(scale)
    result = Fig13Result()
    rng = ensure_rng(seed)

    # (a) suitable node size vs RSL size and rate.
    rsl_sizes, rates, trials = SCALE_13A[scale]
    for rate in rates:
        for rsl in rsl_sizes:
            result.suitable_node_sizes.append(
                (rate, rsl, suitable_node_size(rsl, rate, trials, rng))
            )

    # (b) PL ratio vs program size.  Node side 10 puts the renormalization
    # in the regime where per-RSL success is genuinely probabilistic (the
    # paper's PL plateau near 3 reflects that regime, not a comfortable
    # oversized node).  One pipeline batch covers the whole sweep.
    families, qubit_counts, rate = SCALE_13B[scale]
    pipeline = Pipeline(
        PipelineSettings(
            fusion_success_rate=rate,
            resource_state_size=7,
            node_side=10,
            max_rsl=10**5,
        ),
        seed=seed,
    )
    sweep_cases = [
        (family, qubits) for family in families for qubits in qubit_counts
    ]
    compiled_batch = pipeline.compile_many(
        [make_benchmark(family, qubits, seed=seed) for family, qubits in sweep_cases]
    )
    for (family, qubits), compiled in zip(sweep_cases, compiled_batch):
        result.pl_ratios.append((family.upper(), qubits, compiled.pl_ratio))

    # (c) modular vs non-modular renormalized size and work.
    rsl, node, module_counts, mi_ratios, rate_c, trials_c = SCALE_13C[scale]
    target = rsl // node

    def averaged(fn) -> tuple[float, float]:
        sizes, works = [], []
        for _ in range(trials_c):
            lattice = sample_lattice(rsl, rate_c, rng)
            size, work = fn(lattice)
            sizes.append(size)
            works.append(work)
        return float(np.mean(sizes)), float(np.mean(works))

    unlimited, unlimited_work = averaged(
        lambda lat: (
            (lambda r: (r.lattice_size**2, r.visited_sites))(renormalize(lat, target))
        )
    )
    result.modularity.append(("non-modular (unlimited)", unlimited, unlimited_work))
    for modules in module_counts:
        for mi in mi_ratios:
            label = f"modules={modules} MI={mi}"
            nodes_mean, wall = averaged(
                lambda lat, m=modules, r=mi: (
                    (lambda res: (res.node_count, res.wall_visited_sites))(
                        modular_renormalize(lat, node, m, r)
                    )
                )
            )
            result.modularity.append((label, nodes_mean, wall))
    # Time-restricted non-modular: same wall budget as the 4-module MI=7 run.
    budget = next(
        wall for label, _n, wall in result.modularity if label == "modules=4 MI=7"
    )
    restricted, restricted_work = averaged(
        lambda lat: (
            (lambda r: (r.lattice_size**2, r.visited_sites))(
                renormalize(lat, target, work_budget=int(budget))
            )
        )
    )
    result.modularity.append(
        ("non-modular (restricted)", restricted, restricted_work)
    )
    return result, render(result)


def render(result: Fig13Result) -> str:
    parts = []
    table_a = TextTable(
        ["Fusion rate", "RSL size", "Suitable node side"],
        title="Fig. 13(a): stable node size",
    )
    for rate, rsl, node in result.suitable_node_sizes:
        table_a.add_row(rate, rsl, node)
    parts.append(table_a.render())

    table_b = TextTable(
        ["Benchmark", "#Qubits", "PL ratio"], title="Fig. 13(b): RSL per logical layer"
    )
    for family, qubits, ratio in result.pl_ratios:
        table_b.add_row(family, qubits, f"{ratio:.2f}")
    parts.append(table_b.render())

    table_c = TextTable(
        ["Setting", "Renormalized nodes", "Wall work (visited sites)"],
        title="Fig. 13(c): modularity overhead",
    )
    for label, nodes, wall in result.modularity:
        table_c.add_row(label, f"{nodes:.1f}", f"{wall:,.0f}")
    parts.append(table_c.render())
    return "\n\n".join(parts)
