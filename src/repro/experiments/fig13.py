"""Fig. 13: scalability — node size stability, PL ratio plateau, modularity.

* (a) the smallest average node size whose renormalization success rate
  approaches 1 is (near-)flat in the RSL size and smaller at higher fusion
  rates;
* (b) the ratio of consumed RSLs to logical layers plateaus as programs
  grow (around 3 in the paper), making resource consumption predictable;
* (c) modular renormalization yields ~60 % of the unlimited-time
  non-modular lattice but several times more than the *time-restricted*
  non-modular run, with the MI ratio sweet spot around 7.

Panels (a) and (c) are Monte-Carlo :class:`FnJob`\\ s, each deriving its own
random stream from (seed, panel, sweep point) so any runner backend yields
the same records; panel (b) is one ``compile_many`` batch of
:class:`CompileJob`\\ s.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ReproError
from repro.experiments.api import (
    CompileJob,
    Experiment,
    ExperimentRecord,
    FnJob,
    Job,
    register,
)
from repro.experiments.common import stream_for
from repro.online.modular import modular_renormalize
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.pipeline import PipelineSettings
from repro.utils.tables import TextTable

#: Success-rate threshold for "approaches 1" when picking node sizes.
SUITABLE_SUCCESS = 0.9

SCALE_13A = {
    "bench": ((36, 48, 72), (0.66, 0.72, 0.78), 10),
    "paper": ((48, 96, 144, 192, 240, 300), (0.66, 0.72, 0.78), 30),
}
SCALE_13B = {
    "bench": (("qaoa", "vqe"), (4, 9), 0.75),
    "paper": (("qaoa", "qft", "vqe", "rca"), (4, 9, 16, 25, 36), 0.75),
}
SCALE_13C = {
    "bench": (96, 12, (4, 9, 16), (2, 4, 7, 14, 19), 0.75, 5),
    "paper": (192, 12, (4, 9, 16), (2, 4, 7, 14, 19), 0.75, 10),
}

#: The modular setting whose wall work budgets the time-restricted run.
BUDGET_MODULES = 4
BUDGET_MI = 7


def suitable_node_size(
    rsl_size: int,
    rate: float,
    trials: int,
    rng,
    threshold: float = SUITABLE_SUCCESS,
    pathfind: str = "vector",
) -> int:
    """Smallest node side whose renormalization success rate >= threshold.

    Mirrors Fig. 13(a)'s definition: the node size at which Fig. 16's curve
    approaches 1.
    """
    for node in range(4, rsl_size + 1, 2):
        target = rsl_size // node
        if target < 1:
            break
        hits = sum(
            renormalize(
                sample_lattice(rsl_size, rate, rng), target, pathfind=pathfind
            ).success
            for _ in range(trials)
        )
        if hits / trials >= threshold:
            return node
    return rsl_size


def suitable_node_size_case(
    rsl_size: int, rate: float, trials: int, seed: int, pathfind: str = "vector"
) -> dict[str, Any]:
    """One Fig. 13(a) point, on its own derived stream."""
    rng = stream_for("fig13", seed).child("a", rsl_size, rate).generator
    return {
        "node_side": suitable_node_size(rsl_size, rate, trials, rng, pathfind=pathfind)
    }


def _averaged(fn, rsl: int, rate: float, trials: int, rng) -> tuple[float, float]:
    """Mean (size, work) of ``fn(lattice)`` over freshly sampled lattices."""
    sizes, works = [], []
    for _ in range(trials):
        size, work = fn(sample_lattice(rsl, rate, rng))
        sizes.append(size)
        works.append(work)
    return float(np.mean(sizes)), float(np.mean(works))


def _renorm_stats(outcome) -> tuple[int, int]:
    """(achieved node count, visited-site work) of a non-modular outcome."""
    return outcome.lattice_size**2, outcome.visited_sites


def _modular_stats(outcome) -> tuple[int, int]:
    """(achieved node count, concurrent wall work) of a modular outcome."""
    return outcome.node_count, outcome.wall_visited_sites


def _modular_means(
    rsl: int,
    node: int,
    modules: int,
    mi_ratio: float,
    rate: float,
    trials: int,
    seed: int,
    pathfind: str = "vector",
) -> tuple[float, float]:
    rng = stream_for("fig13", seed).child("c", "modular", modules, mi_ratio).generator
    return _averaged(
        lambda lat: _modular_stats(
            modular_renormalize(lat, node, modules, mi_ratio, pathfind=pathfind)
        ),
        rsl,
        rate,
        trials,
        rng,
    )


def panel_c_unlimited(
    rsl: int, node: int, rate: float, trials: int, seed: int, pathfind: str = "vector"
):
    rng = stream_for("fig13", seed).child("c", "unlimited").generator
    nodes_mean, wall = _averaged(
        lambda lat: _renorm_stats(renormalize(lat, rsl // node, pathfind=pathfind)),
        rsl,
        rate,
        trials,
        rng,
    )
    return {"setting": "non-modular (unlimited)", "nodes_mean": nodes_mean, "wall_work": wall}


def panel_c_modular(
    rsl: int,
    node: int,
    modules: int,
    mi_ratio: float,
    rate: float,
    trials: int,
    seed: int,
    pathfind: str = "vector",
):
    nodes_mean, wall = _modular_means(
        rsl, node, modules, mi_ratio, rate, trials, seed, pathfind=pathfind
    )
    return {
        "setting": f"modules={modules} MI={mi_ratio}",
        "nodes_mean": nodes_mean,
        "wall_work": wall,
    }


def panel_c_restricted(
    rsl: int, node: int, rate: float, trials: int, seed: int, pathfind: str = "vector"
):
    """Time-restricted non-modular: same wall budget as the 4-module MI=7 run.

    The budget is recomputed here on the *same derived stream* as that
    modular job, so this job stays self-contained (no cross-job data flow)
    while using the identical budget value on every runner backend.
    """
    _nodes, budget = _modular_means(
        rsl, node, BUDGET_MODULES, BUDGET_MI, rate, trials, seed, pathfind=pathfind
    )
    rng = stream_for("fig13", seed).child("c", "restricted").generator
    nodes_mean, wall = _averaged(
        lambda lat: _renorm_stats(
            renormalize(lat, rsl // node, work_budget=int(budget), pathfind=pathfind)
        ),
        rsl,
        rate,
        trials,
        rng,
    )
    return {
        "setting": "non-modular (restricted)",
        "nodes_mean": nodes_mean,
        "wall_work": wall,
    }


@register
class Fig13Experiment(Experiment):
    name = "fig13"
    description = "node-size stability, PL-ratio plateau, modularity overhead"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        jobs: list[Job] = []

        # (a) suitable node size vs RSL size and rate.
        rsl_sizes, rates, trials = SCALE_13A[scale]
        for rate in rates:
            for rsl in rsl_sizes:
                jobs.append(
                    FnJob(
                        key=f"a/p={rate}/rsl={rsl}",
                        meta={"panel": "a", "fusion_rate": rate, "rsl_size": rsl},
                        fn=suitable_node_size_case,
                        kwargs={
                            "rsl_size": rsl,
                            "rate": rate,
                            "trials": trials,
                            "seed": seed,
                        },
                    )
                )

        # (b) PL ratio vs program size.  Node side 10 puts the
        # renormalization in the regime where per-RSL success is genuinely
        # probabilistic (the paper's PL plateau near 3 reflects that regime,
        # not a comfortable oversized node).  One settings object covers the
        # whole sweep, so it runs as a single compile_many batch.
        families, qubit_counts, rate_b = SCALE_13B[scale]
        settings = PipelineSettings(
            fusion_success_rate=rate_b,
            resource_state_size=7,
            node_side=10,
            max_rsl=10**5,
        )
        for family in families:
            for qubits in qubit_counts:
                jobs.append(
                    CompileJob(
                        key=f"b/{family}{qubits}",
                        meta={
                            "panel": "b",
                            "benchmark": family.upper(),
                            "num_qubits": qubits,
                        },
                        family=family,
                        num_qubits=qubits,
                        settings=settings,
                        seed=seed,
                    )
                )

        # (c) modular vs non-modular renormalized size and work.
        rsl, node, module_counts, mi_ratios, rate_c, trials_c = SCALE_13C[scale]
        if BUDGET_MODULES not in module_counts or BUDGET_MI not in mi_ratios:
            # The restricted run budgets itself against this setting's wall
            # work; if the sweep stops covering it, fail loudly rather than
            # compare against a configuration absent from the table.
            raise ReproError(
                f"fig13 panel (c) sweep must include modules={BUDGET_MODULES} "
                f"MI={BUDGET_MI}, the time-restricted run's budget reference"
            )
        base_c = {"rsl": rsl, "node": node, "rate": rate_c, "trials": trials_c, "seed": seed}
        jobs.append(
            FnJob(
                key="c/non-modular-unlimited",
                meta={"panel": "c"},
                fn=panel_c_unlimited,
                kwargs=dict(base_c),
            )
        )
        for modules in module_counts:
            for mi in mi_ratios:
                jobs.append(
                    FnJob(
                        key=f"c/modules={modules}/mi={mi}",
                        meta={"panel": "c"},
                        fn=panel_c_modular,
                        kwargs={**base_c, "modules": modules, "mi_ratio": mi},
                    )
                )
        jobs.append(
            FnJob(
                key="c/non-modular-restricted",
                meta={"panel": "c"},
                fn=panel_c_restricted,
                kwargs=dict(base_c),
            )
        )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        parts = []
        table_a = TextTable(
            ["Fusion rate", "RSL size", "Suitable node side"],
            title="Fig. 13(a): stable node size",
        )
        for record in records:
            if record.fields.get("panel") == "a":
                table_a.add_row(
                    record.fields["fusion_rate"],
                    record.fields["rsl_size"],
                    record.fields["node_side"],
                )
        parts.append(table_a.render())

        table_b = TextTable(
            ["Benchmark", "#Qubits", "PL ratio"],
            title="Fig. 13(b): RSL per logical layer",
        )
        for record in records:
            if record.fields.get("panel") == "b":
                table_b.add_row(
                    record.fields["benchmark"],
                    record.fields["num_qubits"],
                    f"{record.fields['pl_ratio']:.2f}",
                )
        parts.append(table_b.render())

        table_c = TextTable(
            ["Setting", "Renormalized nodes", "Wall work (visited sites)"],
            title="Fig. 13(c): modularity overhead",
        )
        for record in records:
            if record.fields.get("panel") == "c":
                table_c.add_row(
                    record.fields["setting"],
                    f"{record.fields['nodes_mean']:.1f}",
                    f"{record.fields['wall_work']:,.0f}",
                )
        parts.append(table_c.render())
        return "\n\n".join(parts)
