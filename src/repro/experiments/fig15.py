"""Fig. 15: offline compilation time.

* (a) offline mapping time grows with the program size (fixed virtual
  hardware);
* (b) for a fixed program, mapping time is U-shaped in the virtual hardware
  length: too small a lattice inflates the layer count, too large a lattice
  inflates the per-layer work.

Wall-clock seconds are the measured quantity, so they live in the records'
``timings``; the deterministic layer count is a field.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.circuits.benchmarks import make_benchmark
from repro.experiments.api import Experiment, ExperimentRecord, FnJob, Job, register
from repro.mbqc.translate import translate_circuit
from repro.offline.mapper import OfflineMapper
from repro.utils.tables import TextTable

SCALE_15A = {
    "bench": (("qaoa", "vqe"), (4, 9, 16), 4),
    "paper": (("qaoa", "qft", "vqe", "rca"), (9, 16, 25, 36, 49), 4),
}
SCALE_15B = {
    "bench": (("qaoa", "vqe"), 16, (3, 4, 5, 6, 8)),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, (3, 4, 5, 6, 7, 8, 9, 10)),
}


def timed_mapping(
    family: str, qubits: int, width: int, seed: int
) -> tuple[dict[str, Any], dict[str, float]]:
    """One offline mapping, timed: deterministic layers + wall seconds."""
    pattern = translate_circuit(make_benchmark(family, qubits, seed=seed))
    start = time.perf_counter()
    result = OfflineMapper(width=width).map_pattern(pattern)
    seconds = time.perf_counter() - start
    return {"logical_layers": int(result.layer_count)}, {"offline_seconds": seconds}


@register
class Fig15Experiment(Experiment):
    name = "fig15"
    description = "offline compile time vs program size and virtual hardware length"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        jobs: list[Job] = []
        families, qubit_counts, width = SCALE_15A[scale]
        for family in families:
            for qubits in qubit_counts:
                jobs.append(
                    FnJob(
                        key=f"a/{family}{qubits}",
                        meta={
                            "panel": "a",
                            "benchmark": family.upper(),
                            "num_qubits": qubits,
                        },
                        fn=timed_mapping,
                        kwargs={
                            "family": family,
                            "qubits": qubits,
                            "width": width,
                            "seed": seed,
                        },
                    )
                )

        families_b, qubits_b, widths = SCALE_15B[scale]
        for family in families_b:
            for width_b in widths:
                jobs.append(
                    FnJob(
                        key=f"b/{family}{qubits_b}/width={width_b}",
                        meta={
                            "panel": "b",
                            "benchmark": family.upper(),
                            "virtual_length": width_b,
                        },
                        fn=timed_mapping,
                        kwargs={
                            "family": family,
                            "qubits": qubits_b,
                            "width": width_b,
                            "seed": seed,
                        },
                    )
                )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        parts = []
        table_a = TextTable(
            ["Benchmark", "#Qubits", "Offline seconds"],
            title="Fig. 15(a): offline compile time vs program size (4x4 virtual hardware)",
        )
        for record in records:
            if record.fields.get("panel") == "a":
                table_a.add_row(
                    record.fields["benchmark"],
                    record.fields["num_qubits"],
                    f"{record.timings['offline_seconds']:.3f}",
                )
        parts.append(table_a.render())

        table_b = TextTable(
            ["Benchmark", "Virtual length", "Offline seconds", "Layers"],
            title="Fig. 15(b): offline compile time vs virtual hardware length",
        )
        for record in records:
            if record.fields.get("panel") == "b":
                table_b.add_row(
                    record.fields["benchmark"],
                    record.fields["virtual_length"],
                    f"{record.timings['offline_seconds']:.3f}",
                    record.fields["logical_layers"],
                )
        parts.append(table_b.render())
        return "\n\n".join(parts)
