"""Fig. 15: offline compilation time.

* (a) offline mapping time grows with the program size (fixed virtual
  hardware);
* (b) for a fixed program, mapping time is U-shaped in the virtual hardware
  length: too small a lattice inflates the layer count, too large a lattice
  inflates the per-layer work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuits.benchmarks import make_benchmark
from repro.experiments.common import check_scale
from repro.mbqc.translate import translate_circuit
from repro.offline.mapper import OfflineMapper
from repro.utils.tables import TextTable

SCALE_15A = {
    "bench": (("qaoa", "vqe"), (4, 9, 16), 4),
    "paper": (("qaoa", "qft", "vqe", "rca"), (9, 16, 25, 36, 49), 4),
}
SCALE_15B = {
    "bench": (("qaoa", "vqe"), 16, (3, 4, 5, 6, 8)),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, (3, 4, 5, 6, 7, 8, 9, 10)),
}


@dataclass
class Fig15Result:
    by_program_size: list[tuple[str, int, float]] = field(default_factory=list)
    # (family, qubits, seconds)
    by_virtual_size: list[tuple[str, int, float, int]] = field(default_factory=list)
    # (family, virtual width, seconds, layers)


def _time_mapping(family: str, qubits: int, width: int, seed: int) -> tuple[float, int]:
    pattern = translate_circuit(make_benchmark(family, qubits, seed=seed))
    start = time.perf_counter()
    result = OfflineMapper(width=width).map_pattern(pattern)
    return time.perf_counter() - start, result.layer_count


def run(scale: str = "bench", seed: int = 0) -> tuple[Fig15Result, str]:
    check_scale(scale)
    result = Fig15Result()

    families, qubit_counts, width = SCALE_15A[scale]
    for family in families:
        for qubits in qubit_counts:
            seconds, _layers = _time_mapping(family, qubits, width, seed)
            result.by_program_size.append((family.upper(), qubits, seconds))

    families_b, qubits_b, widths = SCALE_15B[scale]
    for family in families_b:
        for width_b in widths:
            seconds, layers = _time_mapping(family, qubits_b, width_b, seed)
            result.by_virtual_size.append((family.upper(), width_b, seconds, layers))
    return result, render(result)


def render(result: Fig15Result) -> str:
    parts = []
    table_a = TextTable(
        ["Benchmark", "#Qubits", "Offline seconds"],
        title="Fig. 15(a): offline compile time vs program size (4x4 virtual hardware)",
    )
    for family, qubits, seconds in result.by_program_size:
        table_a.add_row(family, qubits, f"{seconds:.3f}")
    parts.append(table_a.render())

    table_b = TextTable(
        ["Benchmark", "Virtual length", "Offline seconds", "Layers"],
        title="Fig. 15(b): offline compile time vs virtual hardware length",
    )
    for family, width, seconds, layers in result.by_virtual_size:
        table_b.add_row(family, width, f"{seconds:.3f}", layers)
    parts.append(table_b.render())
    return "\n\n".join(parts)
