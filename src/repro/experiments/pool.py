"""Warm persistent worker pools: spin up once, reuse for every sweep.

``BENCH_experiments.json`` exposed the bug this module fixes: the thread
and process runners *lost* to serial at bench scale because every
``iter_jobs`` call (and every ``compile_many`` batch) paid executor
startup — worker spawn, module imports in each child — before the first
job ran, and tore it all down afterwards.  For sweeps whose serial wall
clock is a fraction of a second, the fixed cost dwarfed the parallel win.

The registry here makes pools **process-lifetime resources**: one
executor per ``(kind, worker count)``, created on first use and reused by
every runner, every ``compile_many`` batch, and every sweep until
:func:`shutdown_pools` (installed as an ``atexit`` hook) retires them.
Process-pool workers pre-import the heavy compile modules at spawn
(:func:`_warm_worker`), so even a spawn-start-method child answers its
first job warm.

The companion knob is the **dispatch quantum**: :func:`chunk_size_for`
sizes job chunks to amortize IPC — about ``jobs / (4 * workers)`` per
round trip, so each worker sees ~4 submissions (enough slack for the
scheduler to balance uneven jobs) instead of one pickle round trip per
job.  Callers override it with an explicit chunk size (CLI:
``--chunk-size``).

Pools are shared infrastructure, so error handling is explicit: a caller
that poisons a pool (a failed job cancels the rest of its sweep) retires
it through :func:`discard_pool` — the pool is shut down with
``cancel_futures=True`` and dropped from the registry, and the next
acquisition builds a fresh one.  Determinism is unaffected by any of
this: jobs are self-seeded, so *which* pool (or how warm it is) can only
move wall-clock time around.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterator, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")

#: The executor kinds the registry hands out.
POOL_KINDS = ("thread", "process")

_pools: dict[tuple[str, int], Executor] = {}
_lock = threading.Lock()


def _warm_worker() -> None:  # pragma: no cover - runs inside pool workers
    """Pre-import the heavy compile modules in a fresh process-pool worker.

    Runs once per worker at spawn, so the first real job never pays
    import time.  Free under the fork start method (children inherit the
    parent's modules); the point is spawn-method children and keeping the
    warm-pool contract start-method-independent.
    """
    import repro.circuits.benchmarks  # noqa: F401
    import repro.online.renormalize  # noqa: F401
    import repro.pipeline  # noqa: F401


def resolve_workers(max_workers: int | None) -> int:
    """The concrete worker count ``max_workers`` means (None = all cores)."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ReproError(f"worker count must be >= 1, got {max_workers}")
    return max_workers


def get_pool(kind: str, max_workers: int | None = None) -> Executor:
    """The warm executor for ``(kind, workers)``, created on first use.

    Never wrap the returned pool in a ``with`` block and never call
    ``shutdown`` on it directly — it is shared by every caller in the
    process.  To retire a pool (after poisoning it with a failed sweep),
    use :func:`discard_pool`; to retire everything, :func:`shutdown_pools`.
    """
    workers = resolve_workers(max_workers)
    if kind not in POOL_KINDS:
        raise ReproError(
            f"unknown pool kind {kind!r}; use one of: {', '.join(POOL_KINDS)}"
        )
    key = (kind, workers)
    with _lock:
        pool = _pools.get(key)
        if pool is None:
            if kind == "thread":
                pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-warm"
                )
            else:
                pool = ProcessPoolExecutor(
                    max_workers=workers, initializer=_warm_worker
                )
            _pools[key] = pool
        return pool


def discard_pool(pool: Executor) -> None:
    """Retire one pool: drop it from the registry, cancel queued work.

    The error-path half of the warm-pool contract: a sweep that failed
    mid-flight cancels everything still queued (``cancel_futures=True``,
    so the failure surfaces immediately instead of after the rest of the
    sweep runs to completion) and stops sharing the executor — a process
    pool with a dead worker, or one still chewing on a poisoned sweep's
    stragglers, must not serve the next caller.  Safe to call with a pool
    the registry no longer holds (two failing sweeps can race to retire
    the same pool).
    """
    with _lock:
        for key, registered in list(_pools.items()):
            if registered is pool:
                del _pools[key]
                break
    pool.shutdown(wait=True, cancel_futures=True)


def shutdown_pools() -> int:
    """Retire every warm pool; idempotent.  Returns how many were closed.

    Registered as an ``atexit`` hook so long-lived embedders never need
    to think about pool lifetime; call it explicitly to reclaim worker
    processes between phases of a long session (the next sweep simply
    re-warms).
    """
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)
    return len(pools)


atexit.register(shutdown_pools)


def chunk_size_for(
    num_jobs: int, workers: int, override: int | None = None
) -> int:
    """The dispatch quantum: jobs per pool round trip.

    Auto-sizing targets ~4 chunks per worker — big enough to amortize
    submission and pickle overhead, small enough that uneven job costs
    still balance across the pool — and never goes below 1.  ``override``
    (the CLI's ``--chunk-size``) wins when given.
    """
    if override is not None:
        if override < 1:
            raise ReproError(f"chunk size must be >= 1, got {override}")
        return override
    return max(1, num_jobs // (4 * workers))


def chunked(items: Sequence[T], size: int) -> Iterator[list[T]]:
    """Contiguous slices of ``items``, ``size`` apiece (last may be short).

    Contiguity is deliberate: chunk boundaries then respect canonical
    (input) order, so a completed chunk is a contiguous run of records
    and the reorder buffer drains it in one sweep.
    """
    for start in range(0, len(items), size):
        yield list(items[start : start + size])
