"""Fig. 16: renormalization success rate vs average node size.

The success probability of carving a coarse lattice of a given node size out
of a percolated RSL rises sharply — a sigmoid in the node side — and the
transition point moves left as the fusion success probability grows.  The
"suitable" node size of Fig. 13(a) is where each of these curves saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import check_scale
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

#: (RSL size, node sides, fusion rates, trials) per scale.
SCALE_SETTINGS = {
    "bench": (72, (6, 9, 12, 18, 24, 36), (0.66, 0.72, 0.78), 20),
    "paper": (200, (5, 8, 10, 20, 25, 40, 50), (0.66, 0.69, 0.72, 0.75, 0.78), 50),
}


@dataclass
class Fig16Point:
    fusion_rate: float
    node_side: int
    success_rate: float


def success_rate(
    rsl_size: int,
    node_side: int,
    fusion_rate: float,
    trials: int,
    rng,
) -> float:
    """Monte-Carlo renormalization success rate at one sweep point."""
    target = max(1, rsl_size // node_side)
    hits = sum(
        renormalize(sample_lattice(rsl_size, fusion_rate, rng), target).success
        for _ in range(trials)
    )
    return hits / trials


def run(scale: str = "bench", seed: int = 0) -> tuple[list[Fig16Point], str]:
    check_scale(scale)
    rsl_size, node_sides, rates, trials = SCALE_SETTINGS[scale]
    rng = ensure_rng(seed)
    points = [
        Fig16Point(rate, node, success_rate(rsl_size, node, rate, trials, rng))
        for rate in rates
        for node in node_sides
    ]
    return points, render(points, rsl_size)


def render(points: list[Fig16Point], rsl_size: int) -> str:
    table = TextTable(
        ["Fusion rate", "Node side", "Success rate"],
        title=f"Fig. 16: renormalization success rate ({rsl_size}x{rsl_size} RSL)",
    )
    for point in points:
        table.add_row(point.fusion_rate, point.node_side, f"{point.success_rate:.2f}")
    return table.render()
