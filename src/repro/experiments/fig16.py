"""Fig. 16: renormalization success rate vs average node size.

The success probability of carving a coarse lattice of a given node size out
of a percolated RSL rises sharply — a sigmoid in the node side — and the
transition point moves left as the fusion success probability grows.  The
"suitable" node size of Fig. 13(a) is where each of these curves saturates.

Each sweep point is one Monte-Carlo :class:`FnJob` on its own derived
stream, so the curve is identical on any runner backend.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.api import Experiment, ExperimentRecord, FnJob, Job, register
from repro.experiments.common import stream_for
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.tables import TextTable

#: (RSL size, node sides, fusion rates, trials) per scale.
SCALE_SETTINGS = {
    "bench": (72, (6, 9, 12, 18, 24, 36), (0.66, 0.72, 0.78), 20),
    "paper": (200, (5, 8, 10, 20, 25, 40, 50), (0.66, 0.69, 0.72, 0.75, 0.78), 50),
}


def success_rate(
    rsl_size: int,
    node_side: int,
    fusion_rate: float,
    trials: int,
    rng,
    pathfind: str = "vector",
) -> float:
    """Monte-Carlo renormalization success rate at one sweep point."""
    target = max(1, rsl_size // node_side)
    hits = sum(
        renormalize(
            sample_lattice(rsl_size, fusion_rate, rng), target, pathfind=pathfind
        ).success
        for _ in range(trials)
    )
    return hits / trials


def success_rate_case(
    rsl_size: int,
    node_side: int,
    fusion_rate: float,
    trials: int,
    seed: int,
    pathfind: str = "vector",
) -> dict[str, Any]:
    """One Fig. 16 point, on its own derived stream."""
    rng = stream_for("fig16", seed).child(rsl_size, node_side, fusion_rate).generator
    return {
        "success_rate": success_rate(
            rsl_size, node_side, fusion_rate, trials, rng, pathfind=pathfind
        )
    }


@register
class Fig16Experiment(Experiment):
    name = "fig16"
    description = "renormalization success rate vs node size and fusion rate"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        rsl_size, node_sides, rates, trials = SCALE_SETTINGS[scale]
        return [
            FnJob(
                key=f"p={rate}/node={node}",
                meta={"fusion_rate": rate, "node_side": node, "rsl_size": rsl_size},
                fn=success_rate_case,
                kwargs={
                    "rsl_size": rsl_size,
                    "node_side": node,
                    "fusion_rate": rate,
                    "trials": trials,
                    "seed": seed,
                },
            )
            for rate in rates
            for node in node_sides
        ]

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        rsl_size = records[0].fields["rsl_size"] if records else "?"
        table = TextTable(
            ["Fusion rate", "Node side", "Success rate"],
            title=f"Fig. 16: renormalization success rate ({rsl_size}x{rsl_size} RSL)",
        )
        for record in records:
            table.add_row(
                record.fields["fusion_rate"],
                record.fields["node_side"],
                f"{record.fields['success_rate']:.2f}",
            )
        return table.render()
