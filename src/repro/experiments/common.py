"""Shared experiment scaffolding: scales, benchmark cases, seed streams.

Every experiment runs at one of two scales:

* ``"bench"`` — small parameters for CI / pytest-benchmark (minutes end to
  end).  Trends survive; absolute values shrink.
* ``"paper"`` — the paper's own parameters (Table 1, Figs. 12-16 captions).
  Hours of CPU, as the artifact appendix warns.

EXPERIMENTS.md records which scale produced the checked-in numbers.  The
sweep/averaging helpers that used to live here are gone: sweeps are now job
lists built by :class:`repro.experiments.api.Experiment` subclasses and
averaging happens inside self-seeded jobs, so any runner backend can execute
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import RandomStream

SCALES = ("bench", "paper")


@dataclass(frozen=True)
class BenchmarkCase:
    """One (benchmark family, qubit count) cell of Table 2 / Table 3."""

    family: str
    num_qubits: int

    @property
    def label(self) -> str:
        return f"{self.family.upper()}-{self.num_qubits}"


def check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def stream_for(experiment: str, seed: int | None = None) -> RandomStream:
    """Deterministic per-experiment random stream.

    Monte-Carlo jobs derive per-point child streams from this
    (``stream_for("fig16", seed).child(rate, node)``), which is what makes
    them independent of scheduling order and safe on any runner backend.
    """
    return RandomStream(seed).child("experiments", experiment)
