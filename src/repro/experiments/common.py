"""Shared experiment scaffolding: scaled parameter sets and sweep helpers.

Every experiment module exposes ``run(scale=...)`` returning structured rows
plus a rendered table.  Two scales exist:

* ``"bench"`` — small parameters for CI / pytest-benchmark (minutes end to
  end).  Trends survive; absolute values shrink.
* ``"paper"`` — the paper's own parameters (Table 1, Figs. 12-16 captions).
  Hours of CPU, as the artifact appendix warns.

EXPERIMENTS.md records which scale produced the checked-in numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.rng import RandomStream

SCALES = ("bench", "paper")


@dataclass(frozen=True)
class BenchmarkCase:
    """One (benchmark family, qubit count) cell of Table 2 / Table 3."""

    family: str
    num_qubits: int

    @property
    def label(self) -> str:
        return f"{self.family.upper()}-{self.num_qubits}"


def check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def stream_for(experiment: str, seed: int | None = None) -> RandomStream:
    """Deterministic per-experiment random stream."""
    return RandomStream(seed).child("experiments", experiment)


def average(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def sweep(
    points: list,
    runner: Callable,
    trials: int,
) -> list[tuple[object, float]]:
    """Average ``runner(point, trial)`` over ``trials`` per sweep point."""
    rows = []
    for point in points:
        values = [float(runner(point, trial)) for trial in range(trials)]
        rows.append((point, average(values)))
    return rows
