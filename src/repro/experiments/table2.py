"""Table 2: OnePerc vs OneQ (#RSL and #fusion) across benchmarks and rates.

The paper's headline result: with a repeat-until-success strategy OneQ only
functions for tiny programs at hyper-advanced fusion rates; OnePerc compiles
everything at the practical rate 0.75, with the #RSL advantage growing with
program size.  OnePerc spends *more* fusions than OneQ on 4-qubit programs
(the percolation overhead) and wins on both metrics at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.benchmarks import make_benchmark
from repro.errors import ReproError
from repro.experiments.common import BenchmarkCase, check_scale
from repro.pipeline import Pipeline, PipelineSettings
from repro.utils.tables import TextTable

FAMILIES = ("qaoa", "qft", "rca", "vqe")

#: (fusion rate, qubit counts, #RSL cap, node side) per scale.
SCALE_SETTINGS = {
    "bench": [
        (0.90, (4,), 10**5, 12),
        (0.75, (4, 9), 10**5, 16),
    ],
    "paper": [
        (0.90, (4, 9, 25), 10**6, 12),
        (0.75, (4, 25, 64), 10**6, 24),
    ],
}


@dataclass
class Table2Row:
    fusion_rate: float
    benchmark: str
    oneq_rsl: int
    oneq_capped: bool
    oneperc_rsl: int
    oneq_fusions: int
    oneperc_fusions: int

    @property
    def rsl_improvement(self) -> float:
        return self.oneq_rsl / max(1, self.oneperc_rsl)

    @property
    def fusion_improvement(self) -> float:
        return self.oneq_fusions / max(1, self.oneperc_fusions)


def _pipeline_for(fusion_rate: float, rsl_cap: int, node_side: int, seed: int) -> Pipeline:
    """One pipeline serves every benchmark of a (rate, cap, node side) group;
    the RSL side resolves per circuit from ``node_side``."""
    settings = PipelineSettings(
        fusion_success_rate=fusion_rate,
        resource_state_size=4,  # the main experiment's resource states
        node_side=node_side,
        max_rsl=rsl_cap,
    )
    return Pipeline(settings, seed=seed)


def _row_from(case: BenchmarkCase, fusion_rate: float, result, baseline) -> Table2Row:
    """Assemble one Table 2 row from a compiled (OnePerc, OneQ) pair."""
    return Table2Row(
        fusion_rate=fusion_rate,
        benchmark=case.label,
        oneq_rsl=baseline.rsl_count,
        oneq_capped=baseline.capped,
        oneperc_rsl=result.rsl_count,
        oneq_fusions=baseline.fusion_count,
        oneperc_fusions=result.fusion_count,
    )


def run_case(
    case: BenchmarkCase,
    fusion_rate: float,
    rsl_cap: int,
    node_side: int,
    seed: int = 0,
) -> Table2Row:
    """One Table 2 cell: compile with OnePerc and with the OneQ baseline."""
    circuit = make_benchmark(case.family, case.num_qubits, seed=seed)
    pipeline = _pipeline_for(fusion_rate, rsl_cap, node_side, seed)
    return _row_from(
        case, fusion_rate, pipeline.compile(circuit), pipeline.compile_baseline(circuit)
    )


def run(
    scale: str = "bench", seed: int = 0, max_workers: int | None = None
) -> tuple[list[Table2Row], str]:
    """All Table 2 rows for ``scale``; returns (rows, rendered table).

    Each (rate, cap, node side) group runs as one ``compile_many`` batch —
    optionally across a thread pool — instead of the old hand-rolled
    per-cell loop; results are identical for any ``max_workers``.
    """
    check_scale(scale)
    rows: list[Table2Row] = []
    for fusion_rate, qubit_counts, cap, node_side in SCALE_SETTINGS[scale]:
        cases = [
            BenchmarkCase(family, qubits)
            for qubits in qubit_counts
            for family in FAMILIES
        ]
        circuits = [
            make_benchmark(case.family, case.num_qubits, seed=seed) for case in cases
        ]
        pipeline = _pipeline_for(fusion_rate, cap, node_side, seed)
        try:
            results = pipeline.compile_many(circuits, max_workers=max_workers)
            baselines = pipeline.compile_many(
                circuits, max_workers=max_workers, baseline=True
            )
        except ReproError as exc:
            raise ReproError(f"Table 2 group @{fusion_rate}: {exc}") from exc
        rows.extend(
            _row_from(case, fusion_rate, result, baseline)
            for case, result, baseline in zip(cases, results, baselines)
        )
    return rows, render(rows)


def render(rows: list[Table2Row]) -> str:
    table = TextTable(
        [
            "Rate",
            "Benchmark",
            "OneQ #RSL",
            "OnePerc #RSL",
            "#RSL Improv.",
            "OneQ #Fusion",
            "OnePerc #Fusion",
            "#Fusion Improv.",
        ],
        title="Table 2: OnePerc vs OneQ (repeat-until-success)",
    )
    for row in rows:
        oneq_rsl = f">{row.oneq_rsl:,}" if row.oneq_capped else f"{row.oneq_rsl:,}"
        table.add_row(
            row.fusion_rate,
            row.benchmark,
            oneq_rsl,
            row.oneperc_rsl,
            f"{row.rsl_improvement:,.2f}",
            row.oneq_fusions,
            row.oneperc_fusions,
            f"{row.fusion_improvement:.3g}",
        )
    return table.render()
