"""Table 2: OnePerc vs OneQ (#RSL and #fusion) across benchmarks and rates.

The paper's headline result: with a repeat-until-success strategy OneQ only
functions for tiny programs at hyper-advanced fusion rates; OnePerc compiles
everything at the practical rate 0.75, with the #RSL advantage growing with
program size.  OnePerc spends *more* fusions than OneQ on 4-qubit programs
(the percolation overhead) and wins on both metrics at scale.

Each cell is two :class:`CompileJob`\\ s (OnePerc + the OneQ baseline); one
settings object serves every benchmark of a (rate, cap, node side) group, so
runners batch each group through ``Pipeline.compile_many``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.api import (
    CompileJob,
    Experiment,
    ExperimentRecord,
    Job,
    group_cells,
    register,
)
from repro.experiments.common import BenchmarkCase
from repro.pipeline import PipelineSettings
from repro.utils.tables import TextTable

FAMILIES = ("qaoa", "qft", "rca", "vqe")

#: (fusion rate, qubit counts, #RSL cap, node side) per scale.
SCALE_SETTINGS = {
    "bench": [
        (0.90, (4,), 10**5, 12),
        (0.75, (4, 9), 10**5, 16),
    ],
    "paper": [
        (0.90, (4, 9, 25), 10**6, 12),
        (0.75, (4, 25, 64), 10**6, 24),
    ],
}


def group_settings(fusion_rate: float, rsl_cap: int, node_side: int) -> PipelineSettings:
    """One settings object serves every benchmark of a (rate, cap, node side)
    group; the RSL side resolves per circuit from ``node_side``."""
    return PipelineSettings(
        fusion_success_rate=fusion_rate,
        resource_state_size=4,  # the main experiment's resource states
        node_side=node_side,
        max_rsl=rsl_cap,
    )


def paired_rows(records: Sequence[ExperimentRecord]) -> list[dict[str, Any]]:
    """Zip each cell's (OnePerc, OneQ) records into one comparison row."""
    rows = []
    for row, cell in group_cells(records, ("fusion_rate", "benchmark")):
        for record in cell:
            fields = record.fields
            prefix = fields["compiler"]  # "oneperc" | "oneq"
            row[f"{prefix}_rsl"] = fields["rsl_count"]
            row[f"{prefix}_fusions"] = fields["fusion_count"]
            if prefix == "oneq":
                row["oneq_capped"] = fields["capped"]
        row["rsl_improvement"] = row["oneq_rsl"] / max(1, row["oneperc_rsl"])
        row["fusion_improvement"] = row["oneq_fusions"] / max(1, row["oneperc_fusions"])
        rows.append(row)
    return rows


@register
class Table2Experiment(Experiment):
    name = "table2"
    description = "OnePerc vs OneQ (#RSL and #fusion) across benchmarks and rates"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        jobs: list[Job] = []
        for fusion_rate, qubit_counts, cap, node_side in SCALE_SETTINGS[scale]:
            settings = group_settings(fusion_rate, cap, node_side)
            for qubits in qubit_counts:
                for family in FAMILIES:
                    case = BenchmarkCase(family, qubits)
                    for baseline in (False, True):
                        compiler = "oneq" if baseline else "oneperc"
                        jobs.append(
                            CompileJob(
                                key=f"{fusion_rate}/{case.label}/{compiler}",
                                meta={
                                    "fusion_rate": fusion_rate,
                                    "benchmark": case.label,
                                    "compiler": compiler,
                                },
                                family=family,
                                num_qubits=qubits,
                                settings=settings,
                                seed=seed,
                                baseline=baseline,
                            )
                        )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        table = TextTable(
            [
                "Rate",
                "Benchmark",
                "OneQ #RSL",
                "OnePerc #RSL",
                "#RSL Improv.",
                "OneQ #Fusion",
                "OnePerc #Fusion",
                "#Fusion Improv.",
            ],
            title="Table 2: OnePerc vs OneQ (repeat-until-success)",
        )
        for row in paired_rows(records):
            oneq_rsl = (
                f">{row['oneq_rsl']:,}" if row["oneq_capped"] else f"{row['oneq_rsl']:,}"
            )
            table.add_row(
                row["fusion_rate"],
                row["benchmark"],
                oneq_rsl,
                row["oneperc_rsl"],
                f"{row['rsl_improvement']:,.2f}",
                row["oneq_fusions"],
                row["oneperc_fusions"],
                f"{row['fusion_improvement']:.3g}",
            )
        return table.render()
