"""Experiment harness: one module per table/figure of the paper's Section 7.

Each module exposes ``run(scale="bench"|"paper", seed=...)`` returning
``(structured rows, rendered table)``.  ``examples/reproduce_all.py`` runs
everything and regenerates EXPERIMENTS.md's measured columns.
"""

from repro.experiments import fig12, fig13, fig14, fig15, fig16, loss, table2, table3
from repro.experiments.common import BenchmarkCase, SCALES

__all__ = [
    "table2",
    "table3",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "loss",
    "BenchmarkCase",
    "SCALES",
]
