"""Experiment harness: one registered experiment per table/figure of
Section 7.

Each module defines an :class:`~repro.experiments.api.Experiment` subclass
and registers it in :data:`~repro.experiments.api.EXPERIMENT_REGISTRY` at
import time (importing this package completes the registry).  Run one with::

    from repro.experiments import run_experiment
    result = run_experiment("fig14", scale="bench", runner="process")
    print(result.text)            # the rendered table
    result.to_json_obj()          # structured records

or from the CLI: ``python -m repro.cli experiment --name fig14 --json``.
``examples/reproduce_all.py`` runs everything and regenerates
EXPERIMENTS.md's measured sections.
"""

# Import order is registration order is presentation order (Table 2 first).
from repro.experiments import table2, table3  # noqa: I001
from repro.experiments import fig12, fig13, fig14, fig15, fig16, loss
from repro.experiments import passes_ablation
from repro.experiments.api import (
    EXPERIMENT_REGISTRY,
    CompileJob,
    Experiment,
    ExperimentRecord,
    ExperimentResult,
    FnJob,
    Job,
    UnknownExperimentError,
    canonical_json,
    experiment_names,
    get_experiment,
    group_cells,
    override_pathfind,
    override_rewrite,
    register,
    run_experiment,
)
from repro.experiments.common import SCALES, BenchmarkCase
from repro.experiments.pool import (
    chunk_size_for,
    get_pool,
    shutdown_pools,
)
from repro.experiments.runners import (
    RUNNERS,
    ChunkTask,
    ProcessRunner,
    Runner,
    SerialRunner,
    ShardedRunner,
    ShardOutcome,
    ShardTask,
    ThreadRunner,
    make_runner,
    run_chunk,
    run_shard,
    shard_for,
)
from repro.experiments.streams import (
    CsvStreamWriter,
    JsonlStreamWriter,
    make_stream_writer,
)

__all__ = [
    "BenchmarkCase",
    "ChunkTask",
    "CompileJob",
    "CsvStreamWriter",
    "EXPERIMENT_REGISTRY",
    "Experiment",
    "ExperimentRecord",
    "ExperimentResult",
    "FnJob",
    "Job",
    "JsonlStreamWriter",
    "ProcessRunner",
    "RUNNERS",
    "Runner",
    "SCALES",
    "SerialRunner",
    "ShardOutcome",
    "ShardTask",
    "ShardedRunner",
    "ThreadRunner",
    "UnknownExperimentError",
    "canonical_json",
    "override_pathfind",
    "override_rewrite",
    "passes_ablation",
    "chunk_size_for",
    "experiment_names",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "get_experiment",
    "get_pool",
    "group_cells",
    "loss",
    "make_runner",
    "make_stream_writer",
    "register",
    "run_chunk",
    "run_experiment",
    "run_shard",
    "shard_for",
    "shutdown_pools",
    "table2",
    "table3",
]
