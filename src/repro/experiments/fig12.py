"""Fig. 12: sensitivity of #RSL to resource state size, RSL size, fusion rate.

Three sweeps over the same compiled benchmarks:

* (a) larger resource states bring more native degree (less merging), so
  #RSL falls as the star size grows from 4 to 7;
* (b) a larger RSL gives the renormalization more raw material, so #RSL
  falls as the hardware grows;
* (c) a higher fusion success probability yields larger renormalized
  lattices, so #RSL falls as the rate rises from 0.66 to 0.78.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.benchmarks import make_benchmark
from repro.compiler.driver import OnePercCompiler
from repro.experiments.common import check_scale
from repro.utils.tables import TextTable

#: (families, qubits, virtual size) per scale.
SCALE_PROGRAM = {
    "bench": (("qaoa", "vqe"), 4, 2),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, 6),
}

#: Sweep points per scale: (resource sizes, RSL sizes, fusion rates,
#: baseline RSL size (a), RSL size for the rate sweep (c), baseline rate).
#: The bench RSL sizes sit in the regime where the renormalized node size
#: actually constrains success, so the trends are visible at small scale.
SCALE_SWEEPS = {
    "bench": ((4, 5, 6, 7), (28, 36, 48, 60), (0.66, 0.70, 0.75, 0.78), 48, 40, 0.75),
    "paper": (
        (4, 5, 6, 7),
        (42, 60, 84, 108, 120),
        (0.66, 0.69, 0.72, 0.75, 0.78),
        84,
        84,
        0.75,
    ),
}


@dataclass
class SweepPoint:
    panel: str  # "a" | "b" | "c"
    x: float
    benchmark: str
    rsl_count: int


def _compile_rsl(
    family: str,
    qubits: int,
    virtual: int,
    resource_size: int,
    rsl_size: int,
    rate: float,
    seed: int,
    max_rsl: int = 10**5,
) -> int:
    compiler = OnePercCompiler(
        fusion_success_rate=rate,
        resource_state_size=resource_size,
        rsl_size=rsl_size,
        virtual_size=virtual,
        seed=seed,
        max_rsl=max_rsl,
    )
    return compiler.compile(make_benchmark(family, qubits, seed=seed)).rsl_count


def run(scale: str = "bench", seed: int = 0) -> tuple[list[SweepPoint], str]:
    check_scale(scale)
    families, qubits, virtual = SCALE_PROGRAM[scale]
    resource_sizes, rsl_sizes, rates, rsl_a, rsl_c, base_rate = SCALE_SWEEPS[scale]
    points: list[SweepPoint] = []
    for family in families:
        label = f"{family.upper()}{qubits}"
        for size in resource_sizes:  # panel (a): hardware fixed, stars vary
            points.append(
                SweepPoint(
                    "a",
                    size,
                    label,
                    _compile_rsl(family, qubits, virtual, size, rsl_a, base_rate, seed),
                )
            )
        for rsl in rsl_sizes:  # panel (b): 7-qubit stars, RSL varies
            # A larger RSL renormalizes to a larger lattice, so the virtual
            # hardware grows with it (Section 7.3): that extra routing space
            # is what cuts #RSL.
            virtual_b = max(virtual, rsl // 14)
            points.append(
                SweepPoint(
                    "b",
                    rsl,
                    label,
                    _compile_rsl(family, qubits, virtual_b, 7, rsl, base_rate, seed),
                )
            )
        for rate in rates:  # panel (c): 7-qubit stars, rate varies
            points.append(
                SweepPoint(
                    "c",
                    rate,
                    label,
                    _compile_rsl(family, qubits, virtual, 7, rsl_c, rate, seed),
                )
            )
    return points, render(points)


def render(points: list[SweepPoint]) -> str:
    table = TextTable(
        ["Panel", "X", "Benchmark", "#RSL"],
        title="Fig. 12: #RSL vs resource state size (a), RSL size (b), fusion rate (c)",
    )
    for point in points:
        table.add_row(point.panel, point.x, point.benchmark, point.rsl_count)
    return table.render()
