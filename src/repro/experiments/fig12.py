"""Fig. 12: sensitivity of #RSL to resource state size, RSL size, fusion rate.

Three sweeps over the same compiled benchmarks:

* (a) larger resource states bring more native degree (less merging), so
  #RSL falls as the star size grows from 4 to 7;
* (b) a larger RSL gives the renormalization more raw material, so #RSL
  falls as the hardware grows;
* (c) a higher fusion success probability yields larger renormalized
  lattices, so #RSL falls as the rate rises from 0.66 to 0.78.

Every sweep point is one :class:`CompileJob`; points sharing a settings
object (the families at each x) batch through ``Pipeline.compile_many``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.api import (
    CompileJob,
    Experiment,
    ExperimentRecord,
    Job,
    register,
)
from repro.pipeline import PipelineSettings
from repro.utils.tables import TextTable

#: (families, qubits, virtual size) per scale.
SCALE_PROGRAM = {
    "bench": (("qaoa", "vqe"), 4, 2),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, 6),
}

#: Sweep points per scale: (resource sizes, RSL sizes, fusion rates,
#: baseline RSL size (a), RSL size for the rate sweep (c), baseline rate).
#: The bench RSL sizes sit in the regime where the renormalized node size
#: actually constrains success, so the trends are visible at small scale.
SCALE_SWEEPS = {
    "bench": ((4, 5, 6, 7), (28, 36, 48, 60), (0.66, 0.70, 0.75, 0.78), 48, 40, 0.75),
    "paper": (
        (4, 5, 6, 7),
        (42, 60, 84, 108, 120),
        (0.66, 0.69, 0.72, 0.75, 0.78),
        84,
        84,
        0.75,
    ),
}

MAX_RSL = 10**5


def point_settings(
    resource_size: int, rsl_size: int, rate: float, virtual: int
) -> PipelineSettings:
    """The pipeline configuration for one sweep point."""
    return PipelineSettings(
        fusion_success_rate=rate,
        resource_state_size=resource_size,
        rsl_size=rsl_size,
        virtual_size=virtual,
        max_rsl=MAX_RSL,
    )


@register
class Fig12Experiment(Experiment):
    name = "fig12"
    description = "#RSL vs resource state size (a), RSL size (b), fusion rate (c)"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        families, qubits, virtual = SCALE_PROGRAM[scale]
        resource_sizes, rsl_sizes, rates, rsl_a, rsl_c, base_rate = SCALE_SWEEPS[scale]
        jobs: list[Job] = []

        def add(panel: str, x: float, family: str, settings: PipelineSettings) -> None:
            jobs.append(
                CompileJob(
                    key=f"{panel}/{family}{qubits}/x={x}",
                    meta={"panel": panel, "x": x, "benchmark": f"{family.upper()}{qubits}"},
                    family=family,
                    num_qubits=qubits,
                    settings=settings,
                    seed=seed,
                )
            )

        for family in families:
            for size in resource_sizes:  # panel (a): hardware fixed, stars vary
                add("a", size, family, point_settings(size, rsl_a, base_rate, virtual))
            for rsl in rsl_sizes:  # panel (b): 7-qubit stars, RSL varies
                # A larger RSL renormalizes to a larger lattice, so the
                # virtual hardware grows with it (Section 7.3): that extra
                # routing space is what cuts #RSL.
                virtual_b = max(virtual, rsl // 14)
                add("b", rsl, family, point_settings(7, rsl, base_rate, virtual_b))
            for rate in rates:  # panel (c): 7-qubit stars, rate varies
                add("c", rate, family, point_settings(7, rsl_c, rate, virtual))
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        table = TextTable(
            ["Panel", "X", "Benchmark", "#RSL"],
            title="Fig. 12: #RSL vs resource state size (a), RSL size (b), fusion rate (c)",
        )
        for record in records:
            fields = record.fields
            table.add_row(
                fields["panel"], fields["x"], fields["benchmark"], fields["rsl_count"]
            )
        return table.render()
