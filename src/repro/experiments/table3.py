"""Table 3: the refresh mechanism's memory/#RSL trade (32 GB budget).

Without refresh, the classical memory that tracks stored wires grows with
how long entries wait; a 32 GB budget admits 25-qubit programs but not 64- or
100-qubit ones ('-' rows).  Refreshing every 50 logical layers bounds the
wait and unlocks 100 qubits at a ~10-20 % #RSL overhead.

#RSL here is estimated from the logical layer count via the stable PL ratio
(Fig. 13(b)) — exactly how the artifact's refresh.ipynb computes it, since
running the online pass at the 100-qubit scale is unnecessary for a memory
experiment.  Each cell is two :class:`FnJob`\\ s (budgeted non-refreshed +
refreshed) over a pipeline ablated to ``TranslatePass -> OfflineMapPass``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.circuits.benchmarks import make_benchmark
from repro.errors import MemoryBudgetExceeded
from repro.experiments.api import (
    Experiment,
    ExperimentRecord,
    FnJob,
    Job,
    group_cells,
    register,
)
from repro.pipeline import (
    OfflineMapPass,
    Pipeline,
    PipelineSettings,
    TranslatePass,
    virtual_size_for,
)
from repro.utils.tables import TextTable

FAMILIES = ("qaoa", "qft", "rca", "vqe")

#: The paper's refresh period, in logical layers.
REFRESH_EVERY = 50

#: Assumed RSLs per logical layer when estimating #RSL (Fig. 13(b) plateau).
PL_RATIO = 3.0

#: Our calibrated unit: bytes accounted per stored node per waited layer
#: (see DESIGN.md's substitution table).
BYTES_PER_NODE_LAYER = 2**20  # 1 MiB

#: The enforced budget, per scale.  At bench scale 1.25 GiB plays the role
#: of the paper's 32 GB: it admits every 9- and 16-qubit mapping without
#: refresh and rejects every 25-qubit one.
SCALE_BUDGET = {"bench": int(1.25 * 2**30), "paper": 32 * 2**30}

SCALE_QUBITS = {
    "bench": (9, 16, 25),
    "paper": (25, 64, 100),
}

#: Refresh periods scale with program size at bench scale so the mechanism
#: triggers often enough on the smaller mappings.
SCALE_REFRESH = {"bench": 10, "paper": REFRESH_EVERY}


def map_case(
    family: str,
    qubits: int,
    refresh_every: int | None,
    budget: int | None,
    seed: int,
) -> dict[str, Any]:
    """Fields for one mapping configuration (one Table 3 half-cell).

    A memory experiment needs no online pass, so the pipeline is ablated to
    the first two stages — exactly the kind of stage surgery the pass
    architecture exists for.  A budget overrun is a *result* here (the
    paper's '-' entries), not a failure.
    """
    circuit = make_benchmark(family, qubits, seed=seed)
    settings = PipelineSettings(
        virtual_size=virtual_size_for(qubits),
        refresh_every=refresh_every,
        memory_budget_bytes=budget,
        bytes_per_node_layer=BYTES_PER_NODE_LAYER,
    )
    pipeline = Pipeline(settings, passes=(TranslatePass(), OfflineMapPass()))
    try:
        ctx = pipeline.run_circuit(circuit, seed=seed)
    except MemoryBudgetExceeded:
        return {
            "budget_exceeded": True,
            "logical_layers": None,
            "peak_memory_bytes": None,
            "rsl_estimate": None,
        }
    result = ctx.require("mapping")
    return {
        "budget_exceeded": False,
        "logical_layers": int(result.layer_count),
        "peak_memory_bytes": int(result.peak_memory_bytes),
        "rsl_estimate": int(result.layer_count * PL_RATIO),
    }


def paired_rows(records: Sequence[ExperimentRecord]) -> list[dict[str, Any]]:
    """Zip each cell's (non-refreshed, refreshed) records into one row."""
    rows = []
    for row, cell in group_cells(records, ("benchmark", "num_qubits")):
        for record in cell:
            fields = record.fields
            prefix = "refreshed" if fields["refreshed"] else "non_refreshed"
            row[f"{prefix}_rsl"] = fields["rsl_estimate"]
            row[f"{prefix}_peak_bytes"] = fields["peak_memory_bytes"]
        row["overhead"] = (
            None
            if row["non_refreshed_rsl"] is None
            else row["refreshed_rsl"] / row["non_refreshed_rsl"] - 1.0
        )
        rows.append(row)
    return rows


@register
class Table3Experiment(Experiment):
    name = "table3"
    description = "refresh mechanism's memory/#RSL trade under a RAM budget"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        refresh_every = SCALE_REFRESH[scale]
        budget = SCALE_BUDGET[scale]
        jobs: list[Job] = []
        for family in FAMILIES:
            for qubits in SCALE_QUBITS[scale]:
                benchmark = family.upper()
                for refreshed in (False, True):
                    # The budget is enforced on the non-refreshed run
                    # (producing the paper's '-' rows); the refreshed run
                    # reports its peak so the reduction is visible even
                    # where it lands near the budget.
                    jobs.append(
                        FnJob(
                            key=f"{family}{qubits}/{'refreshed' if refreshed else 'raw'}",
                            meta={
                                "benchmark": benchmark,
                                "num_qubits": qubits,
                                "refreshed": refreshed,
                                "refresh_every": refresh_every if refreshed else None,
                            },
                            fn=map_case,
                            kwargs={
                                "family": family,
                                "qubits": qubits,
                                "refresh_every": refresh_every if refreshed else None,
                                "budget": None if refreshed else budget,
                                "seed": seed,
                            },
                        )
                    )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        refresh_every = next(
            (
                record.fields["refresh_every"]
                for record in records
                if record.fields.get("refresh_every") is not None
            ),
            REFRESH_EVERY,
        )
        table = TextTable(
            [
                "Benchmark",
                "#Qubits",
                "Non-refreshed #RSL",
                "Refreshed #RSL",
                "Overhead",
                "Peak RAM (no refresh)",
                "Peak RAM (refresh)",
            ],
            title=(
                f"Table 3: refresh every {refresh_every} layers "
                "(budget enforced on the non-refreshed runs)"
            ),
        )
        for row in paired_rows(records):
            table.add_row(
                row["benchmark"],
                row["num_qubits"],
                "-"
                if row["non_refreshed_rsl"] is None
                else f"{row['non_refreshed_rsl']:,}",
                row["refreshed_rsl"],
                "-" if row["overhead"] is None else f"{row['overhead']:+.1%}",
                "-"
                if row["non_refreshed_peak_bytes"] is None
                else f"{row['non_refreshed_peak_bytes'] / 2**30:.1f} GiB",
                f"{row['refreshed_peak_bytes'] / 2**30:.1f} GiB",
            )
        return table.render()
