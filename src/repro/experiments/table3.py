"""Table 3: the refresh mechanism's memory/#RSL trade (32 GB budget).

Without refresh, the classical memory that tracks stored wires grows with
how long entries wait; a 32 GB budget admits 25-qubit programs but not 64- or
100-qubit ones ('-' rows).  Refreshing every 50 logical layers bounds the
wait and unlocks 100 qubits at a ~10-20 % #RSL overhead.

#RSL here is estimated from the logical layer count via the stable PL ratio
(Fig. 13(b)) — exactly how the artifact's refresh.ipynb computes it, since
running the online pass at the 100-qubit scale is unnecessary for a memory
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.benchmarks import make_benchmark
from repro.errors import MemoryBudgetExceeded
from repro.experiments.common import check_scale
from repro.pipeline import (
    OfflineMapPass,
    Pipeline,
    PipelineSettings,
    TranslatePass,
    virtual_size_for,
)
from repro.utils.tables import TextTable

FAMILIES = ("qaoa", "qft", "rca", "vqe")

#: The paper's refresh period, in logical layers.
REFRESH_EVERY = 50

#: Assumed RSLs per logical layer when estimating #RSL (Fig. 13(b) plateau).
PL_RATIO = 3.0

#: Our calibrated unit: bytes accounted per stored node per waited layer
#: (see DESIGN.md's substitution table).
BYTES_PER_NODE_LAYER = 2**20  # 1 MiB

#: The enforced budget, per scale.  At bench scale 1.25 GiB plays the role
#: of the paper's 32 GB: it admits every 9- and 16-qubit mapping without
#: refresh and rejects every 25-qubit one.
SCALE_BUDGET = {"bench": int(1.25 * 2**30), "paper": 32 * 2**30}

SCALE_QUBITS = {
    "bench": (9, 16, 25),
    "paper": (25, 64, 100),
}

#: Refresh periods scale with program size at bench scale so the mechanism
#: triggers often enough on the smaller mappings.
SCALE_REFRESH = {"bench": 10, "paper": REFRESH_EVERY}


@dataclass
class Table3Row:
    benchmark: str
    num_qubits: int
    non_refreshed_rsl: int | None  # None == '-' (exceeds the budget)
    refreshed_rsl: int
    non_refreshed_peak_bytes: int | None
    refreshed_peak_bytes: int

    @property
    def overhead(self) -> float | None:
        if self.non_refreshed_rsl is None:
            return None
        return self.refreshed_rsl / self.non_refreshed_rsl - 1.0


def _map_layers(
    family: str,
    qubits: int,
    refresh_every: int | None,
    budget: int | None,
    seed: int,
) -> tuple[int, int]:
    """(logical layers, peak memory bytes) for one mapping configuration.

    A memory experiment needs no online pass, so the pipeline is ablated to
    the first two stages — exactly the kind of stage surgery the pass
    architecture exists for.
    """
    circuit = make_benchmark(family, qubits, seed=seed)
    settings = PipelineSettings(
        virtual_size=virtual_size_for(qubits),
        refresh_every=refresh_every,
        memory_budget_bytes=budget,
        bytes_per_node_layer=BYTES_PER_NODE_LAYER,
    )
    pipeline = Pipeline(settings, passes=(TranslatePass(), OfflineMapPass()))
    ctx = pipeline.run_circuit(circuit, seed=seed)
    result = ctx.require("mapping")
    return result.layer_count, result.peak_memory_bytes


def run_case(
    family: str,
    qubits: int,
    refresh_every: int,
    seed: int = 0,
    budget: int | None = None,
) -> Table3Row:
    """One Table 3 row: non-refreshed (budgeted) vs refreshed mapping.

    The budget is enforced on the non-refreshed run (producing the paper's
    '-' rows); the refreshed run reports its peak so the reduction is
    visible even where it lands near the budget.
    """
    if budget is None:
        budget = SCALE_BUDGET["bench"]
    try:
        layers, peak = _map_layers(family, qubits, None, budget, seed)
        non_refreshed = (int(layers * PL_RATIO), peak)
    except MemoryBudgetExceeded:
        non_refreshed = None
    refreshed_layers, refreshed_peak = _map_layers(
        family, qubits, refresh_every, None, seed
    )
    return Table3Row(
        benchmark=family.upper(),
        num_qubits=qubits,
        non_refreshed_rsl=None if non_refreshed is None else non_refreshed[0],
        refreshed_rsl=int(refreshed_layers * PL_RATIO),
        non_refreshed_peak_bytes=None if non_refreshed is None else non_refreshed[1],
        refreshed_peak_bytes=refreshed_peak,
    )


def run(scale: str = "bench", seed: int = 0) -> tuple[list[Table3Row], str]:
    check_scale(scale)
    refresh_every = SCALE_REFRESH[scale]
    budget = SCALE_BUDGET[scale]
    rows = [
        run_case(family, qubits, refresh_every, seed=seed, budget=budget)
        for family in FAMILIES
        for qubits in SCALE_QUBITS[scale]
    ]
    return rows, render(rows, refresh_every)


def render(rows: list[Table3Row], refresh_every: int) -> str:
    table = TextTable(
        [
            "Benchmark",
            "#Qubits",
            "Non-refreshed #RSL",
            "Refreshed #RSL",
            "Overhead",
            "Peak RAM (no refresh)",
            "Peak RAM (refresh)",
        ],
        title=(
            f"Table 3: refresh every {refresh_every} layers "
            "(budget enforced on the non-refreshed runs)"
        ),
    )
    for row in rows:
        table.add_row(
            row.benchmark,
            row.num_qubits,
            "-" if row.non_refreshed_rsl is None else f"{row.non_refreshed_rsl:,}",
            row.refreshed_rsl,
            "-" if row.overhead is None else f"{row.overhead:+.1%}",
            "-"
            if row.non_refreshed_peak_bytes is None
            else f"{row.non_refreshed_peak_bytes / 2**30:.1f} GiB",
            f"{row.refreshed_peak_bytes / 2**30:.1f} GiB",
        )
    return table.render()
