"""Photon-loss sensitivity (extension of Section 5.2's loss discussion).

The paper notes the reshaping process tolerates photon loss: a fusion only
heralds success when *both* photons arrive, so loss at rate ``l`` just scales
the effective fusion success probability by ``(1 - l)^2``, "possibly leading
to more routing layers between logical layers".  This experiment quantifies
that: #RSL as a function of the loss rate, down to where the effective rate
crosses the viability region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.benchmarks import make_benchmark
from repro.compiler.driver import OnePercCompiler
from repro.experiments.common import check_scale
from repro.hardware.architecture import HardwareConfig
from repro.utils.tables import TextTable

#: (families, qubits, virtual size, RSL size, loss rates) per scale.
SCALE_SETTINGS = {
    "bench": (("qaoa", "vqe"), 4, 2, 44, (0.0, 0.01, 0.02, 0.04)),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, 6, 132, (0.0, 0.01, 0.02, 0.04, 0.06)),
}


@dataclass
class LossPoint:
    benchmark: str
    loss_rate: float
    effective_rate: float
    rsl_count: int
    pl_ratio: float


def run(scale: str = "bench", seed: int = 0) -> tuple[list[LossPoint], str]:
    check_scale(scale)
    families, qubits, virtual, rsl_size, loss_rates = SCALE_SETTINGS[scale]
    points: list[LossPoint] = []
    for family in families:
        circuit = make_benchmark(family, qubits, seed=seed)
        for loss in loss_rates:
            compiler = OnePercCompiler(
                fusion_success_rate=0.78,
                resource_state_size=7,
                rsl_size=rsl_size,
                virtual_size=virtual,
                photon_loss_rate=loss,
                seed=seed,
                max_rsl=10**5,
            )
            config, _ = compiler.hardware_for(qubits)
            result = compiler.compile(circuit)
            points.append(
                LossPoint(
                    benchmark=f"{family.upper()}{qubits}",
                    loss_rate=loss,
                    effective_rate=config.effective_fusion_rate,
                    rsl_count=result.rsl_count,
                    pl_ratio=result.pl_ratio,
                )
            )
    return points, render(points)


def render(points: list[LossPoint]) -> str:
    table = TextTable(
        ["Benchmark", "Loss rate", "Effective fusion rate", "#RSL", "PL ratio"],
        title="Photon-loss sensitivity (loss scales the fusion rate by (1-l)^2)",
    )
    for point in points:
        table.add_row(
            point.benchmark,
            point.loss_rate,
            f"{point.effective_rate:.3f}",
            point.rsl_count,
            f"{point.pl_ratio:.2f}",
        )
    return table.render()


def effective_rate(loss: float, fusion_rate: float = 0.78) -> float:
    """Convenience: the (1 - l)^2-scaled rate (used by tests)."""
    return HardwareConfig(
        fusion_success_rate=fusion_rate, photon_loss_rate=loss
    ).effective_fusion_rate
