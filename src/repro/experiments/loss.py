"""Photon-loss sensitivity (extension of Section 5.2's loss discussion).

The paper notes the reshaping process tolerates photon loss: a fusion only
heralds success when *both* photons arrive, so loss at rate ``l`` just scales
the effective fusion success probability by ``(1 - l)^2``, "possibly leading
to more routing layers between logical layers".  This experiment quantifies
that: #RSL as a function of the loss rate, down to where the effective rate
crosses the viability region.

Every point is a :class:`CompileJob`; points sharing a loss rate share a
settings object, so each loss level runs as one ``compile_many`` batch.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.api import (
    CompileJob,
    Experiment,
    ExperimentRecord,
    Job,
    register,
)
from repro.hardware.architecture import HardwareConfig
from repro.pipeline import PipelineSettings
from repro.utils.tables import TextTable

#: (families, qubits, virtual size, RSL size, loss rates) per scale.
SCALE_SETTINGS = {
    "bench": (("qaoa", "vqe"), 4, 2, 44, (0.0, 0.01, 0.02, 0.04)),
    "paper": (("qaoa", "qft", "vqe", "rca"), 36, 6, 132, (0.0, 0.01, 0.02, 0.04, 0.06)),
}

FUSION_RATE = 0.78


def effective_rate(loss: float, fusion_rate: float = FUSION_RATE) -> float:
    """Convenience: the (1 - l)^2-scaled rate (used by tests and records)."""
    return HardwareConfig(
        fusion_success_rate=fusion_rate, photon_loss_rate=loss
    ).effective_fusion_rate


@register
class LossExperiment(Experiment):
    name = "loss"
    description = "photon-loss sensitivity: #RSL vs loss rate (extension)"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        families, qubits, virtual, rsl_size, loss_rates = SCALE_SETTINGS[scale]
        jobs: list[Job] = []
        # Family-outer keeps each benchmark's loss curve contiguous in the
        # rendered table; equal settings objects still hash together, so the
        # runner batches one compile_many group per loss rate regardless.
        for family in families:
            for loss_rate in loss_rates:
                settings = PipelineSettings(
                    fusion_success_rate=FUSION_RATE,
                    resource_state_size=7,
                    rsl_size=rsl_size,
                    virtual_size=virtual,
                    photon_loss_rate=loss_rate,
                    max_rsl=10**5,
                )
                jobs.append(
                    CompileJob(
                        key=f"{family}{qubits}/loss={loss_rate}",
                        meta={
                            "benchmark": f"{family.upper()}{qubits}",
                            "loss_rate": loss_rate,
                            "effective_rate": effective_rate(loss_rate),
                        },
                        family=family,
                        num_qubits=qubits,
                        settings=settings,
                        seed=seed,
                    )
                )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        table = TextTable(
            ["Benchmark", "Loss rate", "Effective fusion rate", "#RSL", "PL ratio"],
            title="Photon-loss sensitivity (loss scales the fusion rate by (1-l)^2)",
        )
        for record in records:
            fields = record.fields
            table.add_row(
                fields["benchmark"],
                fields["loss_rate"],
                f"{fields['effective_rate']:.3f}",
                fields["rsl_count"],
                f"{fields['pl_ratio']:.2f}",
            )
        return table.render()
