"""Fig. 14: online processing time per RSL.

* (a) seconds-per-RSL is flat in the *program* size (the online pass is
  program-agnostic: its work depends on the RSL, not on what runs on it);
* (b) seconds-per-RSL grows with the RSL size and is cut substantially by
  modular renormalization (4/9/16 modules).

We report wall-clock seconds like the paper (compiler implemented in
Python both here and there), plus the deterministic visited-sites proxy so
the trend is machine-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuits.benchmarks import make_benchmark
from repro.compiler.driver import OnePercCompiler
from repro.experiments.common import check_scale
from repro.online.modular import modular_renormalize
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.utils.rng import ensure_rng
from repro.utils.tables import TextTable

SCALE_14A = {
    "bench": (("qaoa", "vqe"), (4, 9), 36, 0.75),
    "paper": (("qaoa", "qft", "vqe", "rca"), (4, 9, 16, 25, 36), 96, 0.75),
}
SCALE_14B = {
    "bench": ((48, 72, 96), 12, (1, 4, 9, 16), 7.0, 0.75, 5),
    "paper": ((96, 144, 192, 240), 24, (1, 4, 9, 16), 7.0, 0.75, 10),
}


@dataclass
class Fig14Result:
    per_program: list[tuple[str, float]] = field(default_factory=list)
    # (program label, seconds per RSL)
    per_rsl_size: list[tuple[int, int, float, float]] = field(default_factory=list)
    # (RSL size, modules, seconds per attempt, visited sites per attempt)


def run(scale: str = "bench", seed: int = 0) -> tuple[Fig14Result, str]:
    check_scale(scale)
    result = Fig14Result()

    families, qubit_counts, rsl_size, rate = SCALE_14A[scale]
    for family in families:
        for qubits in qubit_counts:
            compiler = OnePercCompiler(
                fusion_success_rate=rate,
                resource_state_size=7,
                rsl_size=rsl_size,
                virtual_size=2,
                seed=seed,
                max_rsl=10**5,
            )
            compiled = compiler.compile(make_benchmark(family, qubits, seed=seed))
            result.per_program.append(
                (f"{family.upper()}{qubits}", compiled.online_seconds_per_rsl)
            )

    rng = ensure_rng(seed)
    rsl_sizes, node, module_counts, mi_ratio, rate_b, trials = SCALE_14B[scale]
    for rsl in rsl_sizes:
        for modules in module_counts:
            seconds = 0.0
            wall_visited = 0.0
            total_visited = 0.0
            for _ in range(trials):
                lattice = sample_lattice(rsl, rate_b, rng)
                start = time.perf_counter()
                if modules == 1:
                    outcome = renormalize(lattice, max(1, rsl // node))
                    wall_visited += outcome.visited_sites
                    total_visited += outcome.visited_sites
                else:
                    outcome = modular_renormalize(lattice, node, modules, mi_ratio)
                    # Modules renormalize concurrently on hardware; our
                    # process runs them serially, so the concurrent
                    # wall-clock is estimated from the work split.
                    wall_visited += outcome.wall_visited_sites
                    total_visited += outcome.total_visited_sites
                seconds += time.perf_counter() - start
            serial_seconds = seconds / trials
            concurrency = wall_visited / total_visited if total_visited else 1.0
            result.per_rsl_size.append(
                (rsl, modules, serial_seconds * concurrency, wall_visited / trials)
            )
    return result, render(result)


def render(result: Fig14Result) -> str:
    parts = []
    table_a = TextTable(
        ["Program", "Seconds per RSL"],
        title="Fig. 14(a): online time per RSL vs program size",
    )
    for label, seconds in result.per_program:
        table_a.add_row(label, f"{seconds:.4f}")
    parts.append(table_a.render())

    table_b = TextTable(
        ["RSL size", "Modules", "Concurrent seconds", "Visited sites (wall)"],
        title="Fig. 14(b): online time per RSL vs RSL size and modularity",
    )
    for rsl, modules, seconds, visited in result.per_rsl_size:
        table_b.add_row(rsl, modules, f"{seconds:.4f}", f"{visited:,.0f}")
    parts.append(table_b.render())
    return "\n\n".join(parts)
