"""Fig. 14: online processing time per RSL.

* (a) seconds-per-RSL is flat in the *program* size (the online pass is
  program-agnostic: its work depends on the RSL, not on what runs on it);
* (b) seconds-per-RSL grows with the RSL size and is cut substantially by
  modular renormalization (4/9/16 modules).

We report wall-clock seconds like the paper (compiler implemented in
Python both here and there), plus the deterministic visited-sites proxy so
the trend is machine-independent.  Wall-clock values live in the records'
``timings`` (excluded from determinism comparisons); the visited-sites
proxy and the concurrency factor are deterministic fields.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.experiments.api import (
    CompileJob,
    Experiment,
    ExperimentRecord,
    FnJob,
    Job,
    register,
)
from repro.experiments.common import stream_for
from repro.online.modular import modular_renormalize
from repro.online.percolation import sample_lattice
from repro.online.renormalize import renormalize
from repro.pipeline import PipelineSettings
from repro.utils.tables import TextTable

SCALE_14A = {
    "bench": (("qaoa", "vqe"), (4, 9), 36, 0.75),
    "paper": (("qaoa", "qft", "vqe", "rca"), (4, 9, 16, 25, 36), 96, 0.75),
}
SCALE_14B = {
    "bench": ((48, 72, 96), 12, (1, 4, 9, 16), 7.0, 0.75, 5),
    "paper": ((96, 144, 192, 240), 24, (1, 4, 9, 16), 7.0, 0.75, 10),
}


def online_attempts(
    rsl: int,
    node: int,
    modules: int,
    mi_ratio: float,
    rate: float,
    trials: int,
    seed: int,
    pathfind: str = "vector",
) -> tuple[dict[str, Any], dict[str, float]]:
    """One Fig. 14(b) point: timed renormalization attempts on fresh RSLs.

    Returns deterministic fields (visited-sites proxy, concurrency factor)
    plus a wall-clock timing.  Modules renormalize concurrently on hardware;
    our process runs them serially, so the concurrent wall-clock is
    estimated from the work split.
    """
    rng = stream_for("fig14", seed).child("b", rsl, modules).generator
    seconds = 0.0
    wall_visited = 0.0
    total_visited = 0.0
    for _ in range(trials):
        lattice = sample_lattice(rsl, rate, rng)
        start = time.perf_counter()
        if modules == 1:
            outcome = renormalize(lattice, max(1, rsl // node), pathfind=pathfind)
            wall_visited += outcome.visited_sites
            total_visited += outcome.visited_sites
        else:
            outcome = modular_renormalize(
                lattice, node, modules, mi_ratio, pathfind=pathfind
            )
            wall_visited += outcome.wall_visited_sites
            total_visited += outcome.total_visited_sites
        seconds += time.perf_counter() - start
    concurrency = wall_visited / total_visited if total_visited else 1.0
    fields = {
        "visited_per_attempt": wall_visited / trials,
        "concurrency": concurrency,
    }
    timings = {"concurrent_seconds": seconds / trials * concurrency}
    return fields, timings


def seconds_per_rsl(record: ExperimentRecord) -> float:
    """Fig. 14(a)'s metric, from a compile record's online-pass timer.

    A missing ``online-reshape`` timer is a schema drift (renamed pass,
    ablated chain) and raises rather than reading as a 0-second measurement.
    """
    rsl_count = record.fields["rsl_count"]
    if not rsl_count:
        return float("nan")
    return record.timings["online-reshape"] / rsl_count


@register
class Fig14Experiment(Experiment):
    name = "fig14"
    description = "online seconds per RSL vs program size and RSL size/modularity"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        jobs: list[Job] = []

        families, qubit_counts, rsl_size, rate = SCALE_14A[scale]
        settings = PipelineSettings(
            fusion_success_rate=rate,
            resource_state_size=7,
            rsl_size=rsl_size,
            virtual_size=2,
            max_rsl=10**5,
        )
        for family in families:
            for qubits in qubit_counts:
                jobs.append(
                    CompileJob(
                        key=f"a/{family}{qubits}",
                        meta={"panel": "a", "benchmark": f"{family.upper()}{qubits}"},
                        family=family,
                        num_qubits=qubits,
                        settings=settings,
                        seed=seed,
                    )
                )

        rsl_sizes, node, module_counts, mi_ratio, rate_b, trials = SCALE_14B[scale]
        for rsl in rsl_sizes:
            for modules in module_counts:
                jobs.append(
                    FnJob(
                        key=f"b/rsl={rsl}/modules={modules}",
                        meta={"panel": "b", "rsl_size": rsl, "modules": modules},
                        fn=online_attempts,
                        kwargs={
                            "rsl": rsl,
                            "node": node,
                            "modules": modules,
                            "mi_ratio": mi_ratio,
                            "rate": rate_b,
                            "trials": trials,
                            "seed": seed,
                        },
                    )
                )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        parts = []
        table_a = TextTable(
            ["Program", "Seconds per RSL"],
            title="Fig. 14(a): online time per RSL vs program size",
        )
        for record in records:
            if record.fields.get("panel") == "a":
                table_a.add_row(
                    record.fields["benchmark"], f"{seconds_per_rsl(record):.4f}"
                )
        parts.append(table_a.render())

        table_b = TextTable(
            ["RSL size", "Modules", "Concurrent seconds", "Visited sites (wall)"],
            title="Fig. 14(b): online time per RSL vs RSL size and modularity",
        )
        for record in records:
            if record.fields.get("panel") == "b":
                table_b.add_row(
                    record.fields["rsl_size"],
                    record.fields["modules"],
                    f"{record.timings['concurrent_seconds']:.4f}",
                    f"{record.fields['visited_per_attempt']:,.0f}",
                )
        parts.append(table_b.render())
        return "\n\n".join(parts)
