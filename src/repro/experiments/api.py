"""Declarative experiment API: registry, structured records, runner contract.

An :class:`Experiment` describes one table/figure of the paper's evaluation
declaratively: it *builds jobs* (units of work) and *reduces records*
(structured results) — it never executes anything itself.  Execution belongs
to a pluggable runner (:mod:`repro.experiments.runners`): compile jobs are
batched through ``Pipeline.compile_many`` and function jobs through the
runner's shared pool, so the same job list can run serially, across a
thread pool, a process pool, or a sharded subprocess fleet with
bit-identical records.  Execution also *streams*:
:meth:`Experiment.iter_records` yields records in canonical order as jobs
finish, and :meth:`ExperimentResult.from_stream` folds a drained stream
into the same result a blocking run produces.

The contract that makes backends interchangeable is *self-seeding*: every
job derives its own random streams from ``(experiment seed, job labels)``
and never reads shared mutable state, so scheduling order cannot feed the
randomness.

Two job kinds exist:

* :class:`CompileJob` — one (benchmark circuit, :class:`PipelineSettings`)
  compilation, OnePerc or the OneQ baseline.  Runners group these by
  settings and dispatch each group as one ``compile_many`` batch.
* :class:`FnJob` — an arbitrary *module-level* function (picklable for the
  process pool) returning a dict of record fields, optionally paired with a
  dict of wall-clock timings.

Every job produces one :class:`ExperimentRecord`: a flat dict of typed,
deterministic ``fields`` plus provenance (experiment, scale, seed, job key)
and non-deterministic wall-clock ``timings`` (per-pass seconds for compile
jobs).  ``record.canonical()`` drops the timings — that is the portion the
determinism suite asserts byte-identical across runners and worker counts.

Experiments register themselves in :data:`EXPERIMENT_REGISTRY` at import
time; the CLI, ``examples/reproduce_all.py``, and the benches all derive
their experiment lists from it.
"""

from __future__ import annotations

import csv
import io
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ReproError
from repro.experiments.common import SCALES, check_scale
from repro.pipeline.settings import PipelineSettings


class UnknownExperimentError(ReproError):
    """Lookup of an experiment name that is not in the registry."""


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Job:
    """One unit of experiment work.

    ``key`` must be unique within the experiment (it names the record);
    ``meta`` holds the sweep-axis values (panel, x, benchmark, ...) that are
    merged into the record's fields verbatim.
    """

    key: str
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, kw_only=True)
class CompileJob(Job):
    """Compile one benchmark circuit under one settings object.

    Runners group compile jobs by ``(settings, baseline)`` and execute each
    group as a single ``Pipeline.compile_many`` batch, which is where the
    backend (serial/thread/process) and worker count plug in.
    """

    family: str
    num_qubits: int
    settings: PipelineSettings
    seed: int = 0
    circuit_seed: int | None = None  # defaults to ``seed``
    baseline: bool = False

    @property
    def benchmark_seed(self) -> int:
        return self.seed if self.circuit_seed is None else self.circuit_seed


@dataclass(frozen=True, kw_only=True)
class FnJob(Job):
    """Run a module-level function; its return value becomes record fields.

    ``fn(**kwargs)`` returns either a ``fields`` dict or a ``(fields,
    timings)`` pair.  The function must be defined at module level (process
    runners pickle it by reference) and must derive any randomness from its
    own arguments — never from shared state.
    """

    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Records and results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentRecord:
    """One structured measurement: provenance + flat typed fields + timings.

    ``fields`` is deterministic for a given (experiment, scale, seed) no
    matter which runner produced it; ``timings`` carries wall-clock seconds
    (per-pass timers for compile jobs) and ``metrics`` carries execution
    provenance (``PassContext.metrics`` for compile jobs: logical layers
    mapped, peak memory, cache hit/miss counts, ...).  Both are excluded
    from :meth:`canonical`, which is what determinism tests compare —
    cache hit counts legitimately differ between cold and warm runs while
    the fields stay byte-identical.
    """

    experiment: str
    scale: str
    seed: int
    job: str
    fields: dict[str, Any]
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Telemetry spans from the job's compilation, riding the record across
    #: process boundaries for the consuming runner to adopt.  Out-of-band:
    #: excluded from :meth:`canonical` *and* :meth:`flat`, so golden
    #: records and CSV exports are byte-identical with tracing on or off.
    spans: tuple = ()

    def canonical(self) -> dict[str, Any]:
        """The deterministic portion, as a plain JSON-ready dict."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "job": self.job,
            "fields": dict(self.fields),
        }

    def flat(self) -> dict[str, Any]:
        """One flat row (for CSV export): provenance, fields, ``t_`` timings,
        ``m_`` metrics."""
        row: dict[str, Any] = {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "job": self.job,
        }
        row.update(self.fields)
        row.update({f"t_{name}": seconds for name, seconds in self.timings.items()})
        row.update({f"m_{name}": value for name, value in self.metrics.items()})
        return row


def group_cells(
    records: Sequence["ExperimentRecord"], key_fields: Sequence[str]
) -> list[tuple[dict[str, Any], list["ExperimentRecord"]]]:
    """Group records into table cells keyed by ``key_fields``.

    Returns, in first-appearance order, one ``(base_row, cell_records)``
    pair per distinct key — the shared first half of every "zip a cell's
    records into one comparison row" reducer (Tables 2 and 3).
    """
    cells: dict[tuple, tuple[dict[str, Any], list[ExperimentRecord]]] = {}
    for record in records:
        key = tuple(record.fields[name] for name in key_fields)
        if key not in cells:
            cells[key] = (dict(zip(key_fields, key)), [])
        cells[key][1].append(record)
    return list(cells.values())


def canonical_json(records: Sequence[ExperimentRecord]) -> str:
    """Byte-stable JSON of the deterministic record portions.

    Two runs whose records carry identical fields serialize to identical
    bytes — the determinism suite's equality predicate.
    """
    return json.dumps(
        [record.canonical() for record in records],
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass
class ExperimentResult:
    """Everything one experiment run produced: records plus rendered text."""

    experiment: str
    scale: str
    seed: int
    records: list[ExperimentRecord]
    text: str = ""
    runner: str = "serial"
    #: The producing *session's* cache totals (``ArtifactCache.stats()``),
    #: when the stream's source supplied them — the serve summary frame
    #: carries the server store's view, which a remote consumer cannot
    #: recompute from records (the server cache outlives any one request).
    cache_session: dict[str, Any] | None = None
    #: The producing session's metrics-registry snapshot, same provenance.
    session_metrics: dict[str, Any] | None = None

    @classmethod
    def from_stream(
        cls,
        experiment: "Experiment",
        records: Iterable[ExperimentRecord],
        runner: "Runner | str" = "serial",
        summary: dict[str, Any] | None = None,
    ) -> "ExperimentResult":
        """Fold an already-consumed record stream into a full result.

        The streaming counterpart of :meth:`Experiment.run`: drain
        :meth:`Experiment.iter_records` (writing records wherever they need
        to go as they arrive), then hand the same iterator — or the list
        you accumulated — here to get the rendered text and exports.
        Because ``iter_records`` restores canonical ordering, the result is
        byte-identical to a blocking ``run`` of the same experiment.

        ``summary`` round-trips a serve summary frame: its
        ``cache_session`` and ``metrics`` payloads attach to the result
        (mirroring the ``ShardOutcome`` fold), so a remote result reports
        the producing session's cache/telemetry view alongside the
        record-derived :meth:`cache_stats` it reconstructs exactly.
        """
        result = experiment.reduce(list(records))
        result.runner = runner if isinstance(runner, str) else runner.name
        if summary is not None:
            result.cache_session = summary.get("cache_session")
            result.session_metrics = summary.get("metrics")
        return result

    def cache_stats(self) -> dict[str, Any]:
        """Aggregate artifact-cache counts from the records' metrics.

        Summing per-record counts (rather than reading a cache object)
        keeps the accounting correct across process pools, where the
        parent's cache instance never sees the workers' lookups.
        """
        from repro.pipeline.cache import cache_summary

        return cache_summary(
            sum(int(r.metrics.get("cache_hits", 0)) for r in self.records),
            sum(int(r.metrics.get("cache_misses", 0)) for r in self.records),
        )

    def to_json_obj(self) -> dict[str, Any]:
        """Machine-readable form (fields, timings, metrics) for ``--json``.

        ``cache_session`` appears only when the result carries one (remote
        streams), keeping local ``--json`` output byte-stable.
        """
        obj: dict[str, Any] = {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "runner": self.runner,
            "cache": self.cache_stats(),
            "records": [
                {
                    "job": record.job,
                    "fields": dict(record.fields),
                    "timings": dict(record.timings),
                    "metrics": dict(record.metrics),
                }
                for record in self.records
            ],
        }
        if self.cache_session is not None:
            obj["cache_session"] = self.cache_session
        return obj

    def to_csv(self) -> str:
        """Flat CSV: provenance columns, then field columns, then timings."""
        rows = [record.flat() for record in self.records]
        lead = ["experiment", "scale", "seed", "job"]
        data_keys: list[str] = []
        for row in rows:
            for key in row:
                if key not in lead and key not in data_keys:
                    data_keys.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=lead + data_keys, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        return buffer.getvalue()


# ---------------------------------------------------------------------------
# The Experiment abstraction
# ---------------------------------------------------------------------------


class Experiment(ABC):
    """One table/figure: a declarative job builder plus a record reducer.

    Subclasses set ``name``/``description``, build self-seeded jobs in
    :meth:`build_jobs`, and render text from records in :meth:`render`.
    ``run`` wires a runner (default serial) through the two halves.
    """

    name: str = ""
    description: str = ""
    scales: tuple[str, ...] = SCALES

    @abstractmethod
    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        """The full job list for ``scale``; every job self-seeded from ``seed``."""

    @abstractmethod
    def render(self, records: Sequence[ExperimentRecord]) -> str:
        """The human-readable table(s), reconstructed from the records."""

    def reduce(self, records: Sequence[ExperimentRecord]) -> ExperimentResult:
        """Fold executed records into the experiment's result."""
        if not records:
            raise ReproError(f"experiment {self.name!r} produced no records")
        first = records[0]
        return ExperimentResult(
            experiment=self.name,
            scale=first.scale,
            seed=first.seed,
            records=list(records),
            text=self.render(records),
        )

    def _check_scale(self, scale: str) -> None:
        check_scale(scale)
        if scale not in self.scales:
            raise ReproError(
                f"experiment {self.name!r} supports scales {self.scales}, "
                f"got {scale!r}"
            )

    def run(
        self,
        scale: str = "bench",
        seed: int = 0,
        runner: "Runner | str | None" = None,
        pathfind: str | None = None,
        rewrite: str | None = None,
    ) -> ExperimentResult:
        """Build jobs, execute them on ``runner``, reduce the records.

        ``pathfind`` (when given) rewrites every job to the named
        renormalization path-search implementation — see
        :func:`override_pathfind`.  ``rewrite`` likewise forces the
        pattern-rewrite pass on or off for every compile job — see
        :func:`override_rewrite`.  Records are byte-identical either way;
        both knobs exist for parity audits and benchmarking.
        """
        self._check_scale(scale)
        runner = _resolve_runner(runner)
        jobs = override_rewrite(
            override_pathfind(self.build_jobs(scale, seed), pathfind), rewrite
        )
        records = runner.run_jobs(jobs, experiment=self.name, scale=scale, seed=seed)
        result = self.reduce(records)
        result.runner = runner.name
        return result

    def iter_records(
        self,
        scale: str = "bench",
        seed: int = 0,
        runner: "Runner | str | None" = None,
        pathfind: str | None = None,
        rewrite: str | None = None,
    ) -> Iterator[ExperimentRecord]:
        """Stream records in canonical job order as execution completes.

        The generator half of :meth:`run`: a long sweep yields each record
        the moment its job (or, on the sharded runner, its shard) finishes
        instead of materializing the whole list first, so a service or an
        incremental writer can observe partial results mid-sweep.  Record
        content and order are exactly ``run``'s — finish the stream with
        :meth:`ExperimentResult.from_stream` to get the identical result
        object.  Scale/runner validation happens here, eagerly, not at
        first ``next()`` — a usage error must surface at the call site.
        """
        self._check_scale(scale)
        runner = _resolve_runner(runner)
        jobs = override_rewrite(
            override_pathfind(self.build_jobs(scale, seed), pathfind), rewrite
        )
        return runner.iter_jobs(jobs, experiment=self.name, scale=scale, seed=seed)


def override_pathfind(jobs: list[Job], pathfind: str | None) -> list[Job]:
    """Rewrite a job list to force one renormalization path-search impl.

    ``None`` means "leave the experiment's defaults alone" and returns the
    list unchanged.  Compile jobs get their frozen settings replaced;
    function jobs are updated only when the target function actually
    accepts a ``pathfind`` keyword (signature-checked), so helpers that
    never touch the renormalizer pass through untouched.  Because results
    are byte-identical across implementations, this is an execution knob,
    not a sweep axis — job keys and record fields stay the same.
    """
    if pathfind is None:
        return jobs
    from repro.online.renormalize import PATHFINDS

    if pathfind not in PATHFINDS:
        raise ReproError(
            f"unknown pathfind {pathfind!r}; use one of: {', '.join(PATHFINDS)}"
        )
    import dataclasses
    import inspect

    rewritten: list[Job] = []
    for job in jobs:
        if isinstance(job, CompileJob):
            settings = dataclasses.replace(job.settings, pathfind=pathfind)
            rewritten.append(dataclasses.replace(job, settings=settings))
        elif isinstance(job, FnJob) and "pathfind" in inspect.signature(job.fn).parameters:
            rewritten.append(
                dataclasses.replace(job, kwargs={**job.kwargs, "pathfind": pathfind})
            )
        else:
            rewritten.append(job)
    return rewritten


def override_rewrite(jobs: list[Job], rewrite: str | None) -> list[Job]:
    """Rewrite a job list to force the pattern-rewrite pass on or off.

    ``None`` leaves the experiment's defaults alone.  Only compile jobs
    are touched: for them the knob is semantics-preserving by construction
    (records byte-identical either way — the determinism suite's
    contract).  Function jobs always pass through untouched, even when the
    function accepts a ``rewrite`` argument: an FnJob with a ``rewrite``
    parameter is *sweeping* it as an axis (the ``passes`` ablation), and
    collapsing the axis to one value would change the record set.
    """
    if rewrite is None:
        return jobs
    from repro.passes.rewrite import REWRITES

    if rewrite not in REWRITES:
        raise ReproError(
            f"unknown rewrite mode {rewrite!r}; use one of: {', '.join(REWRITES)}"
        )
    import dataclasses

    return [
        dataclasses.replace(
            job, settings=dataclasses.replace(job.settings, rewrite=rewrite)
        )
        if isinstance(job, CompileJob)
        else job
        for job in jobs
    ]


def _resolve_runner(runner: "Runner | str | None"):
    from repro.experiments.runners import Runner, make_runner

    if runner is None:
        return make_runner("serial")
    if isinstance(runner, str):
        return make_runner(runner)
    if isinstance(runner, Runner):
        return runner
    raise ReproError(f"not a runner: {runner!r}")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Experiment name -> instance, in registration (== presentation) order.
EXPERIMENT_REGISTRY: dict[str, Experiment] = {}


def register(experiment_cls: type[Experiment]) -> type[Experiment]:
    """Class decorator: instantiate and add to the registry exactly once."""
    experiment = experiment_cls()
    if not experiment.name:
        raise ReproError(f"{experiment_cls.__name__} has no name")
    if experiment.name in EXPERIMENT_REGISTRY:
        raise ReproError(f"experiment {experiment.name!r} registered twice")
    EXPERIMENT_REGISTRY[experiment.name] = experiment
    return experiment_cls


def _ensure_registered() -> None:
    # Importing the package pulls in every experiment module, each of which
    # registers itself; after that the registry is complete.
    import repro.experiments  # noqa: F401


def experiment_names() -> list[str]:
    """Registered names, in presentation order (Table 2 ... photon loss)."""
    _ensure_registered()
    return list(EXPERIMENT_REGISTRY)


def get_experiment(name: str) -> Experiment:
    """Registry lookup with an error that lists what *is* registered."""
    _ensure_registered()
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError:
        known = ", ".join(EXPERIMENT_REGISTRY) or "<none>"
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; registered experiments: {known}"
        ) from None


def run_experiment(
    name: str,
    scale: str = "bench",
    seed: int = 0,
    runner: "Runner | str | None" = None,
    pathfind: str | None = None,
    rewrite: str | None = None,
) -> ExperimentResult:
    """One-call entry point: ``run_experiment("fig14", "bench")``."""
    return get_experiment(name).run(
        scale=scale, seed=seed, runner=runner, pathfind=pathfind, rewrite=rewrite
    )
