"""Incremental record writers: flush one record at a time to disk.

The streaming half of the export surface (CLI ``experiment --stream
--out FILE``): where ``ExperimentResult.to_csv``/``to_json_obj`` serialize
a finished run, these writers accept records *as they arrive* from
:meth:`~repro.experiments.api.Experiment.iter_records` and flush after
every one, so a long sweep's output file is tail-able and survives a
mid-run crash with everything completed so far.

Two formats:

* :class:`JsonlStreamWriter` (``.json``/``.jsonl``/anything non-CSV) —
  JSON Lines, one self-contained record object per line (provenance,
  fields, timings, metrics).  Lossless for any job mix; the streaming
  analogue of ``to_json_obj``'s ``records`` array.
* :class:`CsvStreamWriter` (``.csv``) — one flat row per record.  A stream
  cannot wait for the full column union the way ``to_csv`` does, so the
  header is fixed by the first record; later records with *novel* columns
  have those columns dropped (counted in ``dropped_keys``, surfaced by the
  CLI).  Experiments whose jobs share one schema — every record the same
  columns — stream byte-identically to ``to_csv``; for mixed-schema
  experiments (e.g. fig13's compile + fn mix) prefer JSONL.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Any

from repro.experiments.api import ExperimentRecord


class RecordStreamWriter:
    """Base contract: ``write(record)`` flushes; ``close()`` finalizes.

    Usable as a context manager; ``records_written`` counts successful
    writes for progress reporting.
    """

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self.records_written = 0

    def write(self, record: ExperimentRecord) -> None:
        self._emit(record)
        self._handle.flush()  # the contract: every record reaches the OS
        self.records_written += 1

    def _emit(self, record: ExperimentRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "RecordStreamWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class JsonlStreamWriter(RecordStreamWriter):
    """One JSON object per line: full record fidelity, flushed per record."""

    def _emit(self, record: ExperimentRecord) -> None:
        line = {
            **record.canonical(),
            "timings": dict(record.timings),
            "metrics": dict(record.metrics),
        }
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")


#: Provenance columns every record's flat row leads with — the header a
#: zero-record CSV stream falls back to, so an empty run still produces a
#: parseable file (matching ``to_csv``, which always emits a header row).
LEAD_FIELDS = ("experiment", "scale", "seed", "job")


class CsvStreamWriter(RecordStreamWriter):
    """One flat CSV row per record; header fixed by the first record.

    Missing columns in later records are blank (``restval``); novel
    columns are dropped and tallied in ``dropped_keys`` so the caller can
    tell the user data went missing (and to use JSONL instead).  A run
    that produces *no* records still gets a header at ``close()`` — the
    ``fieldnames`` hint when the caller knows the schema up front, the
    provenance lead columns otherwise — so downstream CSV tooling never
    chokes on a headerless empty file.
    """

    def __init__(self, handle: IO[str], fieldnames: list[str] | None = None) -> None:
        super().__init__(handle)
        self._writer: csv.DictWriter | None = None
        self._hint = list(fieldnames) if fieldnames else None
        self.fieldnames: list[str] = []
        self.dropped_keys: set[str] = set()

    def _start(self, fieldnames: list[str]) -> None:
        self.fieldnames = fieldnames
        self._writer = csv.DictWriter(
            self._handle, fieldnames=fieldnames, restval=""
        )
        self._writer.writeheader()

    def _emit(self, record: ExperimentRecord) -> None:
        row = record.flat()
        if self._writer is None:
            self._start(self._hint or list(row))
        known = {key: value for key, value in row.items() if key in self.fieldnames}
        self.dropped_keys.update(key for key in row if key not in self.fieldnames)
        self._writer.writerow(known)

    def close(self) -> None:
        if self._writer is None and not self._handle.closed:
            # Zero records arrived: derive the header rather than leave a
            # headerless (empty) CSV behind.
            self._start(self._hint or list(LEAD_FIELDS))
            self._handle.flush()
        super().close()


def make_stream_writer(
    path: str, fieldnames: list[str] | None = None
) -> RecordStreamWriter:
    """The writer for ``path``, by extension (``.csv`` -> CSV, else JSONL).

    ``fieldnames`` is an optional CSV schema hint (ignored for JSONL):
    with it, the header is written from the hint instead of the first
    record.  The opened handle never leaks: if writer construction fails,
    the handle is closed before the error propagates.
    """
    handle = open(path, "w", newline="")
    try:
        if path.lower().endswith(".csv"):
            return CsvStreamWriter(handle, fieldnames=fieldnames)
        return JsonlStreamWriter(handle)
    except BaseException:
        handle.close()
        raise
