"""The ``passes`` ablation: pattern rewrite on/off as a registry axis.

Every built-in family is lowered to {J, CZ} *without* peephole
simplification (``to_jcz(..., simplify=False)``) — the shape an external
front end that missed its local optimizations would hand the pipeline —
then translated, and measured with the rewrite pass on and off.  The
deterministic fields are the node counts before/after contraction, the
shrink percentage, and the logical layer count after offline mapping,
which is how the shrink propagates into online work (fewer layers = fewer
RSLs consumed).  The rewrite's own wall clock rides in the timings (out of
band, like every timing).

This is the registry's third execution-vs-sweep axis: ``runner`` and
``pathfind`` are execution knobs (byte-identical records), while here
``rewrite`` is swept as a *field*, so the records quantify what the knob
buys.  That is also why :func:`~repro.experiments.api.override_rewrite`
never touches FnJobs — forcing one value would collapse this axis.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.experiments.api import Experiment, ExperimentRecord, FnJob, Job, register
from repro.utils.tables import TextTable

SCALE_PASSES = {
    "bench": (("qaoa", "qft"), (4,)),
    "paper": (("qaoa", "qft", "rca", "vqe"), (4, 9)),
}


def rewrite_ablation(
    family: str, qubits: int, seed: int, rewrite: str
) -> tuple[dict[str, Any], dict[str, float]]:
    """One cell: translate the unsimplified lowering, optionally rewrite.

    Deterministic throughout — the lowering, the contraction, and the
    offline mapper derive nothing from global state — so records are
    byte-identical on every runner backend.
    """
    from repro.circuits.benchmarks import make_benchmark
    from repro.circuits.jcz import to_jcz
    from repro.mbqc.optimize import optimize_pattern
    from repro.mbqc.translate import translate_circuit
    from repro.offline.mapper import OfflineMapper

    circuit = to_jcz(make_benchmark(family, qubits, seed=seed), simplify=False)
    pattern = translate_circuit(circuit)
    nodes_raw = pattern.node_count
    contracted = 0
    start = time.perf_counter()
    if rewrite == "on":
        contracted = optimize_pattern(pattern).contracted_pairs
    rewrite_seconds = time.perf_counter() - start
    nodes = pattern.node_count
    mapping = OfflineMapper(width=2).map_pattern(pattern)
    fields = {
        "benchmark": f"{family.upper()}{qubits}",
        "rewrite": rewrite,
        "nodes_raw": nodes_raw,
        "nodes": nodes,
        "contracted_pairs": contracted,
        "shrink_pct": round(100.0 * (nodes_raw - nodes) / nodes_raw, 2),
        "logical_layers": mapping.layer_count,
    }
    return fields, {"rewrite_seconds": rewrite_seconds}


@register
class PassesAblationExperiment(Experiment):
    name = "passes"
    description = "pattern-rewrite ablation: node shrink and layer effect, on vs off"

    def build_jobs(self, scale: str, seed: int) -> list[Job]:
        families, qubit_counts = SCALE_PASSES[scale]
        jobs: list[Job] = []
        for family in families:
            for qubits in qubit_counts:
                for rewrite in ("off", "on"):
                    jobs.append(
                        FnJob(
                            key=f"{family}{qubits}/rewrite={rewrite}",
                            meta={},
                            fn=rewrite_ablation,
                            kwargs={
                                "family": family,
                                "qubits": qubits,
                                "seed": seed,
                                "rewrite": rewrite,
                            },
                        )
                    )
        return jobs

    def render(self, records: Sequence[ExperimentRecord]) -> str:
        table = TextTable(
            ["Benchmark", "Rewrite", "Nodes", "Contracted", "Shrink %", "Layers"],
            title="Pass ablation: pattern rewrite on vs off (unsimplified lowering)",
        )
        for record in records:
            table.add_row(
                record.fields["benchmark"],
                record.fields["rewrite"],
                f"{record.fields['nodes']}",
                f"{record.fields['contracted_pairs']}",
                f"{record.fields['shrink_pct']:.1f}",
                f"{record.fields['logical_layers']}",
            )
        return table.render()
