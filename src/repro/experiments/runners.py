"""Pluggable experiment runners: serial, thread-pool, and process-pool.

A runner executes a job list and returns input-ordered
:class:`~repro.experiments.api.ExperimentRecord` lists.  All three backends
produce byte-identical canonical records for any worker count because jobs
are self-seeded (see :mod:`repro.experiments.api`); the backend choice only
moves wall-clock time around.

Compile jobs are grouped by ``(settings, baseline)`` and dispatched as
``Pipeline.compile_many`` batches — the batch API is the single execution
path for every compilation in the experiments layer.  A pool runner opens
*one* executor per ``run_jobs`` call, submits every batch and function job
up front, and only then gathers, so pool startup is paid once and the pool
stays saturated across groups.

One caveat follows from "only the wall clock differs": records' ``timings``
are measured while jobs *contend* for cores (and, on the thread runner, the
GIL), so the timing columns of the timing experiments (Figs. 14-15) are
only meaningful from the serial runner — the default everywhere.  Pool
runners still produce bit-identical deterministic fields; they just cannot
be used to *measure* single-job wall clock.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Sequence

from repro.circuits.benchmarks import make_benchmark
from repro.errors import ReproError
from repro.experiments.api import CompileJob, ExperimentRecord, FnJob, Job
from repro.pipeline import Pipeline


def _call_fn_job(job: FnJob) -> Any:
    # Module-level so the process pool can pickle it by reference.
    return job.fn(**job.kwargs)


def _named(job: Job, experiment: str, compute):
    """Run ``compute``, naming the failing job: a sweep error must say which
    sweep point died (circuit names alone repeat across settings groups)."""
    try:
        return compute()
    except Exception as exc:
        raise ReproError(f"{experiment} job {job.key!r}: {exc}") from exc


def _split_output(out: Any) -> tuple[dict[str, Any], dict[str, float]]:
    """Normalize an FnJob return value into (fields, timings)."""
    if isinstance(out, tuple):
        fields, timings = out
        return dict(fields), dict(timings)
    return dict(out), {}


class Runner:
    """Serial execution: the reference backend every other one must match.

    ``cache`` (an :class:`~repro.pipeline.cache.ArtifactCache`) is shared
    by every compile batch of every ``run_jobs`` call on this runner: each
    compile group's pipeline is cache-wrapped before dispatch, so one
    cache serves the whole experiment run regardless of backend.  Records
    are byte-identical with the cache off, cold, or warm — hit/miss counts
    land in the records' non-canonical ``metrics``.  (A ``MemoryCache``
    shares within the serial/thread runners only; the process runner needs
    a ``DiskCache`` to share entries across workers.)
    """

    name = "serial"

    def __init__(self, max_workers: int | None = None, cache=None) -> None:
        self.max_workers = max_workers
        self.cache = cache

    # -- the runner contract ------------------------------------------------

    def run_jobs(
        self,
        jobs: Sequence[Job],
        *,
        experiment: str,
        scale: str,
        seed: int,
    ) -> list[ExperimentRecord]:
        """Execute every job; records come back in job order."""
        records: list[ExperimentRecord | None] = [None] * len(jobs)

        compile_groups: dict[tuple, list[tuple[int, CompileJob]]] = {}
        fn_jobs: list[tuple[int, FnJob]] = []
        for index, job in enumerate(jobs):
            if isinstance(job, CompileJob):
                compile_groups.setdefault((job.settings, job.baseline), []).append(
                    (index, job)
                )
            elif isinstance(job, FnJob):
                fn_jobs.append((index, job))
            else:
                raise ReproError(f"runner cannot execute job of type {type(job)!r}")

        with self._pool() as pool:
            # Submit everything before gathering anything: every compile
            # group (still batched through compile_many) and every fn job is
            # in flight at once, so the pool stays saturated instead of
            # draining group by group.
            batches = []
            for (settings, baseline), members in compile_groups.items():
                pipeline = Pipeline(settings, cache=self.cache)
                circuits = [
                    make_benchmark(job.family, job.num_qubits, seed=job.benchmark_seed)
                    for _index, job in members
                ]
                if pool is None:
                    # A serial batch raises mid-call, so name the group here
                    # (the futures path names the exact job at gather time).
                    try:
                        outcomes = pipeline.compile_many(
                            circuits,
                            seeds=[job.seed for _index, job in members],
                            baseline=baseline,
                        )
                    except Exception as exc:
                        keys = [job.key for _index, job in members]
                        raise ReproError(
                            f"{experiment} compile group "
                            f"[{keys[0]} .. {keys[-1]}]: {exc}"
                        ) from exc
                else:
                    outcomes = pipeline.compile_many(
                        circuits,
                        seeds=[job.seed for _index, job in members],
                        baseline=baseline,
                        executor=pool,
                        as_futures=True,
                    )
                batches.append((members, outcomes))
            if pool is None:
                outputs = [
                    _named(job, experiment, lambda j=job: _call_fn_job(j))
                    for _index, job in fn_jobs
                ]
            else:
                fn_futures = [pool.submit(_call_fn_job, job) for _index, job in fn_jobs]
                outputs = [
                    _named(job, experiment, future.result)
                    for (_index, job), future in zip(fn_jobs, fn_futures)
                ]

            for members, outcomes in batches:
                for (index, job), outcome in zip(members, outcomes):
                    if pool is not None:
                        outcome = _named(job, experiment, outcome.result)
                    records[index] = _compile_record(
                        job, outcome, experiment=experiment, scale=scale, seed=seed
                    )
        for (index, job), out in zip(fn_jobs, outputs):
            # _named also covers normalization: a malformed fn return value
            # must name its job, not just die unpacking.
            fields, timings = _named(job, experiment, lambda o=out: _split_output(o))
            records[index] = ExperimentRecord(
                experiment=experiment,
                scale=scale,
                seed=seed,
                job=job.key,
                fields={**job.meta, **fields},
                timings=timings,
            )
        return list(records)  # type: ignore[arg-type]

    @contextmanager
    def _pool(self):
        """The executor shared by every batch of one run (None = in-line)."""
        yield None


class SerialRunner(Runner):
    """Alias of the base runner; the canonical reference backend."""


class ThreadRunner(Runner):
    name = "thread"

    @contextmanager
    def _pool(self):
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            yield pool


class ProcessRunner(Runner):
    name = "process"

    @contextmanager
    def _pool(self):
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield pool


def _compile_record(
    job: CompileJob,
    outcome,
    *,
    experiment: str,
    scale: str,
    seed: int,
) -> ExperimentRecord:
    """A uniform record from one compile outcome (OnePerc or baseline)."""
    if job.baseline:
        fields = {
            **job.meta,
            "rsl_count": int(outcome.rsl_count),
            "fusion_count": int(outcome.fusion_count),
            "restarts": int(outcome.restarts),
            "capped": bool(outcome.capped),
        }
        timings: dict[str, float] = {}
    else:
        fields = {
            **job.meta,
            "rsl_count": int(outcome.rsl_count),
            "fusion_count": int(outcome.fusion_count),
            "logical_layers": int(outcome.logical_layers),
            "pl_ratio": float(outcome.pl_ratio),
        }
        timings = dict(outcome.timings_by_pass)
    return ExperimentRecord(
        experiment=experiment,
        scale=scale,
        seed=seed,
        job=job.key,
        fields=fields,
        timings=timings,
        # PassContext.metrics provenance: logical layers mapped, peak
        # memory, cache hit/miss counts.  Rides the outcome across pickle
        # boundaries, so process-pool runs account correctly too.
        metrics=dict(getattr(outcome, "metrics", {}) or {}),
    )


#: Runner name -> class, the CLI's ``--runner`` choices.
RUNNERS: dict[str, type[Runner]] = {
    "serial": SerialRunner,
    "thread": ThreadRunner,
    "process": ProcessRunner,
}


def make_runner(name: str, max_workers: int | None = None, cache=None) -> Runner:
    """Instantiate a runner by name, with an error that lists the options."""
    try:
        runner_cls = RUNNERS[name]
    except KeyError:
        raise ReproError(
            f"unknown runner {name!r}; available runners: {', '.join(RUNNERS)}"
        ) from None
    return runner_cls(max_workers=max_workers, cache=cache)
