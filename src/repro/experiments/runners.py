"""Pluggable experiment runners: serial, thread-pool, process-pool, sharded.

A runner executes a job list and produces input-ordered
:class:`~repro.experiments.api.ExperimentRecord` lists.  All backends
produce byte-identical canonical records for any worker or shard count
because jobs are self-seeded (see :mod:`repro.experiments.api`); the
backend choice only moves wall-clock time around.

Execution is **streaming end-to-end**: the primitive is
:meth:`Runner.iter_jobs`, a generator that yields each record as its job
finishes, with canonical (input) ordering restored by a reorder buffer —
out-of-order completions wait in the buffer until every earlier record has
been yielded.  ``run_jobs`` is simply ``list(iter_jobs(...))``, so the
serial, thread, process, and sharded backends all stream for free.

Compile jobs are grouped by ``(settings, baseline)`` and dispatched through
``Pipeline.compile_many`` — the batch API is the single execution path for
every compilation in the experiments layer.  Pool runners draw their
executor from the **warm pool registry** (:mod:`repro.experiments.pool`):
one process/thread pool per worker count, created on first use and reused
across ``iter_jobs`` calls and whole sweeps, so pool startup is paid once
per process, not once per run.  Jobs are submitted in **chunks** sized to
amortize IPC (:func:`~repro.experiments.pool.chunk_size_for`; override
with ``chunk_size=``/``--chunk-size``): each chunk executes in-worker and
returns finished *records*, so the heavy compile artifacts (mapping,
reshape, instruction stream) never travel back through the pool pipe —
with a :class:`~repro.pipeline.cache.DiskCache` attached they are already
in the shared store, which is the exchange medium.

:class:`ShardedRunner` partitions the job list into N shards keyed by a
stable hash of each job's key (:func:`shard_for`), executes every shard as
a self-contained :class:`ShardTask` in a subprocess, and exchanges
artifacts through per-shard :class:`~repro.pipeline.cache.ShardDiskCache`
delta directories that merge back into one warm base store.  The task is
the whole contract — jobs, provenance, and two cache directory paths — so
the same shards could run on remote hosts with the cache directories as
the wire format; the local subprocess pool is just the first transport.

One caveat follows from "only the wall clock differs": records' ``timings``
are measured while jobs *contend* for cores (and, on the thread runner, the
GIL), so the timing columns of the timing experiments (Figs. 14-15) are
only meaningful from the serial runner — the default everywhere.  Pool
runners still produce bit-identical deterministic fields; they just cannot
be used to *measure* single-job wall clock.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro import obs
from repro.circuits.benchmarks import make_benchmark
from repro.errors import ReproError
from repro.experiments.api import CompileJob, ExperimentRecord, FnJob, Job
from repro.experiments.pool import (
    chunk_size_for,
    chunked,
    discard_pool,
    get_pool,
    resolve_workers,
)
from repro.pipeline import Pipeline
from repro.pipeline.cache import DiskCache, ShardDiskCache, shard_scratch


def _call_fn_job(job: FnJob) -> Any:
    # Module-level so the process pool can pickle it by reference.
    return job.fn(**job.kwargs)


def _named(job: Job, experiment: str, compute):
    """Run ``compute``, naming the failing job: a sweep error must say which
    sweep point died (circuit names alone repeat across settings groups)."""
    try:
        return compute()
    except Exception as exc:
        raise ReproError(f"{experiment} job {job.key!r}: {exc}") from exc


def _split_output(out: Any) -> tuple[dict[str, Any], dict[str, float]]:
    """Normalize an FnJob return value into (fields, timings)."""
    if isinstance(out, tuple):
        fields, timings = out
        return dict(fields), dict(timings)
    return dict(out), {}


def _group_pipelines(
    jobs: Sequence[Job], cache, telemetry: bool
) -> dict[tuple, Pipeline]:
    """One cache-wrapped pipeline per ``(settings, baseline)`` group."""
    pipelines: dict[tuple, Pipeline] = {}
    for job in jobs:
        if isinstance(job, CompileJob):
            group = (job.settings, job.baseline)
            if group not in pipelines:
                pipelines[group] = Pipeline(
                    job.settings, cache=cache, telemetry=telemetry
                )
    return pipelines


def _execute_job(
    job: Job,
    pipelines: dict[tuple, Pipeline],
    *,
    experiment: str,
    scale: str,
    seed: int,
) -> ExperimentRecord:
    """Run one job to a finished record — the one execution core.

    Shared verbatim by the serial loop and the chunk worker, so in-line,
    thread-, process-, and shard-hosted execution cannot drift: compile
    jobs go through one-element ``compile_many`` batches (keeping the
    batch API the single compilation path) against their group's shared
    pipeline, fn jobs call their module-level function, and failures name
    the job either way.
    """
    if isinstance(job, CompileJob):
        pipeline = pipelines[(job.settings, job.baseline)]
        circuit = make_benchmark(job.family, job.num_qubits, seed=job.benchmark_seed)
        outcome = _named(
            job,
            experiment,
            lambda: pipeline.compile_many(
                [circuit], seeds=[job.seed], baseline=job.baseline
            )[0],
        )
        return _compile_record(
            job, outcome, experiment=experiment, scale=scale, seed=seed
        )
    out = _named(job, experiment, lambda: _call_fn_job(job))
    return _fn_record(job, out, experiment=experiment, scale=scale, seed=seed)


@dataclass(frozen=True)
class ChunkTask:
    """One pool dispatch quantum: a contiguous slice of a sweep's jobs.

    Like :class:`ShardTask`, a chunk carries no live resources — indexed
    self-seeded jobs, provenance, the cache handle (a thread pool shares
    it by reference; a process pool pickles it, which for a
    :class:`~repro.pipeline.cache.DiskCache` means *by path*, so workers
    read and feed the one shared store), and the telemetry intent flag.
    One chunk costs one pickle round trip however many jobs it holds.
    """

    experiment: str
    scale: str
    seed: int
    jobs: tuple[tuple[int, Job], ...]  # (canonical index, job) pairs
    cache: Any = None
    telemetry: bool = False


def run_chunk(task: ChunkTask) -> list[tuple[int, ExperimentRecord]]:
    """Execute one chunk in-worker; return slim, record-shaped results.

    Module-level so process pools pickle it by reference.  Records are
    built *worker-side*: only the record's scalars, timings, metrics, and
    spans travel back through the pool pipe, never the heavy compile
    artifacts behind them (with a ``DiskCache`` attached those are
    already in the shared store — the cache directory is the exchange
    medium, so shipping the blobs again would pay for them twice).
    """
    jobs = [job for _index, job in task.jobs]
    pipelines = _group_pipelines(jobs, task.cache, task.telemetry)
    return [
        (
            index,
            _execute_job(
                job,
                pipelines,
                experiment=task.experiment,
                scale=task.scale,
                seed=task.seed,
            ),
        )
        for index, job in task.jobs
    ]


def _fail_fast(pool, futures, exc: BaseException) -> None:
    """The pool error path: cancel queued work; retire a poisoned pool.

    Without this, a failing job surfaced only after every other queued
    job ran to completion (the executor kept draining).  Cancelling makes
    the failure immediate; on a real error the shared pool is also
    retired via :func:`~repro.experiments.pool.discard_pool` (shutdown
    with ``cancel_futures=True``), because a pool mid-way through a
    cancelled sweep must not serve the next caller.  An abandoned
    consumer (``GeneratorExit``) only cancels — the pool itself is
    healthy and stays warm.
    """
    for future in futures:
        future.cancel()
    if not isinstance(exc, GeneratorExit):
        discard_pool(pool)


class _ReorderBuffer:
    """Restores canonical order over out-of-order completions.

    The one definition of the streaming contract's ordering half, shared
    by every backend that completes work out of order: ``push`` completed
    records under their canonical index, ``drain`` yields the contiguous
    prefix that is now safe to emit.
    """

    def __init__(self) -> None:
        self._records: dict[int, ExperimentRecord] = {}
        self._next_index = 0

    def __len__(self) -> int:
        """Records waiting on an earlier index (the buffer's depth)."""
        return len(self._records)

    def push(self, index: int, record: ExperimentRecord) -> None:
        self._records[index] = record

    def drain(self) -> Iterator[ExperimentRecord]:
        while self._next_index in self._records:
            yield self._records.pop(self._next_index)
            self._next_index += 1


class Runner:
    """Serial execution: the reference backend every other one must match.

    ``cache`` (an :class:`~repro.pipeline.cache.ArtifactCache`) is shared
    by every compile batch of every ``iter_jobs``/``run_jobs`` call on this
    runner: each compile group's pipeline is cache-wrapped before dispatch,
    so one cache serves the whole experiment run regardless of backend.
    Records are byte-identical with the cache off, cold, or warm — hit/miss
    counts land in the records' non-canonical ``metrics``.  (A
    ``MemoryCache`` shares within the serial/thread runners only; the
    process and sharded runners need a ``DiskCache`` to share entries
    across workers.)
    """

    name = "serial"
    #: Which warm-pool kind this backend draws from (None = in-line).
    pool_kind: str | None = None

    def __init__(
        self,
        max_workers: int | None = None,
        cache=None,
        telemetry: bool = False,
        chunk_size: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ReproError(f"worker count must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ReproError(f"chunk size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers
        self.cache = cache
        # Dispatch quantum for pool backends; None = auto-sized per sweep
        # (see ``chunk_size_for``).  Records are identical for any value.
        self.chunk_size = chunk_size
        # Explicit collection intent for contexts where no session can be
        # seen (a sharded child process runs with ``telemetry=True`` under
        # its own collect-only session); with a session active in *this*
        # process, telemetry opts in automatically regardless.
        self.telemetry = telemetry

    # -- the runner contract ------------------------------------------------

    def run_jobs(
        self,
        jobs: Sequence[Job],
        *,
        experiment: str,
        scale: str,
        seed: int,
    ) -> list[ExperimentRecord]:
        """Execute every job; records come back in job order."""
        return list(
            self.iter_jobs(jobs, experiment=experiment, scale=scale, seed=seed)
        )

    def iter_jobs(
        self,
        jobs: Sequence[Job],
        *,
        experiment: str,
        scale: str,
        seed: int,
    ) -> Iterator[ExperimentRecord]:
        """Yield one record per job, in canonical (input) order, as jobs
        finish.

        Pool backends complete jobs out of order; a reorder buffer holds
        early completions until every lower-index record has been yielded,
        so consumers always observe the exact ``run_jobs`` sequence — just
        incrementally.  The serial backend executes in input order and
        yields immediately.

        With a telemetry session active, the stream is additionally
        observed out-of-band: a ``run:<experiment>`` span brackets the
        whole call, ``run_started``/``run_finished`` events mark its
        lifecycle, and every record's spans and cache provenance are
        adopted into the session as the record passes through.  Records
        themselves are byte-identical either way.
        """
        jobs = list(jobs)
        tele = obs.active()
        if tele is None:
            yield from self._iter_jobs(
                jobs, experiment=experiment, scale=scale, seed=seed
            )
            return
        tele.events.emit(
            "run_started",
            experiment=experiment,
            scale=scale,
            seed=seed,
            runner=self.name,
            jobs=len(jobs),
        )
        t0 = time.time()
        wall0 = time.perf_counter()
        yielded = 0
        try:
            for record in self._iter_jobs(
                jobs, experiment=experiment, scale=scale, seed=seed
            ):
                self._adopt(tele, record)
                yielded += 1
                yield record
        finally:
            tele.tracer.add_span(
                f"run:{experiment}",
                ts=t0,
                dur=time.perf_counter() - wall0,
                attrs={"runner": self.name, "jobs": yielded},
            )
            tele.events.emit(
                "run_finished", experiment=experiment, runner=self.name, jobs=yielded
            )

    def _iter_jobs(
        self,
        jobs: list[Job],
        *,
        experiment: str,
        scale: str,
        seed: int,
    ) -> Iterator[ExperimentRecord]:
        """The untraced execution core ``iter_jobs`` wraps."""
        self._check_jobs(jobs)
        pool = self._acquire_pool()
        if pool is None:
            yield from self._iter_serial(
                jobs,
                self._group_pipelines(jobs),
                experiment=experiment,
                scale=scale,
                seed=seed,
            )
        else:
            yield from self._iter_pool(
                pool, jobs, experiment=experiment, scale=scale, seed=seed
            )

    def _adopt(self, tele, record: ExperimentRecord) -> None:
        """Fold one finished record's telemetry into the session.

        The base rule: record metrics are *the* source of the session's
        ``cache.*`` counters (they survive every pool boundary).  The
        sharded runner overrides this — its children folded their own
        records already and their registry snapshots merge wholesale.
        """
        tele.adopt_record(record)

    # -- shared halves ------------------------------------------------------

    @staticmethod
    def _check_jobs(jobs: Sequence[Job]) -> None:
        """Reject unknown job kinds before any execution machinery spins up."""
        for job in jobs:
            if not isinstance(job, (CompileJob, FnJob)):
                raise ReproError(f"runner cannot execute job of type {type(job)!r}")

    def _group_pipelines(self, jobs: Sequence[Job]) -> dict[tuple, Pipeline]:
        """One cache-wrapped pipeline per ``(settings, baseline)`` group."""
        return _group_pipelines(jobs, self.cache, self.telemetry)

    def _iter_serial(
        self, jobs, pipelines, *, experiment, scale, seed
    ) -> Iterator[ExperimentRecord]:
        # In-line execution is already in canonical order; the execution
        # core is the same one the chunk workers run.
        for job in jobs:
            obs.event("job_started", job=job.key, experiment=experiment)
            yield _execute_job(
                job, pipelines, experiment=experiment, scale=scale, seed=seed
            )

    def _iter_pool(
        self, pool, jobs, *, experiment, scale, seed
    ) -> Iterator[ExperimentRecord]:
        # Chunked dispatch over the warm pool: every chunk is in flight
        # before anything yields, so the pool stays saturated; each chunk
        # comes back as finished records (one pickle round trip per chunk,
        # no artifact blobs on the return path).
        size = chunk_size_for(
            len(jobs), resolve_workers(self.max_workers), self.chunk_size
        )
        telemetry = self.telemetry or obs.active() is not None
        futures = {
            pool.submit(
                run_chunk,
                ChunkTask(
                    experiment=experiment,
                    scale=scale,
                    seed=seed,
                    jobs=tuple(chunk),
                    cache=self.cache,
                    telemetry=telemetry,
                ),
            ): chunk
            for chunk in chunked(list(enumerate(jobs)), size)
        }
        for job in jobs:
            obs.event("job_started", job=job.key, experiment=experiment)
        obs.gauge("runner.chunk_size", size)
        buffer = _ReorderBuffer()
        in_flight = len(jobs)
        obs.gauge("runner.jobs_in_flight", in_flight)
        try:
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    pairs = future.result()
                except ReproError:
                    raise  # worker-side _named already names the failing job
                except Exception as exc:
                    keys = ", ".join(job.key for _index, job in chunk)
                    raise ReproError(
                        f"{experiment} chunk [{keys}]: {exc}"
                    ) from exc
                in_flight -= len(pairs)
                obs.gauge("runner.jobs_in_flight", in_flight)
                for index, record in pairs:
                    buffer.push(index, record)
                obs.observe("runner.reorder_depth", len(buffer))
                yield from buffer.drain()
        except BaseException as exc:
            # Fail fast: a poisoned sweep must not wait for — or leave
            # behind — the rest of its queued chunks.
            _fail_fast(pool, futures, exc)
            raise

    def _acquire_pool(self):
        """The warm executor this run dispatches to (None = in-line)."""
        if self.pool_kind is None:
            return None
        return get_pool(self.pool_kind, self.max_workers)


class SerialRunner(Runner):
    """Alias of the base runner; the canonical reference backend."""


class ThreadRunner(Runner):
    name = "thread"
    pool_kind = "thread"


class ProcessRunner(Runner):
    name = "process"
    pool_kind = "process"


# ---------------------------------------------------------------------------
# Sharded execution
# ---------------------------------------------------------------------------

#: Default shard count when neither the constructor nor the CLI names one.
DEFAULT_SHARDS = 2


def shard_for(key: str, num_shards: int) -> int:
    """The shard that owns job ``key``: a stable content hash, mod N.

    Deliberately *not* Python's salted ``hash`` — the assignment must be
    identical across processes, runs, and hosts, because it is part of the
    sharded contract (a re-run or a remote coordinator must partition a
    sweep identically to reuse shard artifacts).
    """
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass(frozen=True)
class ShardTask:
    """Everything one shard needs — the host-agnostic execution contract.

    A task pickles and carries no live resources: jobs (self-seeded),
    provenance, and two directory paths.  ``base_dir`` is the coordinator's
    warm artifact store (read-only to the shard); ``delta_dir`` is where
    the shard's new artifacts land and is what travels back.  Run one with
    :func:`run_shard` — locally in a subprocess today, on another host
    tomorrow, with the two cache directories as the wire format either way.
    """

    shard_index: int
    experiment: str
    scale: str
    seed: int
    jobs: tuple[tuple[int, Job], ...]  # (canonical index, job) pairs
    base_dir: str | None = None
    delta_dir: str | None = None
    #: Collect telemetry in the shard process (the coordinator sets this
    #: when a session is active on its side; the child cannot see it).
    telemetry: bool = False


@dataclass
class ShardOutcome:
    """Everything one executed shard sends back — still host-agnostic.

    ``pairs`` is the result payload (canonical index, record).  The rest is
    out-of-band telemetry the coordinator folds into its own state: the
    shard cache's session totals (hits/misses/evictions — previously these
    died with the subprocess and sharded summaries under-reported),
    the child session's metrics registry snapshot, and its buffered event
    log (re-emitted parent-side with the shard index stamped on).
    """

    pairs: list[tuple[int, ExperimentRecord]]
    cache: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    events: list[dict[str, Any]] = field(default_factory=list)


def run_shard(task: ShardTask) -> ShardOutcome:
    """Execute one shard serially; outcome carries canonical-indexed records.

    Module-level so a process pool pickles it by reference; takes and
    returns only picklable values, so any transport that can move a
    :class:`ShardTask` and a :class:`ShardOutcome` (subprocess, socket,
    object store) can host a shard.  With ``task.telemetry`` set, the
    shard runs under its own collect-only session whose registry snapshot
    and event buffer travel back in the outcome; compilation spans ride
    the records themselves either way.
    """
    cache = None
    if task.delta_dir is not None:
        cache = ShardDiskCache(task.delta_dir, base=task.base_dir)
    runner = SerialRunner(cache=cache, telemetry=task.telemetry)
    jobs = [job for _index, job in task.jobs]
    kwargs = dict(experiment=task.experiment, scale=task.scale, seed=task.seed)
    snapshot: dict[str, Any] | None = None
    events: list[dict[str, Any]] = []
    if task.telemetry:
        with obs.session() as tele:
            records = runner.run_jobs(jobs, **kwargs)
            snapshot = tele.metrics.snapshot()
            events = list(tele.events.events)
    else:
        records = runner.run_jobs(jobs, **kwargs)
    return ShardOutcome(
        pairs=[(index, record) for (index, _job), record in zip(task.jobs, records)],
        cache=cache.stats() if cache is not None else None,
        metrics=snapshot,
        events=events,
    )


class ShardedRunner(Runner):
    """Partition the sweep into shards; run each in its own subprocess.

    Jobs are assigned to ``shards`` shards by :func:`shard_for` over the
    job key — a deterministic, host-independent partition.  Each shard is
    a :class:`ShardTask` executed by :func:`run_shard` in a subprocess
    (``max_workers`` caps how many run concurrently; default: all of
    them).  With a :class:`~repro.pipeline.cache.DiskCache`, every shard
    reads through the shared base store and writes a private delta
    directory; the coordinator merges each delta back as its shard
    completes, so later runs (and later-finishing shards' *future* reruns)
    start warm.  Records stream through the same reorder buffer as every
    other backend — a shard is simply the unit of completion — and are
    byte-identical to serial for any shard count.

    A ``MemoryCache`` is rejected up front: shards are separate processes,
    and artifact exchange is exactly the disk directory contract.
    """

    name = "sharded"

    def __init__(
        self,
        max_workers: int | None = None,
        cache=None,
        shards: int | None = None,
        telemetry: bool = False,
    ) -> None:
        if cache is not None and not isinstance(cache, DiskCache):
            raise ReproError(
                "the sharded runner exchanges artifacts through DiskCache "
                "directories; use a disk cache (--cache disk --cache-dir DIR) "
                "or no cache at all"
            )
        if shards is not None and shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        super().__init__(max_workers=max_workers, cache=cache, telemetry=telemetry)
        self.shards = DEFAULT_SHARDS if shards is None else shards

    def _adopt(self, tele, record: ExperimentRecord) -> None:
        # The child already counted this record's cache provenance into the
        # registry snapshot we merged, and already emitted its job_finished
        # (re-emitted with the shard stamped on) — folding or emitting here
        # again would double everything.  Spans still need adopting: they
        # ride the record, not the snapshot.
        tele.adopt_record(record, fold_metrics=False, emit_event=False)

    def _iter_jobs(
        self,
        jobs: Sequence[Job],
        *,
        experiment: str,
        scale: str,
        seed: int,
    ) -> Iterator[ExperimentRecord]:
        jobs = list(jobs)
        self._check_jobs(jobs)
        if not jobs:
            return
        tele = obs.active()
        members: dict[int, list[tuple[int, Job]]] = {}
        for index, job in enumerate(jobs):
            members.setdefault(shard_for(job.key, self.shards), []).append(
                (index, job)
            )
        with shard_scratch(self.cache, prefix="run-") as delta_for:
            tasks = [
                ShardTask(
                    shard_index=shard,
                    experiment=experiment,
                    scale=scale,
                    seed=seed,
                    jobs=tuple(shard_jobs),
                    base_dir=str(self.cache.directory) if self.cache else None,
                    delta_dir=(
                        str(delta_for(shard))
                        if delta_for(shard) is not None
                        else None
                    ),
                    telemetry=self.telemetry or tele is not None,
                )
                for shard, shard_jobs in sorted(members.items())
            ]
            workers = self.max_workers or len(tasks)
            pool = get_pool("process", workers)
            futures = {}
            submitted = {}
            try:
                for task in tasks:
                    futures[pool.submit(run_shard, task)] = task
                    submitted[task.shard_index] = (time.time(), time.perf_counter())
                    obs.event(
                        "shard_started",
                        shard=task.shard_index,
                        experiment=experiment,
                        jobs=len(task.jobs),
                    )
                buffer = _ReorderBuffer()
                for future in as_completed(futures):
                    task = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        raise ReproError(
                            f"{experiment} shard {task.shard_index}: {exc}"
                        ) from exc
                    if self.cache is not None and task.delta_dir is not None:
                        # Fold the shard's delta in *before* yielding its
                        # records: once a consumer has seen a record, the
                        # artifacts behind it are in the warm store.
                        self.cache.merge_from(task.delta_dir)
                    if self.cache is not None and outcome.cache:
                        # The shard cache counted in its own process; fold
                        # its session totals so this runner's cache reports
                        # the whole run, not just coordinator-side lookups.
                        with self.cache._lock:
                            self.cache.hits += outcome.cache.get("hits", 0)
                            self.cache.misses += outcome.cache.get("misses", 0)
                            self.cache.evictions += outcome.cache.get(
                                "evictions", 0
                            )
                    if tele is not None:
                        self._merge_shard_telemetry(tele, task, outcome, submitted)
                    for index, record in outcome.pairs:
                        buffer.push(index, record)
                    yield from buffer.drain()
            except BaseException as exc:
                # Same fail-fast contract as the chunked pool path: a dead
                # shard must not wait behind the live ones, and a poisoned
                # pool must not serve the next sweep.
                _fail_fast(pool, futures, exc)
                raise

    @staticmethod
    def _merge_shard_telemetry(tele, task, outcome, submitted) -> None:
        """Fold one shard's out-of-band telemetry into the session."""
        if outcome.metrics:
            tele.metrics.merge(outcome.metrics)
        for child_event in outcome.events:
            fields = dict(child_event)
            ts = fields.pop("ts", None)
            kind = fields.pop("kind", "?")
            fields.setdefault("shard", task.shard_index)
            tele.events.emit(kind, _ts=ts, **fields)
        ts0, wall0 = submitted[task.shard_index]
        tele.tracer.add_span(
            f"shard:{task.shard_index}",
            ts=ts0,
            dur=time.perf_counter() - wall0,
            attrs={"jobs": len(task.jobs)},
        )
        tele.events.emit(
            "shard_merged", shard=task.shard_index, jobs=len(task.jobs)
        )


def _compile_record(
    job: CompileJob,
    outcome,
    *,
    experiment: str,
    scale: str,
    seed: int,
) -> ExperimentRecord:
    """A uniform record from one compile outcome (OnePerc or baseline)."""
    if job.baseline:
        fields = {
            **job.meta,
            "rsl_count": int(outcome.rsl_count),
            "fusion_count": int(outcome.fusion_count),
            "restarts": int(outcome.restarts),
            "capped": bool(outcome.capped),
        }
        timings: dict[str, float] = {}
    else:
        fields = {
            **job.meta,
            "rsl_count": int(outcome.rsl_count),
            "fusion_count": int(outcome.fusion_count),
            "logical_layers": int(outcome.logical_layers),
            "pl_ratio": float(outcome.pl_ratio),
        }
        timings = dict(outcome.timings_by_pass)
    # PassContext.metrics provenance: logical layers mapped, peak memory,
    # cache hit/miss counts.  Rides the outcome across pickle boundaries,
    # so process-pool runs account correctly too.
    metrics = dict(getattr(outcome, "metrics", {}) or {})
    pass_timings = getattr(outcome, "pass_timings", None)
    if pass_timings:
        # The CPU half of the wall/CPU split: summed pass wall seconds from
        # pool runners include contention, and this is what quantifies it.
        metrics["cpu_seconds_total"] = sum(
            timing.cpu_seconds or 0.0 for timing in pass_timings
        )
    return ExperimentRecord(
        experiment=experiment,
        scale=scale,
        seed=seed,
        job=job.key,
        fields=fields,
        timings=timings,
        metrics=metrics,
        spans=tuple(getattr(outcome, "spans", ()) or ()),
    )


def _fn_record(
    job: FnJob,
    out: Any,
    *,
    experiment: str,
    scale: str,
    seed: int,
) -> ExperimentRecord:
    """A record from one fn-job return value (fields, optional timings)."""
    # _named also covers normalization: a malformed fn return value must
    # name its job, not just die unpacking.
    fields, timings = _named(job, experiment, lambda: _split_output(out))
    return ExperimentRecord(
        experiment=experiment,
        scale=scale,
        seed=seed,
        job=job.key,
        fields={**job.meta, **fields},
        timings=timings,
    )


#: Runner name -> class, the CLI's ``--runner`` choices.
RUNNERS: dict[str, type[Runner]] = {
    "serial": SerialRunner,
    "thread": ThreadRunner,
    "process": ProcessRunner,
    "sharded": ShardedRunner,
}


def make_runner(
    name: str,
    max_workers: int | None = None,
    cache=None,
    shards: int | None = None,
    chunk_size: int | None = None,
) -> Runner:
    """Instantiate a runner by name, with an error that lists the options.

    Validation happens here so the CLI surfaces usage errors before any
    pool spins up: ``max_workers``/``shards``/``chunk_size`` must be >= 1
    when given (``max_workers=0`` used to silently mean "all cores"), and
    the knobs that only apply to some backends are rejected elsewhere.
    """
    try:
        runner_cls = RUNNERS[name]
    except KeyError:
        raise ReproError(
            f"unknown runner {name!r}; available runners: {', '.join(RUNNERS)}"
        ) from None
    if max_workers is not None and max_workers < 1:
        raise ReproError(f"worker count must be >= 1, got {max_workers}")
    if shards is not None and shards < 1:
        raise ReproError(f"shard count must be >= 1, got {shards}")
    if chunk_size is not None and runner_cls.pool_kind is None:
        raise ReproError(
            f"chunk size only applies to the pool runners "
            f"({', '.join(n for n, c in RUNNERS.items() if c.pool_kind)}), "
            f"not {name!r}"
        )
    if issubclass(runner_cls, ShardedRunner):
        return runner_cls(max_workers=max_workers, cache=cache, shards=shards)
    if shards is not None:
        raise ReproError(
            f"shards only applies to the sharded runner, not {name!r}"
        )
    return runner_cls(max_workers=max_workers, cache=cache, chunk_size=chunk_size)
