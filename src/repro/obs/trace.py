"""Hierarchical tracing spans: monotonic clocks, ids, parent links, exports.

A :class:`Tracer` records **spans** — named intervals with a wall-clock
start (``ts``, epoch seconds, comparable across processes on one host), a
duration (``dur``, measured with ``time.perf_counter`` so it never goes
backwards), a per-thread CPU time (``cpu``, from ``time.thread_time``), a
process-unique ``id``, and a ``parent`` link.  Spans are stored as plain
JSON-ready dicts, which is what lets them ride the same pickle channels
compilation results and experiment records already travel (a subprocess's
spans come back attached to its outcomes, not through shared state).

Two ambient lookups make instrumentation non-invasive:

* a *thread-local* tracer pushed by :func:`push_tracer` — the pipeline
  pushes its per-compilation tracer so deep code (the online wavefront
  search, the cache) can open spans with :func:`span` without threading a
  handle through every signature;
* the process-global telemetry session (see :mod:`repro.obs`) as the
  fallback, so parent-side orchestration code traces into the session
  directly.

When neither is active, :func:`span` returns a shared no-op context
manager — the disabled path allocates nothing.

Exports: :func:`write_trace_jsonl` (one JSON object per line — a ``meta``
header, one ``span`` line each, an optional trailing ``metrics`` snapshot)
and :func:`chrome_trace_obj` (the ``chrome://tracing`` / Perfetto
``trace_event`` format, complete-``"X"`` events with microsecond
timestamps).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Iterable

#: Bump when the span line schema changes; the schema checker in
#: benchmarks/telemetry_schema.py validates against this.
TRACE_SCHEMA_VERSION = 1

#: Process-wide tracer sequence: tracers adopted into one trace (one per
#: compilation) must not collide on span ids.
_TRACER_SEQ = itertools.count(1)

_TLS = threading.local()


class _NullSpan:
    """The disabled path: a reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    """One open span; closing it stamps ``dur``/``cpu`` into the record."""

    __slots__ = ("tracer", "record", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", record: dict[str, Any]) -> None:
        self.tracer = tracer
        self.record = record

    def __enter__(self) -> "_SpanContext":
        self.record["ts"] = time.time()
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.record["dur"] = time.perf_counter() - self._wall0
        self.record["cpu"] = time.thread_time() - self._cpu0
        self.tracer._close(self.record)

    # Convenience accessors for callers that reuse the span's clocks
    # (the pipeline feeds PassTiming from these instead of re-reading).

    @property
    def wall(self) -> float:
        return self.record["dur"]

    @property
    def cpu(self) -> float:
        return self.record["cpu"]


class Tracer:
    """An append-only span collection with an open-span stack.

    One tracer serves one logical unit (a compilation, a CLI session); the
    stack is therefore single-threaded by construction — concurrent
    compilations each get their own tracer and the spans merge later via
    :meth:`adopt`.  ``spans`` holds plain dicts in *completion* order.
    """

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []
        self._prefix = f"{os.getpid():x}.{next(_TRACER_SEQ):x}"
        self._seq = itertools.count(1)
        self._stack: list[str] = []
        self._lock = threading.Lock()

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the innermost open span (context manager)."""
        record: dict[str, Any] = {
            "name": name,
            "ts": 0.0,
            "dur": 0.0,
            "cpu": 0.0,
            "id": f"{self._prefix}.{next(self._seq)}",
            "parent": self._stack[-1] if self._stack else None,
            "pid": os.getpid(),
            "attrs": attrs,
        }
        self._stack.append(record["id"])
        return _SpanContext(self, record)

    def _close(self, record: dict[str, Any]) -> None:
        # Spans close LIFO in correct code, but an exception unwinding
        # several at once must not corrupt the stack: pop to the record.
        while self._stack and self._stack[-1] != record["id"]:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        with self._lock:
            self.spans.append(record)

    def add_span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        cpu: float | None = None,
        parent: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Record an already-measured interval (orchestration-side spans
        whose start and end were observed at different call sites)."""
        record = {
            "name": name,
            "ts": ts,
            "dur": dur,
            "cpu": cpu,
            "id": f"{self._prefix}.{next(self._seq)}",
            "parent": parent,
            "pid": os.getpid(),
            "attrs": dict(attrs or {}),
        }
        with self._lock:
            self.spans.append(record)
        return record

    def adopt(
        self,
        spans: Iterable[dict[str, Any]],
        root_attrs: dict[str, Any] | None = None,
    ) -> int:
        """Fold spans recorded elsewhere (another tracer, another process).

        ``root_attrs`` is merged into the attrs of adopted *root* spans
        (``parent is None``) — the adoption point knows provenance (which
        job, which shard) the recording point did not.  Returns the number
        of spans adopted.
        """
        adopted = []
        for record in spans:
            if root_attrs and record.get("parent") is None:
                record = {**record, "attrs": {**record.get("attrs", {}), **root_attrs}}
            adopted.append(record)
        with self._lock:
            self.spans.extend(adopted)
        return len(adopted)


# ---------------------------------------------------------------------------
# Ambient tracer (thread-local, with the session as fallback)
# ---------------------------------------------------------------------------


class _PushTracer:
    """Context manager installing ``tracer`` as this thread's ambient one."""

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: "Tracer | None") -> None:
        self.tracer = tracer

    def __enter__(self) -> "Tracer | None":
        self._previous = getattr(_TLS, "tracer", None)
        _TLS.tracer = self.tracer
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        _TLS.tracer = self._previous


def push_tracer(tracer: "Tracer | None") -> _PushTracer:
    """Install ``tracer`` as the thread's ambient tracer for a scope."""
    return _PushTracer(tracer)


def current_tracer() -> "Tracer | None":
    """The thread's ambient tracer, else the active session's, else None."""
    tracer = getattr(_TLS, "tracer", None)
    if tracer is not None:
        return tracer
    from repro import obs

    session = obs.active()
    return session.tracer if session is not None else None


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer; a shared no-op when disabled."""
    tracer = current_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------


def write_trace_jsonl(
    path: str | os.PathLike,
    spans: Iterable[dict[str, Any]],
    metrics: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
) -> int:
    """Write a trace file: meta line, span lines, optional metrics line.

    Every line is a self-contained JSON object tagged with ``"type"``
    (``meta`` / ``span`` / ``metrics``), so the file is streamable,
    greppable, and validated line-by-line by the schema checker.  Returns
    the number of span lines written.
    """
    count = 0
    with open(path, "w") as handle:
        header = {
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "created": time.time(),
            "pid": os.getpid(),
            **(meta or {}),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in spans:
            handle.write(json.dumps({"type": "span", **record}, sort_keys=True) + "\n")
            count += 1
        if metrics is not None:
            handle.write(
                json.dumps({"type": "metrics", **metrics}, sort_keys=True) + "\n"
            )
    return count


def chrome_trace_obj(spans: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """The ``chrome://tracing`` / Perfetto ``trace_event`` JSON object.

    Complete (``"ph": "X"``) events with microsecond timestamps rebased to
    the earliest span, so the viewer's timeline starts at zero.  Span
    attrs, ids, parent links, and CPU seconds ride in ``args``.
    """
    spans = list(spans)
    base = min((record["ts"] for record in spans), default=0.0)
    events = [
        {
            "name": record["name"],
            "ph": "X",
            "ts": (record["ts"] - base) * 1e6,
            "dur": record["dur"] * 1e6,
            "pid": record.get("pid", 0),
            "tid": record.get("pid", 0),
            "args": {
                "id": record.get("id"),
                "parent": record.get("parent"),
                "cpu": record.get("cpu"),
                **record.get("attrs", {}),
            },
        }
        for record in spans
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
