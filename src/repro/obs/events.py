"""Lifecycle event stream: an in-memory log with a per-event-flush sink.

Events are the narrative half of telemetry — job started/finished, cache
hit, shard merged — one flat JSON object per event with an epoch ``ts``
and a ``kind``.  The log always buffers in memory (a subprocess returns
its buffer through the same pickle channel its records travel; the parent
re-emits with a shard tag); when a ``path`` is given, every event is also
written and flushed immediately, following the per-record-flush discipline
of :mod:`repro.experiments.streams` — the file is tail-able mid-run and
survives a crash with everything emitted so far.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Any

#: Bump when the event schema changes; validated by
#: benchmarks/telemetry_schema.py.
EVENTS_SCHEMA_VERSION = 1


class EventLog:
    """Append-only event buffer with an optional flush-per-line JSONL sink."""

    def __init__(self, path: str | None = None) -> None:
        self.events: list[dict[str, Any]] = []
        self.path = path
        self._handle: IO[str] | None = open(path, "w") if path else None
        self._lock = threading.Lock()

    def emit(self, kind: str, _ts: float | None = None, **fields: Any) -> dict[str, Any]:
        """Record one event; ``_ts`` preserves an original timestamp when a
        parent re-emits a subprocess's buffered events."""
        event = {"ts": time.time() if _ts is None else _ts, "kind": kind, **fields}
        with self._lock:
            self.events.append(event)
            if self._handle is not None:
                self._handle.write(json.dumps(event, sort_keys=True) + "\n")
                self._handle.flush()  # the contract: every event reaches the OS
        return event

    def __len__(self) -> int:
        return len(self.events)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
