"""Trace-file analysis: per-pass / per-shard breakdowns, cache hit rates.

The reading half of the telemetry layer: :func:`load_trace` parses a JSONL
trace written by :meth:`~repro.obs.Telemetry.write_trace`,
:func:`summarize_trace` reduces it to a plain dict (per-pass wall/CPU
seconds, per-shard job counts, compile counts, cache hit rate from the
embedded metrics snapshot), and :func:`render_summary` turns that into the
fixed-width tables ``repro telemetry summarize`` prints.  The numbers
reconcile by construction: pass rows sum the very spans
``Pipeline.run`` recorded next to ``PassContext.timings``, and the cache
table reads the counters the runners folded from each record's
``cache_hits``/``cache_misses`` provenance.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.errors import ReproError
from repro.pipeline.cache import cache_summary


def load_trace(path: str | os.PathLike) -> dict[str, Any]:
    """Parse a JSONL trace file into ``{"meta", "spans", "metrics", "path"}``.

    Unknown line types are ignored (forward compatibility); a file with no
    parsable lines at all is an error, not an empty summary.
    """
    meta: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    parsed = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: not JSON: {exc}") from exc
            parsed += 1
            kind = obj.get("type")
            if kind == "meta":
                meta = obj
            elif kind == "span":
                spans.append(obj)
            elif kind == "metrics":
                metrics = obj
    if not parsed:
        raise ReproError(f"{path}: empty trace file")
    return {"meta": meta, "spans": spans, "metrics": metrics, "path": str(path)}


def load_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a JSONL events file into a list of event dicts."""
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: not JSON: {exc}") from exc
    return events


def summarize_trace(
    trace: dict[str, Any], events: Iterable[dict[str, Any]] | None = None
) -> dict[str, Any]:
    """Reduce a loaded trace (and optional events) to summary tables.

    Returns a JSON-ready dict::

        {"passes":  {name: {"calls", "wall_seconds", "cpu_seconds"}},
         "shards":  {index: {"jobs", "wall_seconds"}},
         "runs":    {experiment: {"jobs", "wall_seconds"}},
         "compiles": N,
         "cache":   {"hits", "misses", "hit_rate", "evictions"},
         "events":  {kind: count}}     # only when events are given
    """
    passes: dict[str, dict[str, float]] = {}
    shards: dict[int, dict[str, float]] = {}
    runs: dict[str, dict[str, float]] = {}
    compiles = 0
    for record in trace["spans"]:
        name = record.get("name", "")
        if name.startswith("pass:"):
            row = passes.setdefault(
                name[len("pass:"):],
                {"calls": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
            )
            row["calls"] += 1
            row["wall_seconds"] += float(record.get("dur") or 0.0)
            row["cpu_seconds"] += float(record.get("cpu") or 0.0)
        elif name.startswith("shard:"):
            attrs = record.get("attrs", {})
            row = shards.setdefault(
                int(name[len("shard:"):]), {"jobs": 0, "wall_seconds": 0.0}
            )
            row["jobs"] += int(attrs.get("jobs", 0))
            row["wall_seconds"] += float(record.get("dur") or 0.0)
        elif name.startswith("run:"):
            attrs = record.get("attrs", {})
            row = runs.setdefault(
                name[len("run:"):], {"jobs": 0, "wall_seconds": 0.0}
            )
            row["jobs"] += int(attrs.get("jobs", 0))
            row["wall_seconds"] += float(record.get("dur") or 0.0)
        elif name == "compile":
            compiles += 1
    counters = trace.get("metrics", {}).get("counters", {})
    cache = cache_summary(
        int(counters.get("cache.hits", 0)), int(counters.get("cache.misses", 0))
    )
    cache["evictions"] = int(counters.get("cache.evictions", 0))
    summary: dict[str, Any] = {
        "passes": passes,
        "shards": {shard: shards[shard] for shard in sorted(shards)},
        "runs": runs,
        "compiles": compiles,
        "cache": cache,
    }
    if events is not None:
        kinds: dict[str, int] = {}
        for item in events:
            kind = item.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        summary["events"] = dict(sorted(kinds.items()))
    return summary


def render_summary(summary: dict[str, Any]) -> str:
    """Fixed-width tables for the terminal (``repro telemetry summarize``)."""
    lines: list[str] = []
    passes = summary.get("passes", {})
    if passes:
        width = max(len("pass"), *(len(name) for name in passes))
        lines.append("== per-pass ==")
        lines.append(f"{'pass':<{width}}  {'calls':>6}  {'wall s':>10}  {'cpu s':>10}")
        for name, row in passes.items():
            lines.append(
                f"{name:<{width}}  {row['calls']:>6d}  "
                f"{row['wall_seconds']:>10.4f}  {row['cpu_seconds']:>10.4f}"
            )
    for title, key, count_label in (
        ("per-shard", "shards", "jobs"),
        ("per-run", "runs", "jobs"),
    ):
        table = summary.get(key, {})
        if not table:
            continue
        labels = [str(label) for label in table]
        width = max(len(title), *(len(label) for label in labels))
        lines.append(f"== {title} ==")
        lines.append(f"{'':<{width}}  {count_label:>6}  {'wall s':>10}")
        for label, row in table.items():
            lines.append(
                f"{str(label):<{width}}  {row['jobs']:>6d}  "
                f"{row['wall_seconds']:>10.4f}"
            )
    cache = summary.get("cache", {})
    lines.append("== cache ==")
    lines.append(
        f"hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}  "
        f"hit rate {cache.get('hit_rate', 0.0):.0%}  "
        f"evictions {cache.get('evictions', 0)}"
    )
    if summary.get("compiles"):
        lines.append(f"compilations: {summary['compiles']}")
    if "events" in summary:
        lines.append("== events ==")
        for kind, count in summary["events"].items():
            lines.append(f"{kind}: {count}")
    return "\n".join(lines)
