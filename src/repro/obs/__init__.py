"""Unified telemetry: tracing spans, a metrics registry, and event streams.

One stdlib-only subsystem answers "where did time and memory go?" across
the whole stack — pipeline passes, the artifact cache, and every runner
backend:

* **tracing** (:mod:`repro.obs.trace`) — hierarchical spans with monotonic
  durations and parent links, exportable as JSONL and as Chrome
  ``trace_event`` JSON for ``chrome://tracing``;
* **metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  (cache hits, evictions, BFS wavefront sizes, reorder-buffer depth);
* **events** (:mod:`repro.obs.events`) — a per-event-flush JSONL lifecycle
  stream (job started/finished, cache hit, shard merged).

Telemetry is strictly **out-of-band**: nothing recorded here may feed a
computation, so golden records are byte-identical with telemetry on or
off (enforced by test).  Collection is scoped to a :func:`session` — with
no session active, every module-level helper short-circuits on one global
``None`` check and the hot paths pay nothing.

Cross-process contract: a subprocess cannot see the parent's session, so
its telemetry rides the same pickle channels its results already use —
compilation spans attach to ``CompilationResult``/``ExperimentRecord``
(adopted by the consuming runner), and sharded workers return a metrics
snapshot plus their event buffer for the coordinator to merge (see
:class:`~repro.experiments.runners.ShardOutcome`).

Usage::

    from repro import obs

    with obs.session(events_path="events.jsonl") as tele:
        pipeline.compile(circuit)          # pass spans, cache counters
        tele.write_trace("trace.jsonl")    # or fmt="chrome"

    # deep instrumentation, no handle threading:
    with obs.span("bfs", nodes=n): ...
    obs.count("cache.hits"); obs.observe("online.bfs_nodes", 128)
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.events import EVENTS_SCHEMA_VERSION, EventLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    Tracer,
    chrome_trace_obj,
    current_tracer,
    push_tracer,
    span,
    write_trace_jsonl,
)

__all__ = [
    "EVENTS_SCHEMA_VERSION",
    "EventLog",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "TRACE_SCHEMA_VERSION",
    "Telemetry",
    "Tracer",
    "active",
    "chrome_trace_obj",
    "count",
    "current_tracer",
    "event",
    "gauge",
    "observe",
    "push_tracer",
    "session",
    "span",
    "write_trace_jsonl",
]

#: Valid ``--trace-format`` vocabulary (see :meth:`Telemetry.write_trace`).
TRACE_FORMATS = ("jsonl", "chrome")


class Telemetry:
    """One session's collectors: a tracer, a registry, an event log."""

    def __init__(self, events_path: str | None = None) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog(events_path)

    # -- adoption: telemetry that crossed a process boundary ----------------

    def adopt_record(
        self,
        record: Any,
        fold_metrics: bool = True,
        emit_event: bool = True,
    ) -> None:
        """Fold one experiment record's out-of-band telemetry in.

        Spans attached to the record are adopted with the job key stamped
        on their roots; cache hit/miss counts from ``record.metrics`` (the
        provenance channel that already survives every runner boundary)
        feed the ``cache.*`` counters — the **single** source of those
        counters, so serial, thread, process, and sharded runs all
        reconcile identically.  ``fold_metrics=False`` is for coordinators
        whose subprocesses already folded (the sharded runner merges the
        child registry snapshot instead — folding here too would double
        count).
        """
        spans = getattr(record, "spans", ()) or ()
        if spans:
            self.tracer.adopt(spans, root_attrs={"job": record.job})
        if fold_metrics:
            metrics = getattr(record, "metrics", None) or {}
            hits = metrics.get("cache_hits", 0)
            misses = metrics.get("cache_misses", 0)
            if hits:
                self.metrics.inc("cache.hits", hits)
            if misses:
                self.metrics.inc("cache.misses", misses)
        if emit_event:
            self.events.emit(
                "job_finished", job=record.job, experiment=record.experiment
            )

    def adopt_compile(self, result: Any, circuit: str | None = None) -> None:
        """Fold one raw compilation outcome in (the CLI compile path)."""
        spans = getattr(result, "spans", ()) or ()
        attrs = {"circuit": circuit} if circuit else None
        if spans:
            self.tracer.adopt(spans, root_attrs=attrs)
        metrics = getattr(result, "metrics", None) or {}
        for source, counter in (("cache_hits", "cache.hits"),
                                ("cache_misses", "cache.misses")):
            value = metrics.get(source, 0)
            if value:
                self.metrics.inc(counter, value)
        self.events.emit("compile_finished", circuit=circuit)

    # -- exports -------------------------------------------------------------

    def write_trace(self, path: str, fmt: str = "jsonl") -> None:
        """Export the session trace: ``jsonl`` span lines (plus the metrics
        snapshot) or a Chrome ``trace_event`` JSON object."""
        if fmt == "jsonl":
            write_trace_jsonl(path, self.tracer.spans, metrics=self.metrics.snapshot())
        elif fmt == "chrome":
            with open(path, "w") as handle:
                json.dump(chrome_trace_obj(self.tracer.spans), handle)
                handle.write("\n")
        else:
            raise ValueError(
                f"unknown trace format {fmt!r}; use one of: {', '.join(TRACE_FORMATS)}"
            )

    def close(self) -> None:
        self.events.close()


# ---------------------------------------------------------------------------
# The active session
# ---------------------------------------------------------------------------

_ACTIVE: Telemetry | None = None
_ACTIVE_LOCK = threading.Lock()


def active() -> Telemetry | None:
    """The process's active telemetry session, or None (the common case)."""
    return _ACTIVE


@contextmanager
def session(events_path: str | None = None) -> Iterator[Telemetry]:
    """Activate a telemetry session for a scope (reentrant: nested sessions
    stack, the inner one collecting until it exits)."""
    global _ACTIVE
    tele = Telemetry(events_path=events_path)
    with _ACTIVE_LOCK:
        previous, _ACTIVE = _ACTIVE, tele
    try:
        yield tele
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous
        tele.close()


# -- module-level recording helpers (no-ops without a session) --------------


def count(name: str, value: float = 1) -> None:
    """Bump counter ``name`` on the active session, if any."""
    tele = _ACTIVE
    if tele is not None:
        tele.metrics.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active session, if any."""
    tele = _ACTIVE
    if tele is not None:
        tele.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` on the active session."""
    tele = _ACTIVE
    if tele is not None:
        tele.metrics.observe(name, value)


def event(kind: str, **fields: Any) -> None:
    """Emit a lifecycle event on the active session, if any."""
    tele = _ACTIVE
    if tele is not None:
        tele.events.emit(kind, **fields)
