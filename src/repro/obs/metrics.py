"""Process-local metrics registry: counters, gauges, histograms.

The numeric half of the telemetry layer (:mod:`repro.obs`): named
**counters** (cache hits, evictions, jobs finished), **gauges** (jobs in
flight), and **histograms** (frontier-BFS wavefront sizes, reorder-buffer
depth) with stdlib-only summary statistics — count/sum/min/max, enough for
hit-rate and latency tables without reservoir sampling.

Everything is snapshot/merge oriented: a subprocess's registry serializes
to a plain dict (:meth:`MetricsRegistry.snapshot`) that travels the same
pickle channels its records do, and the parent folds it back with
:meth:`MetricsRegistry.merge` — counters add, histograms combine, gauges
keep the receiver's value (gauges describe *this* process's live state).

When no telemetry session is active the module-level helpers in
:mod:`repro.obs` short-circuit before ever touching a registry, so the
disabled path costs one global load and a ``None`` check.
"""

from __future__ import annotations

import threading
from typing import Any


class Histogram:
    """Streaming summary of an observed value: count, sum, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge(self, other: dict[str, Any]) -> None:
        """Fold another histogram's snapshot into this one."""
        self.count += int(other.get("count", 0))
        self.total += float(other.get("sum", 0.0))
        for key, pick in (("min", min), ("max", max)):
            value = other.get(key)
            if value is None:
                continue
            mine = self.minimum if key == "min" else self.maximum
            merged = pick(mine, value) if mine is not None else value
            if key == "min":
                self.minimum = merged
            else:
                self.maximum = merged


class MetricsRegistry:
    """Named counters/gauges/histograms behind one lock.

    Lazily creating on first touch keeps call sites declaration-free:
    ``registry.inc("cache.hits")`` is the whole API.  The lock makes the
    thread runner's concurrent bumps safe; per-operation cost is one
    uncontended lock acquire — nothing on the disabled path, which never
    reaches a registry at all.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- write paths ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- read paths ----------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> dict[str, Any] | None:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram is not None else None

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON/pickle-ready copy of everything recorded."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict[str, Any] | None) -> None:
        """Fold a child process's snapshot in: counters add, histograms
        combine, gauges fill only gaps (a child's live-state gauge does not
        overwrite the parent's)."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges.setdefault(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
            histogram.merge(data)
