"""Statistics helpers for Monte-Carlo experiment results.

The paper averages results over multiple executions and the artifact warns
"slight deviation is expected in the reproduction"; this module provides the
machinery to say *how much* deviation: bootstrap confidence intervals,
repeated-run summaries, and a trend test used by the shape assertions.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class Summary:
    """Mean with a bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    samples: int

    def __str__(self) -> str:
        return f"{self.mean:.3g} [{self.low:.3g}, {self.high:.3g}] (n={self.samples})"

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng=None,
) -> Summary:
    """Bootstrap percentile interval for the mean of ``values``."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_rng(rng)
    data = np.asarray(values, dtype=float)
    if len(data) == 1:
        value = float(data[0])
        return Summary(mean=value, low=value, high=value, samples=1)
    means = rng.choice(data, size=(resamples, len(data)), replace=True).mean(axis=1)
    tail = (1.0 - confidence) / 2
    return Summary(
        mean=float(data.mean()),
        low=float(np.quantile(means, tail)),
        high=float(np.quantile(means, 1.0 - tail)),
        samples=len(data),
    )


def repeat_runs(
    runner: Callable[[int], float],
    repetitions: int,
    confidence: float = 0.95,
    rng=None,
) -> Summary:
    """Run ``runner(replica_index)`` repeatedly and summarize."""
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    values = [float(runner(index)) for index in range(repetitions)]
    return bootstrap_mean(values, confidence=confidence, rng=rng)


def monotone_fraction(series: Sequence[float], decreasing: bool = True) -> float:
    """Fraction of consecutive steps moving in the claimed direction.

    A robust trend score for noisy sweeps: 1.0 is perfectly monotone, 0.5 is
    directionless.  Ties count as conforming (plateaus are fine).
    """
    if len(series) < 2:
        raise ValueError("need at least two points for a trend")
    steps = list(zip(series, series[1:]))
    if decreasing:
        good = sum(1 for a, b in steps if b <= a)
    else:
        good = sum(1 for a, b in steps if b >= a)
    return good / len(steps)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for improvement ratios)."""
    if not values:
        raise ValueError("cannot average an empty sample")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean needs positive values")
    return float(math.exp(sum(math.log(value) for value in values) / len(values)))


def crossing_point(
    xs: Sequence[float],
    ys: Sequence[float],
    threshold: float,
) -> float | None:
    """Linear-interpolated x where an increasing series crosses ``threshold``.

    Used to locate Fig. 16 transition points and compare them across fusion
    rates.  Returns None when the series never crosses.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if y0 < threshold <= y1:
            if y1 == y0:
                return float(x1)
            return float(x0 + (threshold - y0) * (x1 - x0) / (y1 - y0))
    if ys and ys[0] >= threshold:
        return float(xs[0])
    return None
