"""Deterministic randomness plumbing.

Every stochastic component in the library (fusion outcomes, benchmark graph
generation, Monte-Carlo sweeps) draws from an explicit ``numpy`` generator.
This module centralizes seed derivation so that a single experiment seed
fans out into independent, reproducible streams for each subsystem.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Library-wide default seed used when callers do not provide one.
DEFAULT_SEED = 20240427  # ASPLOS'24 opening day.


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (uses :data:`DEFAULT_SEED`).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(int(rng))


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Uses BLAKE2 so the derived streams are statistically independent and
    stable across processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(base_seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode())
    return int.from_bytes(digest.digest(), "big") % (2**63)


class RandomStream:
    """A labelled tree of reproducible random generators.

    >>> stream = RandomStream(seed=7)
    >>> fusion_rng = stream.child("fusion").generator
    >>> qaoa_rng = stream.child("benchmarks", "qaoa", 25).generator

    Children derived with the same labels always produce the same sequence,
    and distinct label paths produce independent sequences.
    """

    def __init__(self, seed: int | None = None) -> None:
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self._generator: np.random.Generator | None = None

    @property
    def generator(self) -> np.random.Generator:
        """The stream's generator (created lazily, then cached)."""
        if self._generator is None:
            self._generator = np.random.default_rng(self.seed)
        return self._generator

    def child(self, *labels: object) -> "RandomStream":
        """A new independent stream identified by ``labels``."""
        return RandomStream(derive_seed(self.seed, *labels))

    def spawn(self, count: int, *labels: object) -> list["RandomStream"]:
        """``count`` independent child streams, for parallel replicas."""
        return [self.child(*labels, index) for index in range(count)]
