"""Disjoint-set union (union-find) with path compression and union by size.

The online renormalization pass (Section 5.1 of the paper) checks long-range
connectivity of the percolated physical graph state with "a disjoint-set data
structure to reduce the complexity"; this is that structure.  It is generic
over hashable elements so the same implementation serves grid qubits,
renormalized nodes and percolation clusters.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Generic, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet(Generic[T]):
    """Union-find over arbitrary hashable elements.

    Elements are added lazily by :meth:`add` or implicitly by :meth:`union`
    and :meth:`find`.  Amortized near-constant time per operation.
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._component_count = 0
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: T) -> bool:
        return element in self._parent

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint components among the added elements."""
        return self._component_count

    def add(self, element: T) -> bool:
        """Add ``element`` as a singleton set.

        Returns ``True`` if the element was new, ``False`` if already present.
        """
        if element in self._parent:
            return False
        self._parent[element] = element
        self._size[element] = 1
        self._component_count += 1
        return True

    def find(self, element: T) -> T:
        """Return the canonical representative of ``element``'s set.

        The element is added as a singleton if it was not present.
        """
        self.add(element)
        root = element
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the walk directly at the root.
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: T, b: T) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if already together.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._component_count -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """Whether ``a`` and ``b`` are in the same set (adds them if absent)."""
        return self.find(a) == self.find(b)

    def component_size(self, element: T) -> int:
        """Size of the set containing ``element``."""
        return self._size[self.find(element)]

    def components(self) -> dict[T, list[T]]:
        """Map each root to the list of elements in its component."""
        grouped: dict[T, list[T]] = {}
        for element in self._parent:
            grouped.setdefault(self.find(element), []).append(element)
        return grouped

    def largest_component(self) -> list[T]:
        """Elements of the largest component (empty list if no elements)."""
        if not self._parent:
            return []
        groups = self.components()
        return max(groups.values(), key=len)
