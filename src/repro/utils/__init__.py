"""Shared foundations: disjoint sets, RNG streams, grid geometry, tables."""

from repro.utils.dsu import DisjointSet
from repro.utils.rng import RandomStream, derive_seed, ensure_rng
from repro.utils.gridgeom import (
    Coord2D,
    Coord3D,
    grid_neighbors4,
    grid_neighbors8,
    in_bounds,
    manhattan,
)
from repro.utils.tables import TextTable

__all__ = [
    "DisjointSet",
    "RandomStream",
    "derive_seed",
    "ensure_rng",
    "Coord2D",
    "Coord3D",
    "grid_neighbors4",
    "grid_neighbors8",
    "in_bounds",
    "manhattan",
    "TextTable",
]
