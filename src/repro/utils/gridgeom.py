"""Small geometry helpers for 2D resource state layers and (2+1)-D lattices.

Coordinates follow the paper's convention: an RSL is an ``N x N`` grid indexed
by ``(row, col)``; the third coordinate, when present, is the layer index
along the time dimension.
"""

from __future__ import annotations

from collections.abc import Iterator

Coord2D = tuple[int, int]
Coord3D = tuple[int, int, int]

#: 4-neighbourhood offsets (up, down, left, right).
OFFSETS4: tuple[Coord2D, ...] = ((-1, 0), (1, 0), (0, -1), (0, 1))

#: 8-neighbourhood offsets (4-neighbourhood plus diagonals).
OFFSETS8: tuple[Coord2D, ...] = OFFSETS4 + ((-1, -1), (-1, 1), (1, -1), (1, 1))


def in_bounds(coord: Coord2D, rows: int, cols: int | None = None) -> bool:
    """Whether ``coord`` lies inside a ``rows x cols`` grid (square if cols None)."""
    if cols is None:
        cols = rows
    row, col = coord
    return 0 <= row < rows and 0 <= col < cols


def grid_neighbors4(coord: Coord2D, rows: int, cols: int | None = None) -> Iterator[Coord2D]:
    """In-bounds 4-neighbours of ``coord``."""
    if cols is None:
        cols = rows
    row, col = coord
    for drow, dcol in OFFSETS4:
        nrow, ncol = row + drow, col + dcol
        if 0 <= nrow < rows and 0 <= ncol < cols:
            yield (nrow, ncol)


def grid_neighbors8(coord: Coord2D, rows: int, cols: int | None = None) -> Iterator[Coord2D]:
    """In-bounds 8-neighbours of ``coord``."""
    if cols is None:
        cols = rows
    row, col = coord
    for drow, dcol in OFFSETS8:
        nrow, ncol = row + drow, col + dcol
        if 0 <= nrow < rows and 0 <= ncol < cols:
            yield (nrow, ncol)


def manhattan(a: Coord2D, b: Coord2D) -> int:
    """Manhattan (L1) distance between two 2D coordinates."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def iter_grid(rows: int, cols: int | None = None) -> Iterator[Coord2D]:
    """Row-major iteration over all coordinates of a grid."""
    if cols is None:
        cols = rows
    for row in range(rows):
        for col in range(cols):
            yield (row, col)
