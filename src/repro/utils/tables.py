"""Plain-text table rendering for the experiment harness.

The paper's evaluation is delivered as tables (Table 2, Table 3) and figure
series; :class:`TextTable` renders the reproduced rows in the same layout so
EXPERIMENTS.md and the bench output are directly comparable to the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_cell(value: object) -> str:
    """Render one cell: thousands separators for ints, 3 sig. figs for floats."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


class TextTable:
    """Accumulate rows, then render a fixed-width ASCII/markdown table."""

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_cell(value) for value in values])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def render(self, markdown: bool = False) -> str:
        """Render the table as text (markdown pipes if ``markdown``)."""
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
            if markdown:
                return "| " + " | ".join(padded) + " |"
            return "  ".join(padded)

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.columns))
        if markdown:
            lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
        else:
            lines.append("  ".join("-" * width for width in widths))
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def render_csv(self) -> str:
        """Render as CSV (for plotting the reproduced figures elsewhere).

        Commas and quotes inside cells are escaped per RFC 4180.
        """

        def escape(cell: str) -> str:
            if any(ch in cell for ch in ',"\n'):
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(escape(name) for name in self.columns)]
        lines.extend(",".join(escape(cell) for cell in row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
