"""ASCII visualization of lattices, renormalization paths and IR layers.

Terminal-friendly renderers for the three structures people most often want
to *look at* while working with the compiler: the percolated physical layer,
the carved renormalization paths, and the layers of a FlexLattice IR
program.  All functions return plain strings.
"""

from __future__ import annotations

from repro.ir.flexlattice import ROLE_ANCILLA, ROLE_GRAPH, ROLE_WORLDLINE, FlexLatticeIR
from repro.online.percolation import PercolatedLattice
from repro.online.renormalize import RenormalizationResult

#: Glyphs for lattice rendering.
GLYPH_DEAD = "."
GLYPH_ALIVE = "o"
GLYPH_VERTICAL = "|"
GLYPH_HORIZONTAL = "-"
GLYPH_NODE = "+"

#: Glyphs for IR layer rendering.
GLYPH_EMPTY = "."
GLYPH_GRAPH = "G"
GLYPH_WORLDLINE = "W"
GLYPH_ANCILLA = "a"


def render_lattice(lattice: PercolatedLattice) -> str:
    """Sites only: ``o`` alive, ``.`` dead (bond detail omitted)."""
    n = lattice.size
    return "\n".join(
        "".join(
            GLYPH_ALIVE if lattice.sites[row, col] else GLYPH_DEAD
            for col in range(n)
        )
        for row in range(n)
    )


def render_renormalization(
    lattice: PercolatedLattice,
    result: RenormalizationResult,
) -> str:
    """Carved paths over the lattice: ``|``/``-`` paths, ``+`` logical nodes."""
    n = lattice.size
    canvas = [
        [
            GLYPH_ALIVE if lattice.sites[row, col] else GLYPH_DEAD
            for col in range(n)
        ]
        for row in range(n)
    ]
    for path in result.vertical_paths:
        for row, col in path:
            canvas[row][col] = GLYPH_VERTICAL
    for path in result.horizontal_paths:
        for row, col in path:
            canvas[row][col] = (
                GLYPH_NODE if canvas[row][col] == GLYPH_VERTICAL else GLYPH_HORIZONTAL
            )
    for coord in result.node_sites.values():
        canvas[coord[0]][coord[1]] = GLYPH_NODE
    return "\n".join("".join(row) for row in canvas)


def render_ir_layer(ir: FlexLatticeIR, layer: int) -> str:
    """One virtual-hardware layer: ``G`` program node, ``W`` worldline,
    ``a`` ancilla wire, ``.`` unused.  Spatial edges are implied by
    adjacency of non-empty cells (the mapper only wires neighbours)."""
    glyph_for = {
        ROLE_GRAPH: GLYPH_GRAPH,
        ROLE_WORLDLINE: GLYPH_WORLDLINE,
        ROLE_ANCILLA: GLYPH_ANCILLA,
    }
    canvas = [[GLYPH_EMPTY] * ir.width for _ in range(ir.width)]
    for node in ir.layer_nodes(layer):
        row, col, _layer = node.coord
        canvas[row][col] = glyph_for[node.role]
    return "\n".join("".join(row) for row in canvas)


def render_ir(ir: FlexLatticeIR, max_layers: int | None = None) -> str:
    """All (or the first ``max_layers``) layers of an IR program, stacked."""
    count = ir.layer_count if max_layers is None else min(max_layers, ir.layer_count)
    blocks = []
    for layer in range(count):
        nodes = ir.layer_nodes(layer)
        temporal_in = sum(
            1 for _earlier, later in ir.temporal_edges() if later[2] == layer
        )
        blocks.append(
            f"layer {layer} ({len(nodes)} nodes, {temporal_in} temporal in)\n"
            + render_ir_layer(ir, layer)
        )
    if count < ir.layer_count:
        blocks.append(f"... ({ir.layer_count - count} more layers)")
    return "\n\n".join(blocks)


def render_demand_profile(demands) -> str:
    """Sparkline-ish view of per-layer connection demand."""
    lines = []
    for index, demand in enumerate(demands):
        bar = "#" * demand.adjacent_connections + "%" * demand.cross_connections
        lines.append(f"{index:4d} {bar}")
    return "\n".join(lines)
