"""Exception hierarchy for the OnePerc reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the compiler with a single ``except`` clause
while still distinguishing the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphStateError(ReproError):
    """Invalid operation on a graph state (missing qubit, bad fusion, ...)."""


class CircuitError(ReproError):
    """Malformed circuit or gate application (bad qubit index, arity, ...)."""


class TranslationError(ReproError):
    """Circuit -> measurement-pattern translation failed."""


class HardwareError(ReproError):
    """Hardware model misconfiguration (bad RSL size, degrees, lifetime)."""


class RenormalizationError(ReproError):
    """2D renormalization could not run with the given parameters."""


class IRError(ReproError):
    """FlexLattice IR constraint violation."""


class InstructionError(IRError):
    """Invalid intermediate-level instruction or instruction sequence."""


class MappingError(ReproError):
    """Offline mapping could not place or route the program graph state."""


class MemoryBudgetExceeded(MappingError):
    """The mapper's classical-memory accounting exceeded the configured budget.

    Mirrors the '-' entries of Table 3: without the refresh mechanism, large
    benchmarks cannot be compiled within a 32 GB budget.
    """

    def __init__(self, used_bytes: int, budget_bytes: int) -> None:
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"classical memory accounting used {used_bytes} bytes, "
            f"exceeding the budget of {budget_bytes} bytes"
        )


class CompilationError(ReproError):
    """End-to-end compilation failed."""


class BaselineExploded(ReproError):
    """The OneQ repeat-until-success baseline hit its #RSL cap.

    The paper reports these entries as '> 10^6' in Table 2; callers should
    catch this and record the cap rather than treating it as a crash.
    """

    def __init__(self, cap: int, rsl_consumed: int, fusions: int) -> None:
        self.cap = cap
        self.rsl_consumed = rsl_consumed
        self.fusions = fusions
        super().__init__(
            f"baseline exceeded the cap of {cap} resource state layers "
            f"(consumed {rsl_consumed}, {fusions} fusions attempted)"
        )
