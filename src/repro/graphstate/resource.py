"""Star-like resource states, the hardware's native entanglement unit.

Practical photonic hardware periodically emits small identical graph states
(Section 2.2).  The paper evaluates with *star-like* resource states: one
root qubit connected to ``size - 1`` leaf qubits (a GHZ state up to local
Cliffords).  The main experiments use 4-qubit stars (3 leaves); the
sensitivity studies use up to 7-qubit stars (6 leaves), which natively have
enough degree for 3D lattices.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.graphstate.graph import GraphState

#: Minimum meaningful star size: one root plus one leaf.
MIN_RESOURCE_STATE_SIZE = 2


@dataclass(frozen=True)
class ResourceStateSpec:
    """Immutable description of the hardware's resource state.

    ``size`` counts all photonic qubits, so a ``size``-qubit star has a root
    of degree ``size - 1`` and ``size - 1`` leaves of degree 1.
    """

    size: int = 4

    def __post_init__(self) -> None:
        if self.size < MIN_RESOURCE_STATE_SIZE:
            raise HardwareError(
                f"resource state needs >= {MIN_RESOURCE_STATE_SIZE} qubits, "
                f"got {self.size}"
            )

    @property
    def leaf_count(self) -> int:
        """Number of degree-1 qubits."""
        return self.size - 1

    @property
    def max_degree(self) -> int:
        """Degree of the root qubit."""
        return self.size - 1

    def sufficient_for_lattice(self, lattice_degree: int) -> bool:
        """Whether one star can occupy a ``lattice_degree``-degree lattice site.

        Forming a 2D square lattice needs degree 4; a 3D cubic lattice needs
        degree 6 (Section 4.1).  The comparison is against the *root* degree
        because the root is what survives leaf-leaf fusions as a lattice node.
        """
        return self.max_degree >= lattice_degree

    def merges_needed_for_degree(self, lattice_degree: int) -> int:
        """How many stars must be root-leaf merged to reach ``lattice_degree``.

        A successful root-leaf fusion of two ``d``-degree stars yields a
        ``2d - 1``-degree star (Section 4.1: two 4-degree states produce a
        7-degree state).  Returns the number of stars (>= 1) in the merged
        unit.
        """
        stars = 1
        degree = self.max_degree
        while degree < lattice_degree:
            # Each extra star contributes its root degree minus the leaf and
            # root consumed by the merging fusion.
            degree += self.max_degree - 1
            stars += 1
        return stars


@dataclass
class ResourceStateInstance:
    """One emitted resource state with concrete node ids inside a larger graph."""

    root: Hashable
    leaves: list[Hashable] = field(default_factory=list)

    @property
    def qubits(self) -> list[Hashable]:
        """All node ids, root first."""
        return [self.root, *self.leaves]

    @property
    def size(self) -> int:
        return 1 + len(self.leaves)


def make_star(
    graph: GraphState,
    root: Hashable,
    leaves: list[Hashable],
) -> ResourceStateInstance:
    """Add a star resource state with the given node ids to ``graph``."""
    if not leaves:
        raise HardwareError("a star resource state needs at least one leaf")
    graph.add_node(root)
    for leaf in leaves:
        graph.add_edge(root, leaf)
    return ResourceStateInstance(root=root, leaves=list(leaves))


def emit_star(
    graph: GraphState,
    spec: ResourceStateSpec,
    tag: Hashable,
) -> ResourceStateInstance:
    """Emit a fresh ``spec.size``-qubit star whose node ids are ``(tag, k)``.

    ``k = 0`` is the root; ``k = 1 .. size-1`` are leaves.  ``tag`` is
    typically an (RSL index, row, col) triple so node ids are globally unique
    across the space-time array of resource states.
    """
    root = (tag, 0)
    leaves = [(tag, index) for index in range(1, spec.size)]
    return make_star(graph, root, leaves)
