"""Graph states and their rewrite rules.

A graph state ``|G>`` over a graph ``G = (V, E)`` is the joint +1 eigenstate
of the stabilizers ``S_i = X_i (prod_{j in N(i)} Z_j)`` (Section 2.1 of the
paper).  Everything the compiler does to quantum states — Z-measuring out
redundant qubits, local complementation to remove irregular structures, and
type-II fusions — acts on ``|G>`` purely through graph rewrites, so this class
is the workhorse of both the online and offline passes.

The rewrite rules implemented here are the standard ones (Hein et al. 2006):

* ``Z``-measurement of ``v``: delete ``v`` and its edges.
* ``Y``-measurement of ``v``: local-complement at ``v``, then delete ``v``.
* ``X``-measurement of ``v``: local-complement at a chosen neighbour ``b``,
  ``Y``-measure ``v``, then local-complement at ``b`` again.
* local complementation ``tau_v``: toggle every edge among the neighbours
  of ``v``.

All rules are exact up to local Clifford corrections on the remaining qubits;
the corrections are tracked separately by :mod:`repro.graphstate.local_ops`
and validated against the stabilizer tableau in the test-suite.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations
from typing import TypeVar

from repro.errors import GraphStateError

Node = TypeVar("Node", bound=Hashable)


class GraphState:
    """A graph state represented by adjacency sets over hashable node ids.

    The class is deliberately mutable: the online pass performs millions of
    in-place rewrites per resource state layer, so copy-on-write semantics
    would dominate the runtime.  Use :meth:`copy` where a snapshot is needed.
    """

    def __init__(self, edges: Iterable[tuple[Hashable, Hashable]] = ()) -> None:
        self._adjacency: dict[Hashable, set[Hashable]] = {}
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adjacency)

    @property
    def node_count(self) -> int:
        """Number of qubits in the state."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of entangling edges."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def nodes(self) -> list[Hashable]:
        """All node ids (insertion-ordered)."""
        return list(self._adjacency)

    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """All edges, each reported once."""
        seen: list[tuple[Hashable, Hashable]] = []
        visited: set[Hashable] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                if v not in visited:
                    seen.append((u, v))
            visited.add(u)
        return seen

    def add_node(self, node: Hashable) -> None:
        """Add an isolated qubit in the ``|+>`` state (idempotent)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Entangle ``u`` and ``v`` with a CZ edge (idempotent)."""
        if u == v:
            raise GraphStateError(f"self-loop on {u!r} is not a valid CZ edge")
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge between ``u`` and ``v`` (must exist)."""
        try:
            self._adjacency[u].remove(v)
            self._adjacency[v].remove(u)
        except KeyError as exc:
            raise GraphStateError(f"no edge between {u!r} and {v!r}") from exc

    def toggle_edge(self, u: Hashable, v: Hashable) -> None:
        """Flip the presence of edge ``(u, v)`` — the CZ action on graph states."""
        if u == v:
            raise GraphStateError(f"self-loop on {u!r} is not a valid CZ edge")
        if v in self._adjacency.get(u, ()):
            self.remove_edge(u, v)
        else:
            self.add_edge(u, v)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``u`` and ``v`` are entangled."""
        return v in self._adjacency.get(u, ())

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """A copy of the neighbour set of ``node``."""
        try:
            return set(self._adjacency[node])
        except KeyError as exc:
            raise GraphStateError(f"unknown qubit {node!r}") from exc

    def degree(self, node: Hashable) -> int:
        """Number of neighbours of ``node``."""
        try:
            return len(self._adjacency[node])
        except KeyError as exc:
            raise GraphStateError(f"unknown qubit {node!r}") from exc

    def remove_node(self, node: Hashable) -> None:
        """Delete a qubit and all its edges (the ``Z``-measurement rule)."""
        try:
            neighbors = self._adjacency.pop(node)
        except KeyError as exc:
            raise GraphStateError(f"unknown qubit {node!r}") from exc
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(node)

    # ------------------------------------------------------------------
    # Rewrite rules
    # ------------------------------------------------------------------

    def local_complement(self, node: Hashable) -> None:
        """Apply ``tau_node``: toggle all edges among the neighbours of ``node``.

        This is the graph action of the local Clifford
        ``U_v(G) = exp(-i pi/4 X_v) prod_{u in N(v)} exp(i pi/4 Z_u)``
        (Section 4.2 of the paper).
        """
        nbrs = sorted(self.neighbors(node), key=repr)
        for u, v in combinations(nbrs, 2):
            self.toggle_edge(u, v)

    def measure_z(self, node: Hashable) -> None:
        """Measure ``node`` in the Z basis: remove it from the graph.

        Z-measurements are how the reshaping pass eliminates redundant qubits
        of the random physical graph state (Section 1, feature 3).
        """
        self.remove_node(node)

    def measure_y(self, node: Hashable) -> None:
        """Measure ``node`` in the Y basis: local-complement, then remove."""
        self.local_complement(node)
        self.remove_node(node)

    def measure_x(self, node: Hashable, special_neighbor: Hashable | None = None) -> None:
        """Measure ``node`` in the X basis.

        Uses the standard rule ``tau_b . tau_node . tau_b`` with a designated
        neighbour ``b`` (any neighbour gives locally-equivalent results).  An
        isolated node is simply removed (its X-measurement is deterministic).
        """
        nbrs = self.neighbors(node)
        if not nbrs:
            self.remove_node(node)
            return
        if special_neighbor is None:
            special_neighbor = min(nbrs, key=repr)
        elif special_neighbor not in nbrs:
            raise GraphStateError(
                f"{special_neighbor!r} is not a neighbour of {node!r}"
            )
        self.local_complement(special_neighbor)
        self.measure_y(node)
        self.local_complement(special_neighbor)

    # ------------------------------------------------------------------
    # Queries used by the compiler passes
    # ------------------------------------------------------------------

    def connected_components(self) -> list[set[Hashable]]:
        """All connected components, largest first."""
        remaining = set(self._adjacency)
        components: list[set[Hashable]] = []
        while remaining:
            start = next(iter(remaining))
            stack = [start]
            component = {start}
            while stack:
                node = stack.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
            remaining -= component
        components.sort(key=len, reverse=True)
        return components

    def largest_component(self) -> set[Hashable]:
        """Nodes of the largest connected component (empty set if empty graph)."""
        components = self.connected_components()
        return components[0] if components else set()

    def subgraph(self, nodes: Iterable[Hashable]) -> "GraphState":
        """The induced subgraph on ``nodes`` as a new :class:`GraphState`."""
        keep = set(nodes)
        sub = GraphState()
        for node in keep:
            if node not in self._adjacency:
                raise GraphStateError(f"unknown qubit {node!r}")
            sub.add_node(node)
        for node in keep:
            for neighbor in self._adjacency[node]:
                if neighbor in keep:
                    sub.add_edge(node, neighbor)
        return sub

    def copy(self) -> "GraphState":
        """Deep copy of the graph structure (node ids are shared)."""
        clone = GraphState()
        clone._adjacency = {node: set(nbrs) for node, nbrs in self._adjacency.items()}
        return clone

    def relabeled(self, mapping: dict[Hashable, Hashable]) -> "GraphState":
        """A copy with node ids sent through ``mapping`` (identity if absent)."""
        clone = GraphState()
        for node in self._adjacency:
            clone.add_node(mapping.get(node, node))
        for u, v in self.edges():
            clone.add_edge(mapping.get(u, u), mapping.get(v, v))
        if len(clone) != len(self):
            raise GraphStateError("relabeling collapsed distinct nodes")
        return clone

    def is_isomorphic_as_labelled(self, other: "GraphState") -> bool:
        """Whether both states have identical node sets and edge sets."""
        if set(self._adjacency) != set(other._adjacency):
            return False
        return all(
            self._adjacency[node] == other._adjacency[node]
            for node in self._adjacency
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphState):
            return NotImplemented
        return self.is_isomorphic_as_labelled(other)

    def __repr__(self) -> str:
        return (
            f"GraphState(nodes={self.node_count}, edges={self.edge_count})"
        )
