"""Graph states, fusions, local-Clifford bookkeeping and the stabilizer oracle."""

from repro.graphstate.graph import GraphState
from repro.graphstate.fusion import (
    FusionOutcome,
    apply_fusion,
    apply_fusion_sampled,
    classify_fusion,
)
from repro.graphstate.resource import (
    ResourceStateInstance,
    ResourceStateSpec,
    emit_star,
    make_star,
)
from repro.graphstate.local_ops import Axis, LocalOpLedger, QuarterTurn
from repro.graphstate.stabilizer import (
    PauliProduct,
    Tableau,
    graph_from_adjacency,
)

__all__ = [
    "GraphState",
    "FusionOutcome",
    "apply_fusion",
    "apply_fusion_sampled",
    "classify_fusion",
    "ResourceStateInstance",
    "ResourceStateSpec",
    "emit_star",
    "make_star",
    "Axis",
    "LocalOpLedger",
    "QuarterTurn",
    "PauliProduct",
    "Tableau",
    "graph_from_adjacency",
]
