"""Type-II fusion semantics on graph states.

A type-II fusion jointly measures ``X (x) Z`` and ``Z (x) X`` on two photonic
qubits from different resource states (Section 2.2).  Both photons are always
destroyed; the *heralded* outcome decides what happens to the survivors:

* **Success** — the neighbourhoods of the two fused qubits become pairwise
  connected: for every ``a in N(u)`` and ``b in N(v)`` the edge ``(a, b)`` is
  toggled (Section 4.1: "the two sets of neighbouring qubits of them would be
  connected in pairwise").  For leaf-leaf fusions of star states this is the
  familiar "edge created between the two stars".
* **Failure** — each fused qubit is removed *after a local complementation on
  it* (Section 4.2: "a failed fusion on a qubit v can be regarded as removing
  the qubit after a process of local complementation on v").  Equivalently,
  each qubit is measured in the Y basis.  For a leaf qubit the LC is trivial
  and the failure just burns the leaf; for a root qubit it leaves the
  fully-connected cyclic structure of Fig. 8 that the compiler must clean up.

These graph rules are validated against the stabilizer tableau simulator in
``tests/test_stabilizer_vs_graph.py``.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.errors import GraphStateError
from repro.graphstate.graph import GraphState


@dataclass(frozen=True)
class FusionOutcome:
    """Record of one attempted fusion, for metric accounting and replay."""

    qubit_a: Hashable
    qubit_b: Hashable
    success: bool
    kind: str  # "leaf-leaf" | "root-leaf" | "root-root"


def classify_fusion(graph: GraphState, qubit_a: Hashable, qubit_b: Hashable) -> str:
    """Classify a fusion by the degrees of its operands (paper's terminology).

    Degree-1 qubits are *leaves*, higher-degree qubits are *roots*.
    """
    degree_a = graph.degree(qubit_a)
    degree_b = graph.degree(qubit_b)
    if degree_a <= 1 and degree_b <= 1:
        return "leaf-leaf"
    if degree_a <= 1 or degree_b <= 1:
        return "root-leaf"
    return "root-root"


def apply_fusion(
    graph: GraphState,
    qubit_a: Hashable,
    qubit_b: Hashable,
    success: bool,
) -> FusionOutcome:
    """Apply one type-II fusion between ``qubit_a`` and ``qubit_b`` in place.

    Both qubits are consumed regardless of the outcome.  Fusing a qubit with
    itself or two adjacent qubits is rejected: the hardware only fuses photons
    from *different* resource states, which are never entangled beforehand.
    """
    if qubit_a == qubit_b:
        raise GraphStateError("cannot fuse a qubit with itself")
    if graph.has_edge(qubit_a, qubit_b):
        raise GraphStateError(
            f"fusion operands {qubit_a!r}, {qubit_b!r} are already entangled; "
            "type-II fusion is only defined across resource states"
        )
    kind = classify_fusion(graph, qubit_a, qubit_b)

    if success:
        neighbors_a = graph.neighbors(qubit_a)
        neighbors_b = graph.neighbors(qubit_b)
        graph.remove_node(qubit_a)
        graph.remove_node(qubit_b)
        for a in neighbors_a:
            for b in neighbors_b:
                if a != b:
                    graph.toggle_edge(a, b)
    else:
        # Failure destroys each photon after a local complementation on it
        # (the Y-measurement rule).  The two qubits are non-adjacent, so the
        # two removals commute.
        graph.measure_y(qubit_a)
        graph.measure_y(qubit_b)

    return FusionOutcome(qubit_a, qubit_b, success, kind)


def apply_fusion_sampled(
    graph: GraphState,
    qubit_a: Hashable,
    qubit_b: Hashable,
    success_probability: float,
    rng,
) -> FusionOutcome:
    """Sample a heralded outcome at ``success_probability`` and apply it."""
    if not 0.0 <= success_probability <= 1.0:
        raise GraphStateError(
            f"fusion success probability {success_probability} outside [0, 1]"
        )
    success = bool(rng.random() < success_probability)
    return apply_fusion(graph, qubit_a, qubit_b, success)
