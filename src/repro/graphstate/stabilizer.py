"""Aaronson–Gottesman stabilizer tableau simulator.

The graph rewrite rules in :mod:`repro.graphstate.graph` and
:mod:`repro.graphstate.fusion` are *claims* about what measurements and
fusions do to graph states.  This module provides an independent ground truth:
a binary-symplectic CHP tableau (Aaronson & Gottesman 2004) extended with

* measurement of arbitrary Hermitian Pauli products — enough to execute a
  type-II fusion as the joint measurement of ``X (x) Z`` and ``Z (x) X``; and
* extraction of the graph underlying a stabilizer state (Van den Nest 2004),
  so tableau evolution can be compared edge-for-edge with the rewrite rules.

The test-suite uses it to verify local complementation, X/Y/Z measurement
rules, and both fusion branches on randomly generated states.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphStateError
from repro.graphstate.graph import GraphState


class PauliProduct:
    """A Hermitian Pauli product ``(-1)^sign_bit * prod_j P_j``.

    Stored in the binary-symplectic convention: qubit ``j`` carries
    ``X^{x[j]} Z^{z[j]}`` with an implicit ``i`` for each ``Y`` (``x = z = 1``),
    so ``+Y`` has ``sign_bit = 0``.
    """

    def __init__(self, num_qubits: int) -> None:
        self.x = np.zeros(num_qubits, dtype=np.uint8)
        self.z = np.zeros(num_qubits, dtype=np.uint8)
        self.sign_bit = 0

    @staticmethod
    def from_letters(num_qubits: int, letters: dict[int, str], sign: int = 1) -> "PauliProduct":
        """Build from ``{qubit: 'X'|'Y'|'Z'}`` and an overall sign of +/-1."""
        product = PauliProduct(num_qubits)
        for qubit, letter in letters.items():
            if not 0 <= qubit < num_qubits:
                raise GraphStateError(f"qubit {qubit} out of range for {num_qubits} qubits")
            if letter == "X":
                product.x[qubit] = 1
            elif letter == "Z":
                product.z[qubit] = 1
            elif letter == "Y":
                product.x[qubit] = 1
                product.z[qubit] = 1
            else:
                raise GraphStateError(f"unknown Pauli letter {letter!r}")
        if sign == -1:
            product.sign_bit = 1
        elif sign != 1:
            raise GraphStateError(f"sign must be +1 or -1, got {sign}")
        return product


def _phase_exponent(x1: int, z1: int, x2: int, z2: int) -> int:
    """Aaronson–Gottesman ``g``: the power of ``i`` from multiplying two Paulis."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:  # Y
        return z2 - x2
    if x1 == 1:  # X
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)  # Z


class Tableau:
    """CHP tableau over ``n`` qubits: ``2n`` rows (destabilizers then stabilizers).

    The state starts as ``|0...0>``.  Use :meth:`from_graph` for graph states.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise GraphStateError("tableau needs at least one qubit")
        self.num_qubits = num_qubits
        size = 2 * num_qubits
        self.x = np.zeros((size, num_qubits), dtype=np.uint8)
        self.z = np.zeros((size, num_qubits), dtype=np.uint8)
        self.r = np.zeros(size, dtype=np.uint8)
        for qubit in range(num_qubits):
            self.x[qubit, qubit] = 1  # destabilizer X_q
            self.z[num_qubits + qubit, qubit] = 1  # stabilizer Z_q

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_graph(
        graph: GraphState,
        node_order: Sequence | None = None,
    ) -> tuple["Tableau", dict]:
        """Prepare ``|G>`` for ``graph``; returns the tableau and node->index map."""
        nodes = list(node_order) if node_order is not None else graph.nodes()
        if set(nodes) != set(graph.nodes()):
            raise GraphStateError("node_order must cover exactly the graph's nodes")
        index = {node: position for position, node in enumerate(nodes)}
        tableau = Tableau(len(nodes))
        for qubit in range(len(nodes)):
            tableau.hadamard(qubit)
        for u, v in graph.edges():
            tableau.cz(index[u], index[v])
        return tableau, index

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------

    def hadamard(self, qubit: int) -> None:
        """Apply H: swap the X and Z columns of ``qubit``."""
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.x[:, qubit], self.z[:, qubit] = (
            self.z[:, qubit].copy(),
            self.x[:, qubit].copy(),
        )

    def phase_gate(self, qubit: int) -> None:
        """Apply S (the ``sqrt(Z)`` gate)."""
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.z[:, qubit] ^= self.x[:, qubit]

    def phase_gate_dagger(self, qubit: int) -> None:
        """Apply S^dagger."""
        self.phase_gate(qubit)
        self.phase_gate(qubit)
        self.phase_gate(qubit)

    def sqrt_x(self, qubit: int) -> None:
        """Apply ``exp(-i pi/4 X)`` up to global phase (H S H)."""
        self.hadamard(qubit)
        self.phase_gate(qubit)
        self.hadamard(qubit)

    def cnot(self, control: int, target: int) -> None:
        """Apply CNOT(control, target)."""
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def cz(self, qubit_a: int, qubit_b: int) -> None:
        """Apply CZ (conjugated CNOT)."""
        self.hadamard(qubit_b)
        self.cnot(qubit_a, qubit_b)
        self.hadamard(qubit_b)

    def pauli_z(self, qubit: int) -> None:
        """Apply the Pauli Z correction (flips signs of X-containing rows)."""
        self.r ^= self.x[:, qubit]

    def pauli_x(self, qubit: int) -> None:
        """Apply the Pauli X correction (flips signs of Z-containing rows)."""
        self.r ^= self.z[:, qubit]

    # ------------------------------------------------------------------
    # Row algebra
    # ------------------------------------------------------------------

    def _rowsum(self, target: int, source: int) -> None:
        """Row ``target`` *= row ``source``, with exact phase tracking.

        For stabilizer rows the product phase is always ``+1`` or ``-1``
        (generators commute); destabilizer rows may anticommute with the
        source, giving an odd power of ``i`` — their phases are bookkeeping
        junk that the algorithm never reads, so we just fold the phase bit.
        """
        phase = 2 * int(self.r[target]) + 2 * int(self.r[source])
        for qubit in range(self.num_qubits):
            phase += _phase_exponent(
                int(self.x[source, qubit]),
                int(self.z[source, qubit]),
                int(self.x[target, qubit]),
                int(self.z[target, qubit]),
            )
        phase %= 4
        if target >= self.num_qubits and phase not in (0, 2):
            raise GraphStateError("tableau corrupted: non-Hermitian stabilizer product")
        self.r[target] = 1 if phase in (2, 3) else 0
        self.x[target] ^= self.x[source]
        self.z[target] ^= self.z[source]

    def _anticommutes(self, row: int, pauli: PauliProduct) -> bool:
        """Whether tableau row ``row`` anticommutes with ``pauli``."""
        overlap = int(
            np.sum(
                (self.x[row] & pauli.z) ^ (self.z[row] & pauli.x)
            )
            % 2
        )
        return overlap == 1

    def _row_times_pauli_phase(self, row: int, pauli: PauliProduct) -> int:
        """Power of ``i`` (mod 4) in (row Pauli) * ``pauli``, before sign bits."""
        phase = 0
        for qubit in range(self.num_qubits):
            phase += _phase_exponent(
                int(self.x[row, qubit]),
                int(self.z[row, qubit]),
                int(pauli.x[qubit]),
                int(pauli.z[qubit]),
            )
        return phase % 4

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure_pauli(
        self,
        pauli: PauliProduct,
        rng=None,
        postselect: int | None = None,
    ) -> int:
        """Measure the Hermitian product ``pauli``; returns the outcome bit.

        ``postselect`` forces the outcome when it is random; forcing a
        deterministic measurement to the wrong value raises.  Outcome bit
        ``m`` means the post-measurement state is stabilized by
        ``(-1)^m * pauli``.
        """
        n = self.num_qubits
        anticommuting = [
            row for row in range(n, 2 * n) if self._anticommutes(row, pauli)
        ]
        if anticommuting:
            pivot = anticommuting[0]
            if postselect is not None:
                outcome = int(postselect)
            elif rng is not None:
                outcome = int(rng.integers(0, 2))
            else:
                outcome = 0
            for row in range(2 * n):
                if row != pivot and self._anticommutes(row, pauli):
                    self._rowsum(row, pivot)
            # The old pivot stabilizer becomes the matching destabilizer.
            self.x[pivot - n] = self.x[pivot].copy()
            self.z[pivot - n] = self.z[pivot].copy()
            self.r[pivot - n] = self.r[pivot]
            # The new stabilizer is (-1)^outcome * pauli.
            self.x[pivot] = pauli.x.copy()
            self.z[pivot] = pauli.z.copy()
            self.r[pivot] = (pauli.sign_bit + outcome) % 2
            return outcome

        # Deterministic branch: accumulate the stabilizer product matching
        # pauli using the destabilizer pairing, in a scratch row.
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_phase = 0  # power of i, with the 2*r convention folded in
        for destab_row in range(n):
            if self._anticommutes(destab_row, pauli):
                stab_row = destab_row + n
                phase = 0
                for qubit in range(n):
                    phase += _phase_exponent(
                        int(self.x[stab_row, qubit]),
                        int(self.z[stab_row, qubit]),
                        int(scratch_x[qubit]),
                        int(scratch_z[qubit]),
                    )
                scratch_phase = (scratch_phase + phase + 2 * int(self.r[stab_row])) % 4
                scratch_x ^= self.x[stab_row]
                scratch_z ^= self.z[stab_row]
        if not (np.array_equal(scratch_x, pauli.x) and np.array_equal(scratch_z, pauli.z)):
            raise GraphStateError("tableau corrupted: deterministic product mismatch")
        if scratch_phase not in (0, 2):
            raise GraphStateError("tableau corrupted: imaginary deterministic phase")
        outcome = ((scratch_phase // 2) + pauli.sign_bit) % 2
        if postselect is not None and postselect != outcome:
            raise GraphStateError(
                f"cannot postselect outcome {postselect}: measurement is "
                f"deterministic with outcome {outcome}"
            )
        return outcome

    def measure_letter(
        self,
        qubit: int,
        letter: str,
        rng=None,
        postselect: int | None = None,
    ) -> int:
        """Measure one qubit in a Pauli basis (``'X'``, ``'Y'`` or ``'Z'``)."""
        pauli = PauliProduct.from_letters(self.num_qubits, {qubit: letter})
        return self.measure_pauli(pauli, rng=rng, postselect=postselect)

    def fuse(
        self,
        qubit_a: int,
        qubit_b: int,
        rng=None,
        postselect: tuple[int, int] | None = (0, 0),
    ) -> tuple[int, int]:
        """Execute a *successful* type-II fusion: measure ``X_a Z_b`` then ``Z_a X_b``.

        Postselecting ``(0, 0)`` (default) gives the correction-free branch the
        graph rewrite rules describe; pass ``postselect=None`` with an ``rng``
        for random outcomes (byproducts are then Pauli corrections).
        """
        first = PauliProduct.from_letters(self.num_qubits, {qubit_a: "X", qubit_b: "Z"})
        second = PauliProduct.from_letters(self.num_qubits, {qubit_a: "Z", qubit_b: "X"})
        if postselect is None:
            return (
                self.measure_pauli(first, rng=rng),
                self.measure_pauli(second, rng=rng),
            )
        return (
            self.measure_pauli(first, rng=rng, postselect=postselect[0]),
            self.measure_pauli(second, rng=rng, postselect=postselect[1]),
        )

    # ------------------------------------------------------------------
    # Graph extraction
    # ------------------------------------------------------------------

    def extract_graph(
        self,
        keep: Iterable[int] | None = None,
    ) -> tuple[np.ndarray, list[tuple[str, int]]]:
        """Recover the graph underlying the stabilizer state on ``keep`` qubits.

        ``keep`` lists the qubits that still carry state (measured-out qubits
        are in product states stabilized by single-qubit Paulis and must be
        excluded).  Returns the adjacency matrix over ``keep`` (in the given
        order) and the local gates (``('H', q)`` / ``('S', q)``) the reduction
        applied — the state is that graph state up to those local Cliffords
        and Pauli signs.
        """
        keep_list = list(keep) if keep is not None else list(range(self.num_qubits))
        work = self._stabilizer_submatrix(keep_list)
        return _reduce_to_graph(work)

    def _stabilizer_submatrix(self, keep: list[int]) -> "_BinaryStabilizers":
        """Stabilizer generators restricted to ``keep``, eliminating the rest.

        Measured-out qubits are stabilized by single-qubit Paulis; Gaussian
        elimination removes their support from the remaining generators, after
        which rows acting trivially outside ``keep`` are the generators of the
        kept subsystem.
        """
        n = self.num_qubits
        rows_x = self.x[n:].copy()
        rows_z = self.z[n:].copy()
        rows_r = self.r[n:].copy()
        drop = [q for q in range(n) if q not in set(keep)]

        # Clear each dropped qubit's X then Z support down to (at most) one
        # generator each, parked at the end of the matrix.
        available = n
        for qubit in drop:
            for block_x in (True, False):
                block = rows_x if block_x else rows_z
                pivot = None
                for row in range(available):
                    if block[row, qubit]:
                        if pivot is None:
                            pivot = row
                        else:
                            _binary_rowsum(rows_x, rows_z, rows_r, row, pivot)
                if pivot is not None:
                    _swap_rows(rows_x, rows_z, rows_r, pivot, available - 1)
                    available -= 1

        keep_index = {qubit: position for position, qubit in enumerate(keep)}
        sub = _BinaryStabilizers(len(keep))
        out_row = 0
        for row in range(available):
            support = [
                q
                for q in range(n)
                if (rows_x[row, q] or rows_z[row, q])
            ]
            if any(q not in keep_index for q in support):
                raise GraphStateError(
                    "subsystem is entangled with dropped qubits; measure them first"
                )
            for q in support:
                sub.x[out_row, keep_index[q]] = rows_x[row, q]
                sub.z[out_row, keep_index[q]] = rows_z[row, q]
            sub.r[out_row] = rows_r[row]
            out_row += 1
        if out_row != len(keep):
            raise GraphStateError(
                f"expected {len(keep)} independent generators, found {out_row}"
            )
        return sub


class _BinaryStabilizers:
    """A bare ``k x 2k`` stabilizer generator matrix used during extraction."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.x = np.zeros((size, size), dtype=np.uint8)
        self.z = np.zeros((size, size), dtype=np.uint8)
        self.r = np.zeros(size, dtype=np.uint8)


def _binary_rowsum(x: np.ndarray, z: np.ndarray, r: np.ndarray, target: int, source: int) -> None:
    """Row product with phase tracking on a raw generator matrix."""
    phase = 2 * int(r[target]) + 2 * int(r[source])
    for qubit in range(x.shape[1]):
        phase += _phase_exponent(
            int(x[source, qubit]), int(z[source, qubit]),
            int(x[target, qubit]), int(z[target, qubit]),
        )
    phase %= 4
    if phase not in (0, 2):
        raise GraphStateError("generator matrix corrupted: non-Hermitian product")
    r[target] = 1 if phase == 2 else 0
    x[target] ^= x[source]
    z[target] ^= z[source]


def _swap_rows(x: np.ndarray, z: np.ndarray, r: np.ndarray, a: int, b: int) -> None:
    if a == b:
        return
    x[[a, b]] = x[[b, a]]
    z[[a, b]] = z[[b, a]]
    r[[a, b]] = r[[b, a]]


def _reduce_to_graph(sub: _BinaryStabilizers) -> tuple[np.ndarray, list[tuple[str, int]]]:
    """Van den Nest reduction: local H/S until stabilizers read ``X_i Z_{N(i)}``."""
    size = sub.size
    applied: list[tuple[str, int]] = []

    def apply_h(qubit: int) -> None:
        sub.r ^= sub.x[:, qubit] & sub.z[:, qubit]
        sub.x[:, qubit], sub.z[:, qubit] = (
            sub.z[:, qubit].copy(),
            sub.x[:, qubit].copy(),
        )
        applied.append(("H", qubit))

    def apply_s(qubit: int) -> None:
        sub.r ^= sub.x[:, qubit] & sub.z[:, qubit]
        sub.z[:, qubit] ^= sub.x[:, qubit]
        applied.append(("S", qubit))

    # Make the X block invertible, Hadamarding columns outside the rank
    # profile.  One Hadamard round always suffices: afterwards every column
    # is either an original pivot or carries the (independent) Z support of
    # the rank-deficient rows.
    while True:
        rank = 0
        pivot_columns: list[int] = []
        for column in range(size):
            pivot = None
            for row in range(rank, size):
                if sub.x[row, column]:
                    pivot = row
                    break
            if pivot is None:
                continue
            _swap_rows(sub.x, sub.z, sub.r, pivot, rank)
            for row in range(size):
                if row != rank and sub.x[row, column]:
                    _binary_rowsum(sub.x, sub.z, sub.r, row, rank)
            pivot_columns.append(column)
            rank += 1
        if rank == size:
            break
        free = [column for column in range(size) if column not in pivot_columns]
        progressed = False
        for column in free:
            if sub.z[rank:, column].any():
                apply_h(column)
                progressed = True
        if not progressed:
            raise GraphStateError("extraction failed: generators not independent")

    # Reorder rows so row i has its X pivot on column i.
    order = np.argsort(np.argmax(sub.x, axis=1))
    sub.x = sub.x[order]
    sub.z = sub.z[order]
    sub.r = sub.r[order]

    # Clear the Z diagonal with S gates.
    for qubit in range(size):
        if sub.z[qubit, qubit]:
            apply_s(qubit)

    adjacency = sub.z.copy()
    if not np.array_equal(adjacency, adjacency.T):
        raise GraphStateError("extraction failed: Z block is not symmetric")
    if adjacency.diagonal().any():
        raise GraphStateError("extraction failed: residual Z diagonal")
    return adjacency, applied


def graph_from_adjacency(adjacency: np.ndarray) -> GraphState:
    """Build a :class:`GraphState` (integer nodes) from an adjacency matrix."""
    graph = GraphState()
    size = adjacency.shape[0]
    for node in range(size):
        graph.add_node(node)
    for u in range(size):
        for v in range(u + 1, size):
            if adjacency[u, v]:
                graph.add_edge(u, v)
    return graph
