"""The intermediate-level instruction set (Section 6.3).

A FlexLattice IR program executes by translation to six instructions that
steer the real-time reshaping pass:

* ``map_v_node(v_node, g_node)`` — measure the node in its program basis;
* ``make_v_node_ancilla(v_node)`` — measure in X/Y as routing wire;
* ``store_v_node(v_node)`` — push its surrounding qubits into delay lines;
* ``retrieve_v_node(v_node, position)`` — pop them at a later layer;
* ``enable_spatial_v_edge(v_node, adjacent_v_node)`` — in-layer edge;
* ``enable_temporal_v_edge(v_node, adjacent_v_node)`` — inter-layer edge.

Qubits default to Z-measurement, so edges exist only where instructions
enable them.  Cross-layer edges (layer ``m`` to ``n > m + 1``) compile to a
store at ``m``, a retrieve at ``n - 1`` and a temporal edge ``n-1 -> n`` —
exactly the paper's worked example.  :class:`InstructionInterpreter` replays
a program against the virtual-hardware rules and is the legality oracle used
by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import InstructionError
from repro.ir.flexlattice import (
    ROLE_ANCILLA,
    ROLE_GRAPH,
    ROLE_WORLDLINE,
    FlexLatticeIR,
)
from repro.utils.gridgeom import Coord3D


@dataclass(frozen=True)
class MapVNode:
    v_node: Coord3D
    g_node: int


@dataclass(frozen=True)
class MakeVNodeAncilla:
    v_node: Coord3D


@dataclass(frozen=True)
class StoreVNode:
    v_node: Coord3D


@dataclass(frozen=True)
class RetrieveVNode:
    v_node: Coord3D  # the stored node's original coordinate
    position: Coord3D  # where it re-materializes


@dataclass(frozen=True)
class EnableSpatialVEdge:
    v_node: Coord3D
    adjacent_v_node: Coord3D


@dataclass(frozen=True)
class EnableTemporalVEdge:
    v_node: Coord3D
    adjacent_v_node: Coord3D


Instruction = Union[
    MapVNode,
    MakeVNodeAncilla,
    StoreVNode,
    RetrieveVNode,
    EnableSpatialVEdge,
    EnableTemporalVEdge,
]


def lower_ir(ir: FlexLatticeIR) -> list[Instruction]:
    """Translate an IR program to the instruction stream, layer by layer.

    Three temporal situations:

    * a **worldline** node (a stored node re-emerging from the virtual
      memory) lowers to ``store_v_node`` on its predecessor's layer and
      ``retrieve_v_node`` on its own layer — the retrieve *is* the node;
    * a temporal edge landing on a resident (graph/ancilla) node from the
      directly preceding layer lowers to ``enable_temporal_v_edge``;
    * a cross-layer edge landing on a resident node lowers to the paper's
      store / retrieve-at-``n-1`` / enable triple, the retrieved photons
      passing *in transit* through layer ``n - 1`` without occupying its
      resident slot (the Section 6.3 non-conflict note).
    """
    program: list[Instruction] = []
    stores: dict[int, list[Coord3D]] = {}
    transit_retrieves: dict[int, list[tuple[Coord3D, Coord3D]]] = {}
    landings: dict[int, list[tuple[Coord3D, Coord3D]]] = {}
    direct_enables: dict[int, list[tuple[Coord3D, Coord3D]]] = {}

    for earlier, later in ir.temporal_edges():
        later_node = ir.node_at(later)
        if later_node.role == ROLE_WORLDLINE:
            stores.setdefault(earlier[2], []).append(earlier)
            # The retrieve itself is emitted in the node phase of `later`'s
            # layer, keyed off the node's temporal_prev.
        elif later[2] == earlier[2] + 1:
            direct_enables.setdefault(later[2], []).append((earlier, later))
        else:
            stores.setdefault(earlier[2], []).append(earlier)
            waypoint = (later[0], later[1], later[2] - 1)
            transit_retrieves.setdefault(later[2] - 1, []).append((earlier, waypoint))
            landings.setdefault(later[2], []).append((waypoint, later))

    for layer in range(ir.layer_count):
        for node in ir.layer_nodes(layer):
            if node.role == ROLE_GRAPH:
                program.append(MapVNode(v_node=node.coord, g_node=node.g_node))
            elif node.role == ROLE_WORLDLINE:
                if node.temporal_prev is None:
                    # A home relocation: the wire end arrived spatially, so
                    # at the instruction level it is ordinary routing wire.
                    program.append(MakeVNodeAncilla(v_node=node.coord))
                else:
                    program.append(
                        RetrieveVNode(v_node=node.temporal_prev, position=node.coord)
                    )
            else:
                program.append(MakeVNodeAncilla(v_node=node.coord))
        for waypoint, later in landings.get(layer, ()):
            program.append(
                EnableTemporalVEdge(v_node=waypoint, adjacent_v_node=later)
            )
        for earlier, later in direct_enables.get(layer, ()):
            program.append(
                EnableTemporalVEdge(v_node=earlier, adjacent_v_node=later)
            )
        for key in sorted(ir.spatial_edges, key=sorted):
            a, b = sorted(key)
            if a[2] == layer:
                program.append(EnableSpatialVEdge(v_node=a, adjacent_v_node=b))
        for earlier in stores.get(layer, ()):
            program.append(StoreVNode(v_node=earlier))
        for earlier, waypoint in transit_retrieves.get(layer, ()):
            program.append(RetrieveVNode(v_node=earlier, position=waypoint))
    return program


class InstructionInterpreter:
    """Replays an instruction stream against the virtual-hardware rules.

    Rebuilds a :class:`FlexLatticeIR` from the stream while enforcing
    legality: coordinates are single-use, stores precede retrieves, temporal
    edges respect the one-per-direction rule.  ``run()`` returns the
    reconstructed IR, which tests compare against the original.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        self.ir = FlexLatticeIR(width)
        self._stored: set[Coord3D] = set()
        self._transit: dict[Coord3D, Coord3D] = {}  # waypoint -> stored coord

    def execute(self, instruction: Instruction) -> None:
        if isinstance(instruction, MapVNode):
            self.ir.add_node(instruction.v_node, ROLE_GRAPH, instruction.g_node)
        elif isinstance(instruction, MakeVNodeAncilla):
            self.ir.add_node(instruction.v_node, ROLE_ANCILLA)
        elif isinstance(instruction, StoreVNode):
            node = self.ir.node_at(instruction.v_node)
            if instruction.v_node in self._stored:
                raise InstructionError(f"{instruction.v_node} stored twice")
            if node.temporal_next is not None:
                raise InstructionError(
                    f"{instruction.v_node} already has a forward temporal edge"
                )
            self._stored.add(instruction.v_node)
        elif isinstance(instruction, RetrieveVNode):
            if instruction.v_node not in self._stored:
                raise InstructionError(
                    f"retrieve of {instruction.v_node}, which is not stored"
                )
            self._stored.discard(instruction.v_node)
            position = instruction.position
            if position[2] <= instruction.v_node[2]:
                raise InstructionError(
                    f"retrieve position {position} does not advance in time"
                )
            if (position[0], position[1]) != (
                instruction.v_node[0],
                instruction.v_node[1],
            ):
                raise InstructionError(
                    "virtual memory is per-coordinate: retrieve of "
                    f"{instruction.v_node} must re-emerge at the same 2D "
                    f"coordinate, not {position}"
                )
            if position in self._transit:
                raise InstructionError(
                    f"two retrievals in transit at {position}"
                )
            if position in self.ir.nodes:
                # A resident node already sits there: the retrieved photons
                # pass *in transit* (Section 6.3's non-conflict note) and
                # land with the next temporal enable.
                self._transit[position] = instruction.v_node
            else:
                # The retrieve re-materializes the stored node here.
                source = self.ir.node_at(instruction.v_node)
                if source.g_node is not None:
                    self.ir.add_node(position, ROLE_WORLDLINE, source.g_node)
                else:
                    self.ir.add_node(position, ROLE_ANCILLA)
                self.ir.add_temporal_edge(instruction.v_node, position)
        elif isinstance(instruction, EnableSpatialVEdge):
            self.ir.add_spatial_edge(instruction.v_node, instruction.adjacent_v_node)
        elif isinstance(instruction, EnableTemporalVEdge):
            a, b = instruction.v_node, instruction.adjacent_v_node
            if a in self._transit:
                stored = self._transit.pop(a)
                if b[2] != a[2] + 1:
                    raise InstructionError(
                        f"transit at {a} must land on the next layer, not {b}"
                    )
                self.ir.add_temporal_edge(stored, b)
            else:
                if b[2] != a[2] + 1:
                    raise InstructionError(
                        f"direct temporal edge {a}-{b} must join adjacent "
                        "layers; use store/retrieve for cross-layer edges"
                    )
                self.ir.add_temporal_edge(a, b)
        else:
            raise InstructionError(f"unknown instruction {instruction!r}")

    def run(self, program: list[Instruction]) -> FlexLatticeIR:
        for instruction in program:
            self.execute(instruction)
        if self._stored:
            raise InstructionError(
                f"program ended with nodes still stored: {sorted(self._stored)}"
            )
        if self._transit:
            raise InstructionError(
                f"program ended with photons in transit: {sorted(self._transit)}"
            )
        self.ir.validate()
        return self.ir
