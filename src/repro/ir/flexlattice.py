"""The FlexLattice intermediate representation (Section 6).

A FlexLattice IR program lives on the *virtual hardware*: consecutive layers
of fixed-size 2D lattices with a virtual memory at every 2D coordinate.  Its
structural rules (Section 6.1):

1. nodes sit at ``(row, col, layer)`` coordinates of the (2+1)-D grid;
2. nodes at the same 2D coordinate of different layers — adjacent or not —
   can be joined by *temporal* edges (non-adjacent ones ride the virtual
   memory);
3. every connection is individually on-demand, and each node has **at most
   one** temporal edge to preceding layers and **at most one** to subsequent
   layers.

Spatial edges join 4-adjacent nodes within a layer.  Nodes are either mapped
program-graph nodes or ancillas (routing wire).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.utils.gridgeom import Coord3D

#: Node roles.  A *graph* node is where a program qubit is measured; its
#: *worldline* nodes are later retrievals of the same logical qubit from the
#: virtual memory (measured as wire, but carrying the qubit's identity);
#: *ancilla* nodes are anonymous routing wire.
ROLE_GRAPH = "graph"
ROLE_WORLDLINE = "worldline"
ROLE_ANCILLA = "ancilla"


@dataclass
class VNode:
    """One virtual-hardware node of the IR program."""

    coord: Coord3D  # (row, col, layer)
    role: str = ROLE_ANCILLA
    g_node: int | None = None  # program graph node id (graph/worldline roles)
    temporal_prev: Coord3D | None = None
    temporal_next: Coord3D | None = None

    def __post_init__(self) -> None:
        if self.role not in (ROLE_GRAPH, ROLE_WORLDLINE, ROLE_ANCILLA):
            raise IRError(f"unknown node role {self.role!r}")
        if self.role in (ROLE_GRAPH, ROLE_WORLDLINE) and self.g_node is None:
            raise IRError(f"{self.role} node at {self.coord} must carry a g_node id")
        if self.role == ROLE_ANCILLA and self.g_node is not None:
            raise IRError(f"ancilla at {self.coord} cannot carry a g_node id")


class FlexLatticeIR:
    """A FlexLattice program: nodes, spatial edges, temporal edges."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise IRError(f"virtual hardware width must be >= 1, got {width}")
        self.width = width
        self.nodes: dict[Coord3D, VNode] = {}
        self.spatial_edges: set[frozenset[Coord3D]] = set()

    # ------------------------------------------------------------------

    @property
    def layer_count(self) -> int:
        """Number of layers touched (max layer index + 1)."""
        if not self.nodes:
            return 0
        return 1 + max(coord[2] for coord in self.nodes)

    def _check_coord(self, coord: Coord3D) -> None:
        row, col, layer = coord
        if not (0 <= row < self.width and 0 <= col < self.width):
            raise IRError(f"{coord} outside the {self.width}x{self.width} layer")
        if layer < 0:
            raise IRError(f"negative layer in {coord}")

    def add_node(self, coord: Coord3D, role: str, g_node: int | None = None) -> VNode:
        """Place a node; each coordinate can be used at most once."""
        self._check_coord(coord)
        if coord in self.nodes:
            raise IRError(f"coordinate {coord} is already occupied")
        node = VNode(coord=coord, role=role, g_node=g_node)
        self.nodes[coord] = node
        return node

    def node_at(self, coord: Coord3D) -> VNode:
        try:
            return self.nodes[coord]
        except KeyError as exc:
            raise IRError(f"no node at {coord}") from exc

    def add_spatial_edge(self, a: Coord3D, b: Coord3D) -> None:
        """Join two 4-adjacent nodes of the same layer."""
        node_a, node_b = self.node_at(a), self.node_at(b)
        if a[2] != b[2]:
            raise IRError(f"spatial edge {a}-{b} spans layers")
        if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
            raise IRError(f"spatial edge {a}-{b} joins non-adjacent coordinates")
        key = frozenset((a, b))
        if key in self.spatial_edges:
            raise IRError(f"spatial edge {a}-{b} already enabled")
        self.spatial_edges.add(key)
        del node_a, node_b

    def add_temporal_edge(self, earlier: Coord3D, later: Coord3D) -> None:
        """Join two nodes at the same 2D coordinate on different layers.

        Enforces rule 3: one temporal edge per direction per node.
        """
        node_earlier, node_later = self.node_at(earlier), self.node_at(later)
        if (earlier[0], earlier[1]) != (later[0], later[1]):
            raise IRError(
                f"temporal edge {earlier}-{later} must keep the 2D coordinate"
            )
        if not earlier[2] < later[2]:
            raise IRError(f"temporal edge {earlier}-{later} must go forward in time")
        if node_earlier.temporal_next is not None:
            raise IRError(f"{earlier} already has a temporal edge to a later layer")
        if node_later.temporal_prev is not None:
            raise IRError(f"{later} already has a temporal edge to an earlier layer")
        node_earlier.temporal_next = later
        node_later.temporal_prev = earlier

    # ------------------------------------------------------------------

    def temporal_edges(self) -> list[tuple[Coord3D, Coord3D]]:
        """All temporal edges as (earlier, later) pairs."""
        return sorted(
            (node.coord, node.temporal_next)
            for node in self.nodes.values()
            if node.temporal_next is not None
        )

    def layer_nodes(self, layer: int) -> list[VNode]:
        """Nodes on ``layer``, row-major."""
        return sorted(
            (node for node in self.nodes.values() if node.coord[2] == layer),
            key=lambda node: node.coord,
        )

    def graph_nodes(self) -> dict[int, Coord3D]:
        """Map from program graph node id to its coordinate."""
        placed: dict[int, Coord3D] = {}
        for node in self.nodes.values():
            if node.role == ROLE_GRAPH:
                if node.g_node in placed:
                    raise IRError(f"g_node {node.g_node} mapped twice")
                placed[node.g_node] = node.coord
        return placed

    def validate(self) -> None:
        """Re-check all structural invariants (cheap; used by tests)."""
        for key in self.spatial_edges:
            a, b = tuple(key)
            if a not in self.nodes or b not in self.nodes:
                raise IRError(f"spatial edge {a}-{b} references missing nodes")
        for node in self.nodes.values():
            if node.temporal_next is not None:
                other = self.node_at(node.temporal_next)
                if other.temporal_prev != node.coord:
                    raise IRError(
                        f"temporal edge {node.coord}->{node.temporal_next} "
                        "is not mirrored"
                    )
        self.graph_nodes()  # raises on duplicates

    def structurally_equal(self, other: "FlexLatticeIR") -> bool:
        """Same coordinates, edges, temporal links and program placements.

        Node roles may differ between ``worldline`` and ``ancilla``: the
        instruction stream measures both as wire, so a lower-then-reinterpret
        round trip legitimately forgets which wires extend program nodes.
        """
        if self.width != other.width:
            return False
        if set(self.nodes) != set(other.nodes):
            return False
        if self.spatial_edges != other.spatial_edges:
            return False
        if self.temporal_edges() != other.temporal_edges():
            return False
        for coord, node in self.nodes.items():
            twin = other.nodes[coord]
            if (node.role == ROLE_GRAPH) != (twin.role == ROLE_GRAPH):
                return False
            if node.role == ROLE_GRAPH and node.g_node != twin.g_node:
                return False
        return True

    def connected_graph_pairs(self) -> set[frozenset[int]]:
        """Pairs of program nodes joined by IR wires.

        A wire is a chain of ancilla nodes (spatial + temporal edges); its
        endpoints resolve to program node ids, with worldline nodes counting
        as their underlying ``g_node``.  Used by the tests to assert the
        mapping realizes exactly the program graph state's edge set.
        """
        from repro.utils.dsu import DisjointSet

        def identity(coord: Coord3D) -> int | None:
            node = self.nodes[coord]
            return node.g_node  # None exactly for anonymous ancillas

        dsu: DisjointSet = DisjointSet(self.nodes.keys())
        adjacency: dict[Coord3D, list[Coord3D]] = {c: [] for c in self.nodes}
        for key in self.spatial_edges:
            a, b = tuple(key)
            adjacency[a].append(b)
            adjacency[b].append(a)
        for earlier, later in self.temporal_edges():
            adjacency[earlier].append(later)
            adjacency[later].append(earlier)
        # Merge anonymous-ancilla chains into wires.
        for coord, neighbors in adjacency.items():
            if identity(coord) is not None:
                continue
            for other in neighbors:
                if identity(other) is None:
                    dsu.union(coord, other)
        pairs: set[frozenset[int]] = set()
        wire_ends: dict[Coord3D, set[int]] = {}
        for coord, neighbors in adjacency.items():
            own = identity(coord)
            if own is None:
                continue
            for other in neighbors:
                other_id = identity(other)
                if other_id is not None:
                    if other_id != own:
                        pairs.add(frozenset((own, other_id)))
                else:
                    wire_ends.setdefault(dsu.find(other), set()).add(own)
        for endpoints in wire_ends.values():
            unique = sorted(endpoints)
            if len(unique) == 2:
                pairs.add(frozenset(unique))
            elif len(unique) > 2:
                raise IRError(
                    f"an ancilla wire touches more than two program nodes: {unique}"
                )
        return pairs
