"""FlexLattice IR and the intermediate-level instruction set."""

from repro.ir.flexlattice import (
    ROLE_ANCILLA,
    ROLE_GRAPH,
    ROLE_WORLDLINE,
    FlexLatticeIR,
    VNode,
)
from repro.ir.instructions import (
    EnableSpatialVEdge,
    EnableTemporalVEdge,
    Instruction,
    InstructionInterpreter,
    MakeVNodeAncilla,
    MapVNode,
    RetrieveVNode,
    StoreVNode,
    lower_ir,
)

__all__ = [
    "FlexLatticeIR",
    "VNode",
    "ROLE_GRAPH",
    "ROLE_WORLDLINE",
    "ROLE_ANCILLA",
    "Instruction",
    "MapVNode",
    "MakeVNodeAncilla",
    "StoreVNode",
    "RetrieveVNode",
    "EnableSpatialVEdge",
    "EnableTemporalVEdge",
    "lower_ir",
    "InstructionInterpreter",
]
