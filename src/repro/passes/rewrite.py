"""The pattern-rewrite optimization pass for the translate -> offline slot.

:class:`RewritePass` contracts measure-:math:`J(0)` / zero-angle pairs out
of the MBQC pattern (:func:`repro.mbqc.optimize.optimize_pattern`) before
offline mapping sees it, shrinking both the mapping problem and the online
reshape workload.  The contraction is a Pauli-frame simplification — it
preserves program semantics exactly — so the unrewritten chain
(``rewrite="off"``) stays available as a byte-identity oracle the same way
``pathfind="scalar"`` does for the online search.

The pass is ``cacheable``: its output is a pure function of the incoming
pattern and the settings, and because ``rewrite`` itself is a
:class:`~repro.pipeline.settings.PipelineSettings` knob that rides in the
context options, every cache key downstream of this choice differs between
the rewritten and unrewritten chains — the two never share entries.
"""

from __future__ import annotations

from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass

#: The two states of the rewrite knob (a settings field, a CLI flag, and an
#: experiment-registry axis — same vocabulary everywhere).
REWRITES = ("on", "off")


class RewritePass(CompilerPass):
    """Zero-angle pair contraction on the translated pattern (in place).

    ``provides`` repeats ``requires``: the pass refines the ``pattern``
    artifact rather than minting a new key, which is the in-place-transform
    shape :func:`repro.pipeline.pipeline.check_chain` admits (a provides
    collision is only legal when the colliding key is also required).
    """

    name = "rewrite"
    requires = ("pattern",)
    provides = ("pattern",)
    cacheable = True
    #: Where the CLI's ``--passes`` front door slots this pass by default.
    default_slot = "translate"

    def run(self, ctx: PassContext) -> None:
        from repro.mbqc.optimize import optimize_pattern

        pattern = ctx.require("pattern")
        report = optimize_pattern(pattern)
        ctx.put("pattern", pattern)
        ctx.metrics["rewrite_nodes_before"] = report.nodes_before
        ctx.metrics["rewrite_nodes_after"] = report.nodes_after
        ctx.metrics["rewrite_contracted_pairs"] = report.contracted_pairs
