"""The ``singledispatch`` front door: pass chains for any program form.

:func:`make_pass_list` maps whatever the caller holds — a
:class:`~repro.circuits.circuit.Circuit`, a prebuilt
:class:`~repro.mbqc.pattern.MeasurementPattern`, or a serialized circuit IR
(dict or JSON string) — onto a ready-to-run pass chain, so external
workloads enter the pipeline without knowing its internals.  Patterns skip
translate via :class:`PatternSourcePass`; serialized IR round-trips through
:func:`circuit_from_ir` / :func:`circuit_to_ir` (the ``repro-circuit/v1``
wire shape).
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
from typing import Any

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.errors import ReproError
from repro.mbqc.pattern import MeasurementPattern
from repro.pipeline.context import PassContext
from repro.pipeline.passes import CompilerPass

#: Format tag on serialized circuits; reject anything else loudly rather
#: than guessing at half-compatible shapes.
CIRCUIT_IR_FORMAT = "repro-circuit/v1"


class PatternSourcePass(CompilerPass):
    """Injects a prebuilt MBQC pattern as the ``pattern`` artifact.

    Replaces ``TranslatePass`` when the program *is* already a pattern.  A
    deep copy goes onto the context so downstream in-place passes (rewrite)
    never mutate the caller's object.  Not cacheable: the pattern is not a
    function of the context's stand-in circuit — identity instead rides in
    the circuit name via :func:`pattern_fingerprint` (see
    :func:`program_circuit`), which keys the *downstream* cacheable passes
    soundly.
    """

    name = "pattern-source"
    provides = ("pattern",)
    cacheable = False

    def __init__(self, pattern: MeasurementPattern) -> None:
        self.pattern = pattern

    def run(self, ctx: PassContext) -> None:
        ctx.put("pattern", copy.deepcopy(self.pattern))


def pattern_fingerprint(pattern: MeasurementPattern) -> str:
    """Content hash of a pattern: nodes, angles, flow, and graph edges."""
    digest = hashlib.blake2b(digest_size=8)
    for node_id in sorted(pattern.nodes):
        node = pattern.nodes[node_id]
        digest.update(
            repr((node_id, node.wire, node.angle, node.successor)).encode()
        )
    edges = sorted(tuple(sorted(edge)) for edge in pattern.graph.edges())
    digest.update(repr((edges, pattern.inputs, pattern.outputs)).encode())
    return digest.hexdigest()


def circuit_to_ir(circuit: Circuit) -> dict[str, Any]:
    """Serialize a circuit to the ``repro-circuit/v1`` JSON shape."""
    return {
        "format": CIRCUIT_IR_FORMAT,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "gates": [
            {
                "name": gate.name,
                "qubits": list(gate.qubits),
                "params": list(gate.params),
            }
            for gate in circuit.gates
        ],
    }


def circuit_from_ir(payload: dict[str, Any]) -> Circuit:
    """Rebuild a circuit from the ``repro-circuit/v1`` JSON shape."""
    if not isinstance(payload, dict):
        raise ReproError(
            f"serialized circuit IR must be an object, got "
            f"{type(payload).__name__}"
        )
    fmt = payload.get("format")
    if fmt != CIRCUIT_IR_FORMAT:
        raise ReproError(
            f"unsupported circuit IR format {fmt!r}; expected "
            f"{CIRCUIT_IR_FORMAT!r}"
        )
    try:
        circuit = Circuit(
            int(payload["num_qubits"]), name=str(payload.get("name", "circuit"))
        )
        for gate in payload["gates"]:
            circuit.append(
                Gate(
                    str(gate["name"]),
                    tuple(int(q) for q in gate["qubits"]),
                    tuple(float(p) for p in gate.get("params", ())),
                )
            )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed circuit IR: {exc}") from None
    return circuit


@functools.singledispatch
def make_pass_list(program: Any, *, rewrite: str = "on") -> tuple[CompilerPass, ...]:
    """A ready-to-run pass chain for ``program``, whatever its form.

    Circuits get the full default chain; patterns get
    :class:`PatternSourcePass` in place of translate; dicts and JSON
    strings are decoded as ``repro-circuit/v1`` IR first.  ``rewrite``
    gates the pattern-rewrite pass exactly like
    :func:`~repro.pipeline.pipeline.default_passes`.
    """
    raise ReproError(
        f"cannot build a pass list for {type(program).__name__}; accepted "
        "program forms: Circuit, MeasurementPattern, serialized circuit IR "
        "(dict or JSON string)"
    )


@make_pass_list.register
def _(program: Circuit, *, rewrite: str = "on") -> tuple[CompilerPass, ...]:
    from repro.pipeline.pipeline import default_passes

    return default_passes(rewrite)


@make_pass_list.register
def _(program: MeasurementPattern, *, rewrite: str = "on") -> tuple[CompilerPass, ...]:
    from repro.pipeline.pipeline import default_passes

    tail = tuple(
        stage for stage in default_passes(rewrite) if stage.name != "translate"
    )
    return (PatternSourcePass(program), *tail)


@make_pass_list.register
def _(program: dict, *, rewrite: str = "on") -> tuple[CompilerPass, ...]:
    return make_pass_list(circuit_from_ir(program), rewrite=rewrite)


@make_pass_list.register
def _(program: str, *, rewrite: str = "on") -> tuple[CompilerPass, ...]:
    try:
        payload = json.loads(program)
    except json.JSONDecodeError as exc:
        raise ReproError(f"serialized circuit IR is not valid JSON: {exc}") from None
    return make_pass_list(payload, rewrite=rewrite)


def program_circuit(program: Any) -> Circuit:
    """The context-building circuit for any accepted program form.

    For a pattern the returned circuit is a stand-in that exists to size
    the hardware and *identify* the program: its name embeds
    :func:`pattern_fingerprint`, so cache keys derived from the circuit
    fingerprint distinguish different injected patterns (two patterns with
    the same human name must not share cache entries).
    """
    if isinstance(program, Circuit):
        return program
    if isinstance(program, MeasurementPattern):
        width = max(1, len(program.inputs))
        return Circuit(
            width, name=f"{program.name}@{pattern_fingerprint(program)}"
        )
    if isinstance(program, str):
        try:
            program = json.loads(program)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"serialized circuit IR is not valid JSON: {exc}"
            ) from None
    if isinstance(program, dict):
        return circuit_from_ir(program)
    raise ReproError(
        f"cannot derive a circuit from {type(program).__name__}"
    )


def compile_program(
    program: Any,
    settings=None,
    seed: int | None = None,
    cache=None,
):
    """Compile any accepted program form through the standard chain.

    The one-call externally-facing entry: builds the pass chain with
    :func:`make_pass_list` (honoring ``settings.rewrite``), stamps the
    context from :func:`program_circuit`, and returns the usual
    :class:`~repro.pipeline.result.CompilationResult`.
    """
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.settings import PipelineSettings

    settings = settings or PipelineSettings()
    passes = make_pass_list(program, rewrite=settings.rewrite)
    pipeline = Pipeline(settings, passes, seed=seed, cache=cache)
    return pipeline.compile(program_circuit(program))
